//! The load-bearing cross-check of the whole system: the ASL interpreter,
//! the per-context SQL compilation and the batched SQL compilation must
//! report exactly the same performance problems.

use kojak::apprentice_sim::{simulate_program, MachineModel, ProgramGenerator};
use kojak::asl_eval::{CosyData, Interpreter, Value};
use kojak::asl_sql::{
    compile_batch, compile_property, eval_batch, eval_compiled, generate_schema, loader,
};
use kojak::cosy::suite::{standard_suite, ContextSelector, SUITE};
use kojak::perfdata::Store;
use kojak::reldb::Database;

/// Collect holding (property, context, severity, confidence) per strategy
/// and assert equality.
fn cross_check(store: &Store, version: kojak::perfdata::VersionId) {
    let spec = standard_suite();
    let schema = generate_schema(&spec.model).unwrap();
    let mut db = Database::new();
    schema.create_all(&mut db).unwrap();
    let data = CosyData::new(store);
    loader::load_store(&mut db, &schema, &spec.model, &data).unwrap();
    let interp = Interpreter::new(&spec, &data).unwrap();

    let basis = store.main_region(version).unwrap();
    let v = &store.versions[version.index()];
    let regions: Vec<u32> = v
        .functions
        .iter()
        .flat_map(|f| store.functions[f.index()].regions.iter().map(|r| r.0))
        .collect();
    let calls = |barrier_only: bool| -> Vec<u32> {
        v.functions
            .iter()
            .filter(|f| !barrier_only || store.functions[f.index()].name == "barrier")
            .flat_map(|f| store.functions[f.index()].calls.iter().map(|c| c.0))
            .collect()
    };

    let mut checked = 0usize;
    let mut held = 0usize;
    for &run in &v.runs {
        for info in SUITE {
            let (class, ids) = match info.contexts {
                ContextSelector::AllRegions => ("Region", regions.clone()),
                ContextSelector::BarrierCalls => ("FunctionCall", calls(true)),
                ContextSelector::AllCalls => ("FunctionCall", calls(false)),
            };
            if ids.is_empty() {
                continue;
            }
            // Batched once per (property, run).
            let fixed = [(1usize, Value::run(run)), (2usize, Value::region(basis))];
            let batch: std::collections::HashMap<u32, _> =
                compile_batch(&spec, &schema, info.name, 0, &fixed, Some(&ids))
                    .unwrap()
                    .pipe(|bc| eval_batch(&db, &bc).unwrap())
                    .into_iter()
                    .collect();
            for id in ids {
                let args = vec![Value::obj(class, id), Value::run(run), Value::region(basis)];
                let sql = compile_property(&spec, &schema, info.name, &args)
                    .and_then(|cp| eval_compiled(&db, &cp))
                    .unwrap();
                let by_interp = match interp.eval_property(info.name, &args) {
                    Ok(o) => Some(o),
                    Err(e) if e.is_not_applicable() => None,
                    Err(e) => panic!("{}: {e}", info.name),
                };
                checked += 1;
                let interp_holds = by_interp.as_ref().is_some_and(|o| o.holds);
                assert_eq!(
                    interp_holds, sql.holds,
                    "{} {class}#{id} run {run}: interp vs per-context SQL",
                    info.name
                );
                let in_batch = batch.contains_key(&id);
                assert_eq!(
                    interp_holds, in_batch,
                    "{} {class}#{id} run {run}: interp vs batch",
                    info.name
                );
                if let (Some(i), Some(b)) = (by_interp.as_ref(), batch.get(&id)) {
                    if i.holds {
                        held += 1;
                        let rel = 1e-9 * i.severity.abs().max(1.0);
                        assert!(
                            (i.severity - sql.severity).abs() <= rel,
                            "{}: severity {} vs {}",
                            info.name,
                            i.severity,
                            sql.severity
                        );
                        assert!(
                            (i.severity - b.severity).abs() <= rel,
                            "{}: severity {} vs batch {}",
                            info.name,
                            i.severity,
                            b.severity
                        );
                        assert_eq!(i.confidence, sql.confidence, "{}", info.name);
                    }
                }
            }
        }
    }
    assert!(checked > 100, "only {checked} contexts cross-checked");
    assert!(held > 10, "only {held} holding contexts");
}

/// Small helper: method-style piping for readability above.
trait Pipe: Sized {
    fn pipe<T>(self, f: impl FnOnce(Self) -> T) -> T {
        f(self)
    }
}
impl<T> Pipe for T {}

#[test]
fn backends_agree_on_particle_mc() {
    let machine = MachineModel::t3e_900();
    let mut store = Store::new();
    let version = simulate_program(
        &mut store,
        &kojak::apprentice_sim::archetypes::particle_mc(29),
        &machine,
        &[1, 4, 16],
    );
    cross_check(&store, version);
}

#[test]
fn backends_agree_on_generated_program() {
    let machine = MachineModel::t3e_900();
    let gen = ProgramGenerator {
        seed: 99,
        functions: 5,
        max_depth: 3,
        max_fanout: 3,
        base_work: 0.01,
        comm_probability: 0.7,
    };
    let model = gen.generate();
    let mut store = Store::new();
    let version = simulate_program(&mut store, &model, &machine, &[1, 8, 32]);
    cross_check(&store, version);
}
