//! Full-stack chaos: `TraceProducer` → TCP → `EngineServer` → sharded
//! durable engine, with *both* fault families live — connection resets,
//! partial writes and delays on the sockets, plus WAL/snapshot failures
//! under the shards. The producer's reconnect-with-resume and the
//! engine's quarantine-and-park must compose: once injection stops and
//! the quarantined shards reintegrate, the reports are bit-identical to
//! a clean stack over the same stream, with nothing lost or doubled
//! along the way.
//!
//! Compiled only with `--features faults`; the passthrough build has
//! nothing to soak.

#![cfg(feature = "faults")]

use kojak::apprentice_sim::{simulate_program, MachineModel, ProgramGenerator};
use kojak::engine::{AnalysisEngine, ShardedConfig, ShardedSession};
use kojak::faults::{FaultPlan, Faults};
use kojak::net::{EngineServer, ProducerConfig, ServerConfig, TraceProducer};
use kojak::online::replay::replay_store;
use kojak::online::{DurableConfig, FsyncPolicy, SessionConfig, TraceEvent};
use kojak::perfdata::Store;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

const SHARDS: usize = 3;

/// A fresh scratch directory, removed on drop.
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(name: &str) -> ScratchDir {
        let dir = std::env::temp_dir().join(format!("kojak-stack-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ScratchDir(dir)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn sim_events(seed: u64) -> Vec<TraceEvent> {
    let machine = MachineModel::t3e_900();
    let mut store = Store::new();
    for salt in [0u64, 1] {
        let gen = ProgramGenerator {
            seed: seed.wrapping_mul(2).wrapping_add(salt),
            functions: 2,
            max_depth: 3,
            max_fanout: 2,
            base_work: 0.01,
            comm_probability: 0.5,
        };
        simulate_program(&mut store, &gen.generate(), &machine, &[1, 4]);
    }
    replay_store(&store)
}

fn sharded_config(faults: &Faults) -> ShardedConfig {
    ShardedConfig {
        shards: SHARDS,
        durable: DurableConfig {
            session: SessionConfig::default(),
            fsync: FsyncPolicy::Never,
            snapshot_every_flushes: 2,
            faults: faults.clone(),
        },
    }
}

#[test]
fn faulted_stack_converges_to_the_clean_stack() {
    assert!(kojak::faults::injection_compiled());

    let mut total_injected = 0u64;
    for seed in [2u64, 9, 17, 31] {
        let events = sim_events(seed);
        let faults = FaultPlan {
            seed,
            disk_per_mille: 60,
            net_per_mille: 40,
            // Bounded: reconnect budgets and the soak must converge.
            max_faults: 25,
        }
        .build();

        // Open the sharded durable engine under fire (shards whose
        // recovery draws a fault open quarantined, not fatal) and put
        // the TCP server in front of it, sockets gated by the same plan.
        let dir = ScratchDir::new(&format!("seed-{seed}"));
        faults.set_active(false); // deterministic handshake for connect()
        let (session, _) = ShardedSession::open(&dir.0, sharded_config(&faults)).expect("open");
        let engine = Arc::new(session);
        let server = EngineServer::bind(
            "127.0.0.1:0",
            engine.clone(),
            ServerConfig {
                flush_every_events: 64,
                // Injected resets *are* protocol-error-shaped; do not
                // quarantine the producer for our own chaos.
                max_producer_protocol_errors: 0,
                faults: faults.clone(),
                ..ServerConfig::default()
            },
        )
        .expect("bind");
        let mut producer = TraceProducer::connect(
            server.local_addr().to_string(),
            ProducerConfig {
                producer_id: 7,
                batch_events: 32,
                reconnect_attempts: 64,
                reconnect_backoff: Duration::from_millis(1),
                reconnect_backoff_cap: Duration::from_millis(8),
                faults: faults.clone(),
                ..ProducerConfig::default()
            },
        )
        .expect("connect");
        faults.set_active(true);

        // Stream under fire. Every injected failure — a reset socket, a
        // partial frame, a shard's WAL refusing the append — must be
        // absorbed: resets by reconnect-with-resume, shard failures by
        // quarantine-and-park behind an accepted batch.
        for event in &events {
            producer
                .send(event)
                .unwrap_or_else(|e| panic!("seed {seed}: send must be absorbed: {e}"));
        }
        let net_stats = producer
            .close()
            .unwrap_or_else(|e| panic!("seed {seed}: close must be absorbed: {e}"));
        server.shutdown();
        total_injected += faults.injected_total();

        // Faults stop; reintegrate whatever was parked and compare with
        // a clean in-process stack over the identical stream.
        faults.set_active(false);
        engine
            .reintegrate_all()
            .unwrap_or_else(|e| panic!("seed {seed}: clean reintegration must succeed: {e}"));
        AnalysisEngine::flush(&*engine).expect("clean flush");

        let control_dir = ScratchDir::new(&format!("control-{seed}"));
        let (control, _) =
            ShardedSession::open(&control_dir.0, sharded_config(&Faults::none())).expect("control");
        AnalysisEngine::ingest_batch(&control, &events).expect("control ingest");
        AnalysisEngine::flush(&control).expect("control flush");

        assert_eq!(
            AnalysisEngine::reports(&*engine),
            AnalysisEngine::reports(&control),
            "seed {seed}: converged reports must be bit-identical \
             ({} faults injected, {} reconnects)",
            faults.injected_total(),
            net_stats.reconnects,
        );
        assert_eq!(
            AnalysisEngine::stats(&*engine).events_applied,
            AnalysisEngine::stats(&control).events_applied,
            "seed {seed}: exactly-once application across the wire"
        );
    }

    assert!(
        total_injected > 0,
        "the sweep never injected — rates too low to test the stack"
    );
}
