//! Fidelity tests against the paper's printed artifacts: the §4.1 data
//! model and the §4.2 property listings must parse, check and evaluate.
//!
//! One deviation is corrected and documented: the paper's SublinearSpeedup
//! declares `TotTimes MinPeSum` — `TotTimes` is the *attribute* name, the
//! type is `TotalTiming` (an obvious typo in the preprint). We also
//! terminate LET definitions with `;` uniformly.

use kojak::apprentice_sim::{archetypes, simulate_program, MachineModel};
use kojak::asl_core::parse_and_check;
use kojak::asl_eval::{CosyData, Interpreter, Value, COSY_DATA_MODEL};
use kojak::perfdata::Store;

/// §4.1 of the paper, as printed (classes only; SourceCode added since the
/// paper references it without declaring it).
const PAPER_DATA_MODEL: &str = r#"
class Program {
    String Name;
    setof ProgVersion Versions;
}
class ProgVersion {
    DateTime Compilation;
    setof Function Functions;
    setof TestRun Runs;
    SourceCode Code;
}
class SourceCode { String Text; }
class TestRun {
    DateTime Start;
    int NoPe;
    int Clockspeed;
}
class Function {
    String Name;
    setof FunctionCall Calls;
    setof Region Regions;
}
class Region {
    Region ParentRegion;
    setof TotalTiming TotTimes;
    setof TypedTiming TypTimes;
}
class TotalTiming {
    TestRun Run;
    float Excl;
    float Incl;
    float Ovhd;
}
enum TimingType { Barrier, IoRead, IoWrite, PtpSend, PtpRecv }
class TypedTiming {
    TestRun Run;
    TimingType Type;
    float Time;
}
class FunctionCall {
    Function Caller;
    Region CallingReg;
    setof CallTiming Sums;
}
class CallTiming {
    TestRun Run;
    float MeanTime;
    float StdevTime;
    float MeanCount;
    float StdevCount;
}
"#;

/// The §4.2 helper functions, as printed.
const PAPER_FUNCTIONS: &str = r#"
TotalTiming Summary(Region r, TestRun t) = UNIQUE({s IN r.TotTimes
    WITH s.Run==t});
float Duration(Region r, TestRun t) = Summary(r,t).Incl;
"#;

/// The four §4.2 properties, as printed (modulo the documented typo fix).
const PAPER_PROPERTIES: &str = r#"
float ImbalanceThreshold = 0.25;

Property SublinearSpeedup(Region r, TestRun t, Region Basis) {
    LET TotalTiming MinPeSum = UNIQUE({sum IN r.TotTimes WITH sum.Run.NoPe ==
        MIN(s.Run.NoPe WHERE s IN r.TotTimes)});
    float TotalCost = Duration(r,t) - Duration(r,MinPeSum.Run)
    IN
    CONDITION: TotalCost>0; CONFIDENCE: 1;
    SEVERITY: TotalCost/Duration(Basis,t);
}

Property MeasuredCost (Region r, TestRun t, Region Basis) {
    LET float Cost = Summary(r,t).Ovhd;
    IN CONDITION: Cost > 0; CONFIDENCE: 1;
    SEVERITY: Cost / Duration(Basis,t);
}

Property SyncCost(Region r, TestRun t, Region Basis) {
    LET float Barrier2 = SUM(tt.Time WHERE tt IN r.TypTimes AND tt.Run==t
        AND tt.Type == Barrier);
    IN CONDITION: Barrier2 > 0; CONFIDENCE: 1;
    SEVERITY: Barrier2 / Duration(Basis,t);
}

Property LoadImbalance(FunctionCall Call, TestRun t, Region Basis) {
    LET CallTiming ct = UNIQUE ({c IN Call.Sums WITH c.Run == t});
    float Dev = ct.StdevTime;
    float Mean = ct.MeanTime
    IN CONDITION: Dev > ImbalanceThreshold * Mean; CONFIDENCE: 1;
    SEVERITY: Mean / Duration(Basis,t);
}
"#;

#[test]
fn paper_data_model_checks() {
    let src = format!("{PAPER_DATA_MODEL}\n{PAPER_FUNCTIONS}");
    let spec = parse_and_check(&src).unwrap_or_else(|d| panic!("{}", d.render(&src)));
    assert_eq!(spec.spec.classes.len(), 10);
    assert_eq!(
        spec.model.functions["Duration"].ret,
        kojak::asl_core::types::Type::Float
    );
}

#[test]
fn paper_properties_check_against_paper_model() {
    let src = format!("{PAPER_DATA_MODEL}\n{PAPER_FUNCTIONS}\n{PAPER_PROPERTIES}");
    let spec = parse_and_check(&src).unwrap_or_else(|d| panic!("{}", d.render(&src)));
    assert_eq!(spec.properties().len(), 4);
    for p in [
        "SublinearSpeedup",
        "MeasuredCost",
        "SyncCost",
        "LoadImbalance",
    ] {
        assert!(spec.property(p).is_some(), "{p} missing");
    }
}

#[test]
fn paper_properties_evaluate_on_simulated_data() {
    // Evaluate the verbatim paper properties against the full COSY model
    // (superset of the paper's printed CallTiming attributes).
    let src = format!("{COSY_DATA_MODEL}\n{PAPER_PROPERTIES}");
    let spec = parse_and_check(&src).unwrap_or_else(|d| panic!("{}", d.render(&src)));

    let machine = MachineModel::t3e_900();
    let mut store = Store::new();
    let version = simulate_program(&mut store, &archetypes::particle_mc(1), &machine, &[1, 16]);
    let run16 = store.versions[version.index()].runs[1];
    let main = store.main_region(version).unwrap();
    let data = CosyData::new(&store);
    let interp = Interpreter::new(&spec, &data).unwrap();

    // SublinearSpeedup on main at 16 PEs: holds with the documented
    // severity formula.
    let o = interp
        .eval_property(
            "SublinearSpeedup",
            &[Value::region(main), Value::run(run16), Value::region(main)],
        )
        .unwrap();
    assert!(o.holds);
    let run1 = store.versions[version.index()].runs[0];
    let expected = (store.duration(main, run16).unwrap() - store.duration(main, run1).unwrap())
        / store.duration(main, run16).unwrap();
    assert!((o.severity - expected).abs() < 1e-12);

    // LoadImbalance on a barrier call: the paper's refinement fires for the
    // imbalanced archetype.
    let barrier_fn = store
        .functions
        .iter()
        .position(|f| f.name == "barrier")
        .unwrap();
    let call = store.functions[barrier_fn].calls[0];
    let o = interp
        .eval_property(
            "LoadImbalance",
            &[Value::call(call), Value::run(run16), Value::region(main)],
        )
        .unwrap();
    assert!(o.holds, "barrier call must show imbalance at 16 PEs");
}

#[test]
fn figure1_grammar_shapes_parse() {
    // Every syntactic form of Figure 1: named conditions, OR lists, MAX
    // combiners with guards, `};` terminator.
    let src = format!(
        "{COSY_DATA_MODEL}\n{}",
        r#"
PROPERTY Fig1(Region r, TestRun t, Region Basis) {
    LET float X = Duration(r, t);
    IN
    CONDITION: (a) X > 10.0 OR (b) X > 1.0;
    CONFIDENCE: MAX((a) -> 1, (b) -> 0.5);
    SEVERITY: MAX((a) -> X / Duration(Basis, t), (b) -> 0.1);
};
"#
    );
    let spec = parse_and_check(&src).unwrap_or_else(|d| panic!("{}", d.render(&src)));
    let p = spec.property("Fig1").unwrap();
    assert_eq!(p.conditions.len(), 2);
    assert!(p.confidence.is_max);
    assert_eq!(p.severity.arms.len(), 2);
}
