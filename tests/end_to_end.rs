//! End-to-end pipeline tests: synthetic program → Apprentice summary →
//! database → COSY analysis, for every archetype and both backends.

use kojak::apprentice_sim::{archetypes, simulate_program, MachineModel};
use kojak::cosy::{report, Analyzer, Backend, ProblemThreshold};
use kojak::perfdata::{validate, Store};

fn analyze(
    model: &kojak::apprentice_sim::ProgramModel,
    pes: &[u32],
    backend: Backend,
) -> kojak::cosy::AnalysisReport {
    let machine = MachineModel::t3e_900();
    let mut store = Store::new();
    let version = simulate_program(&mut store, model, &machine, pes);
    assert!(validate(&store).is_empty(), "store invariants");
    let run = *store.versions[version.index()].runs.last().unwrap();
    Analyzer::new(&store, version)
        .unwrap()
        .analyze(run, backend, ProblemThreshold::default())
        .unwrap()
}

#[test]
fn every_archetype_analyzes_on_both_backends() {
    for model in archetypes::all(5) {
        for backend in [Backend::Interpreter, Backend::Sql] {
            let report = analyze(&model, &[1, 8, 32], backend);
            assert!(
                report.bottleneck().is_some(),
                "{} ({backend:?}): no bottleneck",
                model.name
            );
            assert!(report.total_cost > 0.0, "{}: no total cost", model.name);
            let text = report::render_text(&report);
            assert!(text.contains("bottleneck:"));
        }
    }
}

#[test]
fn particle_mc_bottleneck_chain_is_synchronization() {
    // The paper's refinement story: SublinearSpeedup explains the overall
    // loss; SyncCost and LoadImbalance explain *why* for a barrier-bound
    // imbalanced code.
    let report = analyze(&archetypes::particle_mc(3), &[1, 32], Backend::Interpreter);
    let names: Vec<&str> = report.problems().map(|e| e.property.as_str()).collect();
    assert!(names.contains(&"SublinearSpeedup"));
    assert!(
        names.contains(&"SyncCost"),
        "SyncCost must be a problem, got {names:?}"
    );
    let has_imbalance = report
        .entries
        .iter()
        .any(|e| e.property == "LoadImbalance" && e.context.label.contains("barrier"));
    assert!(has_imbalance, "LoadImbalance on a barrier call expected");
}

#[test]
fn spectral_io_flags_io_cost() {
    let report = analyze(&archetypes::spectral_io(3), &[1, 64], Backend::Interpreter);
    assert!(
        report.problems().any(|e| e.property == "IoCost"),
        "IoCost must be a problem for the I/O-bound archetype"
    );
}

#[test]
fn stencil_at_low_pe_needs_no_tuning() {
    // At 2 PEs the well-balanced stencil is below the default threshold.
    let machine = MachineModel::t3e_900();
    let mut store = Store::new();
    let model = archetypes::stencil3d(3);
    let version = simulate_program(&mut store, &model, &machine, &[1, 2]);
    let run = store.versions[version.index()].runs[1];
    let report = Analyzer::new(&store, version)
        .unwrap()
        .analyze(run, Backend::Interpreter, ProblemThreshold(0.10))
        .unwrap();
    assert!(
        !report.needs_tuning(),
        "2-PE stencil should be below a 10% threshold: {:?}",
        report.bottleneck()
    );
}

#[test]
fn severity_ranking_matches_paper_semantics() {
    // §4: severity of SublinearSpeedup = TotalCost / Duration(Basis, t).
    let machine = MachineModel::t3e_900();
    let mut store = Store::new();
    let model = archetypes::particle_mc(11);
    let version = simulate_program(&mut store, &model, &machine, &[1, 16]);
    let run16 = store.versions[version.index()].runs[1];
    let run1 = store.versions[version.index()].runs[0];
    let main = store.main_region(version).unwrap();
    let report = Analyzer::new(&store, version)
        .unwrap()
        .analyze(run16, Backend::Interpreter, ProblemThreshold::default())
        .unwrap();
    let d16 = store.duration(main, run16).unwrap();
    let d1 = store.duration(main, run1).unwrap();
    let expected = (d16 - d1) / d16;
    assert!(
        (report.total_cost - expected).abs() < 1e-12,
        "total cost {} vs expected {expected}",
        report.total_cost
    );
}

#[test]
fn multiple_versions_analyzed_independently() {
    let machine = MachineModel::t3e_900();
    let mut store = Store::new();
    let v1 = simulate_program(&mut store, &archetypes::particle_mc(1), &machine, &[1, 8]);
    let v2 = simulate_program(&mut store, &archetypes::stencil3d(1), &machine, &[1, 8]);
    let r1 = *store.versions[v1.index()].runs.last().unwrap();
    let r2 = *store.versions[v2.index()].runs.last().unwrap();
    let a1 = Analyzer::new(&store, v1)
        .unwrap()
        .analyze(r1, Backend::Interpreter, ProblemThreshold::default())
        .unwrap();
    let a2 = Analyzer::new(&store, v2)
        .unwrap()
        .analyze(r2, Backend::Interpreter, ProblemThreshold::default())
        .unwrap();
    assert_eq!(a1.program, "particle_mc");
    assert_eq!(a2.program, "stencil3d");
    assert!(
        a1.total_cost > a2.total_cost,
        "particle loses more at 8 PEs"
    );
}
