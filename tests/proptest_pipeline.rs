//! Randomized whole-pipeline property tests: for arbitrary generated
//! programs and machine parameters, the three analysis backends agree and
//! the analysis respects its defining invariants.

use kojak::apprentice_sim::{simulate_program, MachineModel, ProgramGenerator};
use kojak::cosy::{Analyzer, Backend, ProblemThreshold};
use kojak::perfdata::{validate, Store};
use proptest::prelude::*;

fn machine_strategy() -> impl Strategy<Value = MachineModel> {
    (
        1e-6f64..50e-6, // ptp latency
        0.0f64..0.01,   // contention
        1e-6f64..20e-6, // barrier base
        50e6f64..500e6, // io bandwidth
    )
        .prop_map(|(ptp, contention, barrier, io_bw)| MachineModel {
            ptp_latency: ptp,
            contention_coeff: contention,
            barrier_base: barrier,
            io_bandwidth: io_bw,
            ..MachineModel::t3e_900()
        })
}

proptest! {
    // The full pipeline is expensive; a handful of random cases per run is
    // still a much wider net than the fixed-seed tests.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn pipeline_invariants_hold_for_random_programs(
        seed in 0u64..10_000,
        functions in 1usize..5,
        machine in machine_strategy(),
        pe in prop_oneof![Just(4u32), Just(8), Just(16), Just(32)],
    ) {
        let gen = ProgramGenerator {
            seed,
            functions,
            max_depth: 3,
            max_fanout: 3,
            base_work: 0.01,
            comm_probability: 0.6,
        };
        let model = gen.generate();
        let mut store = Store::new();
        let version = simulate_program(&mut store, &model, &machine, &[1, pe]);
        prop_assert!(validate(&store).is_empty());

        let run = store.versions[version.index()].runs[1];
        let analyzer = Analyzer::new(&store, version).unwrap();
        let a = analyzer
            .analyze(run, Backend::Interpreter, ProblemThreshold::default())
            .unwrap();

        // Invariants of any analysis.
        for w in a.entries.windows(2) {
            prop_assert!(w[0].severity >= w[1].severity, "ranking must be sorted");
        }
        for e in &a.entries {
            prop_assert!(e.severity > 0.0);
            prop_assert!((0.0..=1.0).contains(&e.confidence));
        }
        if let Some(b) = a.bottleneck() {
            prop_assert!(a.entries.iter().all(|e| e.severity <= b.severity));
        }

        // Backend agreement on the full ranking.
        for backend in [Backend::Sql, Backend::SqlBatched] {
            let b = analyzer
                .analyze(run, backend, ProblemThreshold::default())
                .unwrap();
            prop_assert_eq!(a.entries.len(), b.entries.len(), "{:?}", backend);
            for (x, y) in a.entries.iter().zip(&b.entries) {
                prop_assert_eq!(&x.property, &y.property);
                prop_assert_eq!(&x.context.label, &y.context.label);
                prop_assert!(
                    (x.severity - y.severity).abs() <= 1e-9 * x.severity.max(1.0),
                    "{}: {} vs {}", x.property, x.severity, y.severity
                );
            }
        }
    }
}
