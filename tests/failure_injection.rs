//! Failure injection: the analyzer must degrade gracefully on incomplete
//! or irregular databases (missing timings, runs without data, empty
//! versions) — the situations a real tool meets when instrumentation is
//! partial.

use kojak::apprentice_sim::{archetypes, simulate_program, MachineModel};
use kojak::cosy::{Analyzer, Backend, ProblemThreshold};
use kojak::perfdata::{DateTime, RegionKind, Store};

#[test]
fn run_without_any_timings_is_all_skipped() {
    let mut store = Store::new();
    let p = store.add_program("sparse");
    let v = store.add_version(p, DateTime::from_secs(0), "");
    let _bare_run = store.add_run(v, DateTime::from_secs(1), 8, 450);
    let f = store.add_function(v, "main");
    store.add_region(f, None, RegionKind::Subprogram, "main", (1, 10));

    let run = store.versions[v.index()].runs[0];
    let report = Analyzer::new(&store, v)
        .unwrap()
        .analyze(run, Backend::Interpreter, ProblemThreshold::default())
        .unwrap();
    assert!(report.entries.is_empty());
    assert!(!report.needs_tuning());
    assert!(report.skipped > 0);
}

#[test]
fn partially_instrumented_version_analyzes() {
    // Simulate two runs, then strip every timing of one region (as if the
    // compiler optimized its instrumentation away).
    let machine = MachineModel::t3e_900();
    let mut store = Store::new();
    let v = simulate_program(&mut store, &archetypes::particle_mc(5), &machine, &[1, 8]);
    let victim = store.versions[v.index()]
        .functions
        .iter()
        .flat_map(|f| store.functions[f.index()].regions.iter().copied())
        .nth(2)
        .unwrap();
    store.regions[victim.index()].tot_times.clear();
    store.regions[victim.index()].typ_times.clear();

    let run = store.versions[v.index()].runs[1];
    for backend in [Backend::Interpreter, Backend::Sql, Backend::SqlBatched] {
        let report = Analyzer::new(&store, v)
            .unwrap()
            .analyze(run, backend, ProblemThreshold::default())
            .unwrap();
        assert!(
            report
                .entries
                .iter()
                .all(|e| e.context.region != Some(victim.0)),
            "{backend:?}: stripped region must not appear"
        );
        assert!(
            !report.entries.is_empty(),
            "{backend:?}: other regions still analyzed"
        );
    }
}

#[test]
fn zero_duration_basis_is_not_a_crash() {
    // A basis region with zero inclusive time: severity division by zero
    // must surface as an error or a skip, never a panic.
    let mut store = Store::new();
    let p = store.add_program("zero");
    let v = store.add_version(p, DateTime::from_secs(0), "");
    let r1 = store.add_run(v, DateTime::from_secs(1), 1, 450);
    let r2 = store.add_run(v, DateTime::from_secs(2), 4, 450);
    let f = store.add_function(v, "main");
    let root = store.add_region(f, None, RegionKind::Subprogram, "main", (1, 10));
    store.add_total_timing(root, r1, 0.0, 0.0, 0.0);
    store.add_total_timing(root, r2, 0.0, 0.0, 0.1);

    let result = Analyzer::new(&store, v).unwrap().analyze(
        r2,
        Backend::Interpreter,
        ProblemThreshold::default(),
    );
    // MeasuredCost holds (Ovhd > 0) but its severity divides by
    // Duration(Basis) == 0 — the interpreter reports the evaluation error.
    assert!(result.is_err(), "division by zero must be reported");
}

#[test]
fn single_run_version_reports_no_speedup_loss() {
    let machine = MachineModel::t3e_900();
    let mut store = Store::new();
    let v = simulate_program(&mut store, &archetypes::stencil3d(1), &machine, &[16]);
    let run = store.versions[v.index()].runs[0];
    let report = Analyzer::new(&store, v)
        .unwrap()
        .analyze(run, Backend::Interpreter, ProblemThreshold::default())
        .unwrap();
    // The only run is its own reference: no lost cycles.
    assert_eq!(report.total_cost, 0.0);
    assert!(report
        .entries
        .iter()
        .all(|e| e.property != "SublinearSpeedup"));
}

#[test]
fn duplicate_timing_is_caught_before_analysis() {
    // A corrupted import (duplicate TotalTiming) violates the §4.1
    // uniqueness invariant; validation reports it, and the interpreter's
    // UNIQUE raises Ambiguous rather than silently picking one.
    let machine = MachineModel::t3e_900();
    let mut store = Store::new();
    let v = simulate_program(&mut store, &archetypes::stencil3d(1), &machine, &[1, 4]);
    let dup = store.total_timings[0].clone();
    let region = dup.region;
    store.total_timings.push(dup);
    let id = kojak::perfdata::TotalTimingId((store.total_timings.len() - 1) as u32);
    store.regions[region.index()].tot_times.push(id);

    let violations = kojak::perfdata::validate(&store);
    assert!(violations.iter().any(|x| x.rule == "unique-total-timing"));

    let run = store.total_timings[0].run;
    let result = Analyzer::new(&store, v).unwrap().analyze(
        run,
        Backend::Interpreter,
        ProblemThreshold::default(),
    );
    assert!(result.is_err(), "ambiguous UNIQUE must surface as an error");
}
