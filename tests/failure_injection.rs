//! Failure injection: the analyzer must degrade gracefully on incomplete
//! or irregular databases (missing timings, runs without data, empty
//! versions) — the situations a real tool meets when instrumentation is
//! partial. The durable-session cases below inject storage failures —
//! torn WAL tails, flipped checksum bytes, stale snapshots, corrupt
//! snapshot payloads — and require recovery to the last consistent point
//! with a typed error/skip report, never a panic.

use kojak::apprentice_sim::{archetypes, simulate_program, MachineModel};
use kojak::cosy::{Analyzer, Backend, ProblemThreshold};
use kojak::online::durable::{RecoveryError, SNAPSHOT_FILE, WAL_FILE};
use kojak::online::replay::replay_store;
use kojak::online::wal::WalCorruptionKind;
use kojak::online::{
    DurableConfig, DurableSession, FsyncPolicy, OnlineSession, SessionConfig, TraceEvent,
};
use kojak::perfdata::{DateTime, RegionKind, Store};
use std::path::PathBuf;

#[test]
fn run_without_any_timings_is_all_skipped() {
    let mut store = Store::new();
    let p = store.add_program("sparse");
    let v = store.add_version(p, DateTime::from_secs(0), "");
    let _bare_run = store.add_run(v, DateTime::from_secs(1), 8, 450);
    let f = store.add_function(v, "main");
    store.add_region(f, None, RegionKind::Subprogram, "main", (1, 10));

    let run = store.versions[v.index()].runs[0];
    let report = Analyzer::new(&store, v)
        .unwrap()
        .analyze(run, Backend::Interpreter, ProblemThreshold::default())
        .unwrap();
    assert!(report.entries.is_empty());
    assert!(!report.needs_tuning());
    assert!(report.skipped > 0);
}

#[test]
fn partially_instrumented_version_analyzes() {
    // Simulate two runs, then strip every timing of one region (as if the
    // compiler optimized its instrumentation away).
    let machine = MachineModel::t3e_900();
    let mut store = Store::new();
    let v = simulate_program(&mut store, &archetypes::particle_mc(5), &machine, &[1, 8]);
    let victim = store.versions[v.index()]
        .functions
        .iter()
        .flat_map(|f| store.functions[f.index()].regions.iter().copied())
        .nth(2)
        .unwrap();
    store.regions[victim.index()].tot_times.clear();
    store.regions[victim.index()].typ_times.clear();

    let run = store.versions[v.index()].runs[1];
    for backend in [Backend::Interpreter, Backend::Sql, Backend::SqlBatched] {
        let report = Analyzer::new(&store, v)
            .unwrap()
            .analyze(run, backend, ProblemThreshold::default())
            .unwrap();
        assert!(
            report
                .entries
                .iter()
                .all(|e| e.context.region != Some(victim.0)),
            "{backend:?}: stripped region must not appear"
        );
        assert!(
            !report.entries.is_empty(),
            "{backend:?}: other regions still analyzed"
        );
    }
}

#[test]
fn zero_duration_basis_is_not_a_crash() {
    // A basis region with zero inclusive time: severity division by zero
    // must surface as an error or a skip, never a panic.
    let mut store = Store::new();
    let p = store.add_program("zero");
    let v = store.add_version(p, DateTime::from_secs(0), "");
    let r1 = store.add_run(v, DateTime::from_secs(1), 1, 450);
    let r2 = store.add_run(v, DateTime::from_secs(2), 4, 450);
    let f = store.add_function(v, "main");
    let root = store.add_region(f, None, RegionKind::Subprogram, "main", (1, 10));
    store.add_total_timing(root, r1, 0.0, 0.0, 0.0);
    store.add_total_timing(root, r2, 0.0, 0.0, 0.1);

    let result = Analyzer::new(&store, v).unwrap().analyze(
        r2,
        Backend::Interpreter,
        ProblemThreshold::default(),
    );
    // MeasuredCost holds (Ovhd > 0) but its severity divides by
    // Duration(Basis) == 0 — the interpreter reports the evaluation error.
    assert!(result.is_err(), "division by zero must be reported");
}

#[test]
fn single_run_version_reports_no_speedup_loss() {
    let machine = MachineModel::t3e_900();
    let mut store = Store::new();
    let v = simulate_program(&mut store, &archetypes::stencil3d(1), &machine, &[16]);
    let run = store.versions[v.index()].runs[0];
    let report = Analyzer::new(&store, v)
        .unwrap()
        .analyze(run, Backend::Interpreter, ProblemThreshold::default())
        .unwrap();
    // The only run is its own reference: no lost cycles.
    assert_eq!(report.total_cost, 0.0);
    assert!(report
        .entries
        .iter()
        .all(|e| e.property != "SublinearSpeedup"));
}

#[test]
fn duplicate_timing_is_caught_before_analysis() {
    // A corrupted import (duplicate TotalTiming) violates the §4.1
    // uniqueness invariant; validation reports it, and the interpreter's
    // UNIQUE raises Ambiguous rather than silently picking one.
    let machine = MachineModel::t3e_900();
    let mut store = Store::new();
    let v = simulate_program(&mut store, &archetypes::stencil3d(1), &machine, &[1, 4]);
    let dup = store.total_timings[0].clone();
    let region = dup.region;
    store.total_timings.push(dup);
    let id = kojak::perfdata::TotalTimingId((store.total_timings.len() - 1) as u32);
    store.regions[region.index()].tot_times.push(id);

    let violations = kojak::perfdata::validate(&store);
    assert!(violations.iter().any(|x| x.rule == "unique-total-timing"));

    let run = store.total_timings[0].run;
    let result = Analyzer::new(&store, v).unwrap().analyze(
        run,
        Backend::Interpreter,
        ProblemThreshold::default(),
    );
    assert!(result.is_err(), "ambiguous UNIQUE must surface as an error");
}

// ---------------------------------------------------------------------------
// Durable-session storage failures (WAL + snapshot).
// ---------------------------------------------------------------------------

/// Scratch session directory, removed on drop.
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(name: &str) -> ScratchDir {
        let dir = std::env::temp_dir().join(format!("kojak-failinj-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ScratchDir(dir)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn durable_config(snapshot_every_flushes: u32) -> DurableConfig {
    DurableConfig {
        session: SessionConfig::default(),
        fsync: FsyncPolicy::Never,
        snapshot_every_flushes,
        faults: Default::default(),
    }
}

/// A small simulated event stream (two runs).
fn stream() -> Vec<TraceEvent> {
    let mut store = Store::new();
    simulate_program(
        &mut store,
        &archetypes::stencil3d(9),
        &MachineModel::t3e_900(),
        &[1, 8],
    );
    replay_store(&store)
}

/// Ingest `events` durably (one flush at the end), then kill the session.
fn write_session_dir(dir: &ScratchDir, events: &[TraceEvent], snapshot_every: u32) {
    let durable = DurableSession::open(&dir.0, durable_config(snapshot_every)).expect("open");
    durable.ingest_batch(events).expect("ingest");
    durable.flush().expect("flush");
}

/// The uninterrupted-reference session over the same events.
fn control(events: &[TraceEvent]) -> OnlineSession {
    let session = OnlineSession::new(SessionConfig::default());
    session.ingest_batch(events).expect("control ingest");
    session.flush().expect("control flush");
    session
}

#[test]
fn truncated_final_wal_frame_recovers_to_last_consistent_event() {
    let events = stream();
    let dir = ScratchDir::new("torn-tail");
    write_session_dir(&dir, &events, 0);

    // Tear the final frame: a crash mid-`write`.
    let wal_path = dir.0.join(WAL_FILE);
    let bytes = std::fs::read(&wal_path).unwrap();
    std::fs::write(&wal_path, &bytes[..bytes.len() - 5]).unwrap();

    let (recovered, stats) =
        OnlineSession::recover(&dir.0, SessionConfig::default()).expect("never a panic");
    let c = stats.wal_corruption.expect("typed skip report");
    assert!(matches!(c.kind, WalCorruptionKind::TruncatedFrame { .. }));
    assert_eq!(stats.wal_events_replayed, events.len() as u64 - 1);
    // Identical to an uninterrupted session over the surviving prefix.
    let reference = control(&events[..events.len() - 1]);
    assert_eq!(recovered.reports(), reference.reports());

    // Reopening for writing resumes on the frame boundary.
    let resumed = DurableSession::open(&dir.0, durable_config(0)).expect("reopen");
    resumed.ingest(&events[events.len() - 1]).expect("append");
    resumed.flush().expect("flush");
    assert_eq!(resumed.reports(), control(&events).reports());
}

#[test]
fn flipped_wal_checksum_byte_recovers_prefix_with_typed_report() {
    let events = stream();
    let dir = ScratchDir::new("bitflip");
    write_session_dir(&dir, &events, 0);

    let wal_path = dir.0.join(WAL_FILE);
    let mut bytes = std::fs::read(&wal_path).unwrap();
    // Flip a byte ~2/3 in: everything beyond that frame is untrusted.
    let victim = bytes.len() * 2 / 3;
    bytes[victim] ^= 0x01;
    std::fs::write(&wal_path, &bytes).unwrap();

    let (recovered, stats) =
        OnlineSession::recover(&dir.0, SessionConfig::default()).expect("never a panic");
    let c = stats.wal_corruption.expect("typed skip report");
    assert!(matches!(
        c.kind,
        WalCorruptionKind::ChecksumMismatch | WalCorruptionKind::TruncatedFrame { .. }
    ));
    let kept = stats.wal_events_replayed as usize;
    assert!(kept < events.len(), "corrupt frame must not be trusted");
    assert_eq!(recovered.reports(), control(&events[..kept]).reports());
}

#[test]
fn stale_snapshot_plus_longer_log_recovers_the_full_history() {
    let events = stream();
    let cut = events.len() / 3;
    let dir = ScratchDir::new("stale-snap");

    // Checkpoint early (stale snapshot), then keep streaming (long tail).
    let durable = DurableSession::open(&dir.0, durable_config(0)).expect("open");
    durable.ingest_batch(&events[..cut]).expect("ingest head");
    durable.checkpoint().expect("checkpoint");
    durable.ingest_batch(&events[cut..]).expect("ingest tail");
    durable.flush().expect("flush");
    drop(durable); // killed

    let (recovered, stats) =
        OnlineSession::recover(&dir.0, SessionConfig::default()).expect("recover");
    assert!(stats.used_snapshot);
    assert_eq!(stats.snapshot_events, cut as u64);
    assert_eq!(stats.wal_events_replayed, (events.len() - cut) as u64);
    assert_eq!(recovered.reports(), control(&events).reports());
    assert_eq!(
        recovered.stats().events_applied,
        control(&events).stats().events_applied
    );
}

#[test]
fn empty_and_missing_durable_files_recover_to_a_fresh_session() {
    let dir = ScratchDir::new("empty-files");
    std::fs::create_dir_all(&dir.0).unwrap();
    // Zero-byte WAL and no snapshot.
    std::fs::write(dir.0.join(WAL_FILE), b"").unwrap();
    let (session, stats) =
        OnlineSession::recover(&dir.0, SessionConfig::default()).expect("empty wal");
    assert!(!stats.used_snapshot);
    assert_eq!(stats.wal_events_replayed, 0);
    assert!(session.reports().is_empty());

    // A durable session over the empty directory starts cleanly too.
    let durable = DurableSession::open(&dir.0, durable_config(0)).expect("open empty");
    assert_eq!(durable.stats().events_applied, 0);
}

#[test]
fn interrupted_checkpoint_does_not_double_replay_the_log() {
    // Crash window between the snapshot rename and the WAL truncation:
    // the new snapshot already covers every logged event, but the log
    // still holds them under the *old* epoch. Recovery must skip the
    // stale log — replaying it would double-count the lifetime counters
    // (and re-reject every RunStarted as a duplicate).
    let events = stream();
    let dir = ScratchDir::new("interrupted-checkpoint");
    let durable = DurableSession::open(&dir.0, durable_config(0)).expect("open");
    durable.ingest_batch(&events).expect("ingest");
    durable.flush().expect("flush");
    // Capture the pre-checkpoint WAL, checkpoint, then restore it — the
    // exact on-disk state of a crash after rename, before truncation.
    let wal_path = dir.0.join(WAL_FILE);
    let pre_checkpoint_wal = std::fs::read(&wal_path).unwrap();
    assert!(!pre_checkpoint_wal.is_empty());
    durable.checkpoint().expect("checkpoint");
    drop(durable);
    std::fs::write(&wal_path, &pre_checkpoint_wal).unwrap();

    let (recovered, stats) =
        OnlineSession::recover(&dir.0, SessionConfig::default()).expect("recover");
    assert!(stats.used_snapshot);
    assert!(stats.wal_stale, "old-epoch log must be detected as covered");
    assert_eq!(stats.wal_events_replayed, 0, "no double replay");
    let reference = control(&events);
    assert_eq!(
        recovered.stats().events_applied,
        reference.stats().events_applied
    );
    assert_eq!(
        recovered.stats().events_rejected,
        reference.stats().events_rejected
    );
    assert_eq!(recovered.reports(), reference.reports());

    // Reopening for writing completes the interrupted checkpoint (log
    // restarted on the snapshot's epoch) and appends keep working.
    let resumed = DurableSession::open(&dir.0, durable_config(0)).expect("reopen");
    let extra = TraceEvent::RunStarted {
        run: kojak::online::RunKey(900_000),
        version: kojak::online::VersionTag(900_000),
        program: "late".into(),
        compiled_at: DateTime::from_secs(1),
        source: String::new(),
        start: DateTime::from_secs(2),
        no_pe: 2,
        clockspeed: 450,
    };
    resumed
        .ingest(&extra)
        .expect("append after completed checkpoint");
    resumed.flush().expect("flush");
    assert_eq!(
        resumed.stats().events_applied,
        reference.stats().events_applied + 1
    );
}

#[test]
fn deleted_snapshot_behind_a_truncated_log_is_detected() {
    // After a checkpoint the log's epoch records that a snapshot covers
    // the truncated history; deleting the snapshot must surface as a
    // typed incompatibility, not as a silently empty session.
    let events = stream();
    let dir = ScratchDir::new("deleted-snap");
    let durable = DurableSession::open(&dir.0, durable_config(0)).expect("open");
    durable.ingest_batch(&events).expect("ingest");
    durable.checkpoint().expect("checkpoint");
    drop(durable);
    std::fs::remove_file(dir.0.join(SNAPSHOT_FILE)).unwrap();

    match OnlineSession::recover(&dir.0, SessionConfig::default()) {
        Err(RecoveryError::Incompatible { .. }) => {}
        Err(other) => panic!("expected Incompatible, got {other:?}"),
        Ok(_) => panic!("expected Incompatible, got a recovered session"),
    }
}

#[test]
fn newer_format_wal_frames_refuse_recovery_instead_of_truncating() {
    // A checksum-valid frame written by a future wire version (binary
    // downgrade): recovery must hard-stop — truncating it away would
    // destroy data a newer build could still read.
    let events = stream();
    let dir = ScratchDir::new("newer-wire");
    write_session_dir(&dir, &events[..events.len() / 2], 0);

    let wal_path = dir.0.join(WAL_FILE);
    let mut bytes = std::fs::read(&wal_path).unwrap();
    let mut payload = Vec::new();
    events[events.len() / 2].encode_wire(&mut payload);
    payload[0] = 9; // future WIRE_VERSION
    let mut frame = Vec::new();
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&kojak::online::wire::crc32(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    bytes.extend_from_slice(&frame);
    std::fs::write(&wal_path, &bytes).unwrap();

    let before = std::fs::metadata(&wal_path).unwrap().len();
    match OnlineSession::recover(&dir.0, SessionConfig::default()) {
        Err(RecoveryError::Incompatible { .. }) => {}
        Err(other) => panic!("expected Incompatible, got {other:?}"),
        Ok(_) => panic!("expected Incompatible, got a recovered session"),
    }
    match DurableSession::open(&dir.0, durable_config(0)) {
        Err(RecoveryError::Incompatible { .. }) => {}
        other => panic!("expected Incompatible, got {:?}", other.map(|_| ())),
    }
    // Nothing was truncated: the newer frames are intact for the build
    // that can read them.
    assert_eq!(std::fs::metadata(&wal_path).unwrap().len(), before);
}

#[test]
fn corrupt_snapshot_is_a_typed_error_not_a_panic() {
    let events = stream();
    let dir = ScratchDir::new("bad-snap");
    let durable = DurableSession::open(&dir.0, durable_config(0)).expect("open");
    durable.ingest_batch(&events).expect("ingest");
    durable.checkpoint().expect("checkpoint");
    drop(durable);

    let snap_path = dir.0.join(SNAPSHOT_FILE);
    let mut bytes = std::fs::read(&snap_path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    std::fs::write(&snap_path, &bytes).unwrap();

    // The WAL was truncated by the checkpoint, so the snapshot's history
    // exists nowhere else: this must be a hard, typed error.
    match OnlineSession::recover(&dir.0, SessionConfig::default()) {
        Err(RecoveryError::CorruptSnapshot { path, .. }) => assert_eq!(path, snap_path),
        Err(other) => panic!("expected CorruptSnapshot, got {other:?}"),
        Ok(_) => panic!("expected CorruptSnapshot, got a recovered session"),
    }
    match DurableSession::open(&dir.0, durable_config(0)) {
        Err(RecoveryError::CorruptSnapshot { .. }) => {}
        other => panic!("expected CorruptSnapshot, got {:?}", other.map(|_| ())),
    }
}
