//! Determinism guarantees: identical seeds produce identical databases and
//! identical analyses, regardless of rayon scheduling.

use kojak::apprentice_sim::{archetypes, simulate_program, MachineModel};
use kojak::cosy::{Analyzer, Backend, ProblemThreshold};
use kojak::perfdata::Store;

fn build(seed: u64) -> (Store, kojak::perfdata::VersionId) {
    let machine = MachineModel::t3e_900();
    let mut store = Store::new();
    let version = simulate_program(
        &mut store,
        &archetypes::particle_mc(seed),
        &machine,
        &[1, 8, 64],
    );
    (store, version)
}

#[test]
fn identical_seeds_identical_stores() {
    let (a, _) = build(7);
    let (b, _) = build(7);
    assert_eq!(a, b);
}

#[test]
fn different_seeds_differ() {
    let (a, _) = build(7);
    let (b, _) = build(8);
    assert_ne!(a, b);
}

#[test]
fn analysis_is_deterministic_across_runs() {
    let (store, version) = build(13);
    let run = *store.versions[version.index()].runs.last().unwrap();
    let analyzer = Analyzer::new(&store, version).unwrap();
    let first = analyzer
        .analyze(run, Backend::Interpreter, ProblemThreshold::default())
        .unwrap();
    for _ in 0..3 {
        let again = analyzer
            .analyze(run, Backend::Interpreter, ProblemThreshold::default())
            .unwrap();
        assert_eq!(first, again);
    }
}

#[test]
fn report_text_is_stable() {
    let (store, version) = build(13);
    let run = *store.versions[version.index()].runs.last().unwrap();
    let analyzer = Analyzer::new(&store, version).unwrap();
    let a = kojak::cosy::report::render_text(
        &analyzer
            .analyze(run, Backend::Interpreter, ProblemThreshold::default())
            .unwrap(),
    );
    let b = kojak::cosy::report::render_text(
        &analyzer
            .analyze(run, Backend::Interpreter, ProblemThreshold::default())
            .unwrap(),
    );
    assert_eq!(a, b);
}
