#!/usr/bin/env sh
# Deny-positionless-diagnostics gate for the span-precise lint pass.
#
# PR 9 threads real source spans from the checker through the compiled IR
# into every diagnostic, lint finding and runtime property error, so caret
# snippets always point at the offending expression. A `Diagnostic`
# constructed with `Span::default()` silently regresses that: it renders
# as line 1, column 1. This check rejects any such construction in crate
# sources (tests may still use `Span::default()` for fixtures — the grep
# targets the `Diagnostic` constructors, not spans in general). The
# `crates/*/src` glob picks up every workspace crate, `crates/flow`
# included — flow findings anchor notes to real spans the same way.
set -eu
cd "$(dirname "$0")/.."

matches=$(grep -rn --include='*.rs' \
    -e 'Diagnostic::error(Span::default()' \
    -e 'Diagnostic::warning(Span::default()' \
    -e '\.error(Span::default()' \
    -e '\.warning(Span::default()' \
    crates/*/src || true)
if [ -n "$matches" ]; then
    echo "positionless Diagnostic construction (Span::default()) found — thread the"
    echo "real span of the offending AST node instead so caret rendering works:"
    echo "$matches"
    exit 1
fi
echo "ok: no Diagnostic constructed from Span::default() in crates/*/src"
