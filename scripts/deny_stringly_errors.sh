#!/usr/bin/env sh
# Deny-new-`Result<_, String>` gate for the typed engine error hierarchy.
#
# The PR-4 API redesign replaced every stringly-typed failure on the
# public `cosy`/`online` surface with SpecError/AnalysisError/IngestError/
# FlushError/RecoveryError (unified as engine::EngineError), and PR 5
# deleted the last `#[deprecated]` stringly shims (`engine::compat`) and
# added the typed `net::NetError` hierarchy; PR 6's `kojak-obs` joins the
# gate from birth (its codec fails with `obs::SnapshotDecodeError`), as
# does PR 7's `kojak-faults` (injected failures are `io::Error`s wrapping
# a typed `faults::InjectedFault`), and PR 9's `kojak-lint` (gate failures
# are `lint::GateRejection`, front-end failures are `asl_core::Diagnostics`),
# and PR 10's `kojak-flow` (the abstract interpreter is total — it reports
# verdicts, it never fails, so nothing in it may return a stringly error).
# This check keeps stringly failures out: any `Result<…, String>` anywhere in
# those crates' sources — public or private, signatures or locals — fails
# CI.
set -eu
cd "$(dirname "$0")/.."

# Match any `, String>` tail rather than `Result<[^>]*, String>`: the
# latter cannot see through a generic Ok type (`Result<Vec<RunKey>,
# String>` — the exact shape PR 4 removed). The broader net also
# catches stringly map/tuple error payloads, which we don't want either.
matches=$(grep -rn --include='*.rs' ',[[:space:]]*String[[:space:]]*>' \
    crates/cosy/src crates/online/src crates/engine/src crates/net/src \
    crates/obs/src crates/faults/src crates/lint/src crates/flow/src || true)
if [ -n "$matches" ]; then
    echo "stringly-typed Result<_, String> found in crates/{cosy,online,engine,net,obs,faults,lint,flow} — use the"
    echo "typed error hierarchy (cosy::SpecError/AnalysisError, online::FlushError,"
    echo "engine::EngineError, net::NetError, obs::SnapshotDecodeError, faults::InjectedFault,"
    echo "lint::GateRejection, …):"
    echo "$matches"
    exit 1
fi
echo "ok: no Result<_, String> in crates/{cosy,online,engine,net,obs,faults,lint,flow}"
