#!/usr/bin/env sh
# Deny-new-`Result<_, String>` gate for the typed engine error hierarchy.
#
# The PR-4 API redesign replaced every stringly-typed failure on the
# public `cosy`/`online` surface with SpecError/AnalysisError/IngestError/
# FlushError/RecoveryError (unified as engine::EngineError). This check
# keeps them out: any `Result<…, String>` anywhere in those two crates'
# sources — public or private, signatures or locals — fails CI. The
# deliberately stringly `#[deprecated]` compat shims live in
# `crates/engine/src/compat.rs`, outside the scanned surface, and are
# deleted next PR (see ROADMAP.md).
set -eu
cd "$(dirname "$0")/.."

# Match any `, String>` tail rather than `Result<[^>]*, String>`: the
# latter cannot see through a generic Ok type (`Result<Vec<RunKey>,
# String>` — the exact shape this PR removed). The broader net also
# catches stringly map/tuple error payloads, which we don't want either.
matches=$(grep -rn --include='*.rs' ',[[:space:]]*String[[:space:]]*>' \
    crates/cosy/src crates/online/src || true)
if [ -n "$matches" ]; then
    echo "stringly-typed Result<_, String> found in crates/{cosy,online} — use the typed"
    echo "error hierarchy (cosy::SpecError/AnalysisError, online::FlushError, …):"
    echo "$matches"
    exit 1
fi
echo "ok: no Result<_, String> in crates/{cosy,online}"
