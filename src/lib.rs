//! # kojak — workspace façade
//!
//! Re-exports the crates of the KOJAK/ASL reproduction so examples and
//! integration tests can use a single dependency. See the individual crates
//! for documentation:
//!
//! * [`asl_core`] — the APART Specification Language front-end
//! * [`perfdata`] — the COSY performance-data model
//! * [`apprentice_sim`] — synthetic performance-data supply tool
//! * [`reldb`] — embedded relational database substrate
//! * [`asl_eval`] — ASL interpreter
//! * [`asl_sql`] — ASL→SQL compiler
//! * [`cosy`] — the KOJAK Cost Analyzer
//! * [`online`] — streaming trace ingestion + incremental analysis

pub use apprentice_sim;
pub use asl_core;
pub use asl_eval;
pub use asl_sql;
pub use cosy;
pub use online;
pub use perfdata;
pub use reldb;
