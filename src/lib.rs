//! # kojak — workspace façade
//!
//! Re-exports the crates of the KOJAK/ASL reproduction so examples and
//! integration tests can use a single dependency. See the individual crates
//! for documentation:
//!
//! * [`asl_core`] — the APART Specification Language front-end
//! * [`perfdata`] — the COSY performance-data model
//! * [`apprentice_sim`] — synthetic performance-data supply tool
//! * [`reldb`] — embedded relational database substrate
//! * [`asl_eval`] — ASL interpreter
//! * [`asl_sql`] — ASL→SQL compiler
//! * [`cosy`] — the KOJAK Cost Analyzer
//! * [`online`] — streaming trace ingestion + incremental analysis
//! * [`engine`] — **the documented way in**: the [`engine::AnalysisEngine`]
//!   trait over batch/online/durable/sharded engines, the
//!   [`engine::EngineBuilder`] construction path, and the typed
//!   [`engine::EngineError`] hierarchy
//! * [`net`] — the framed TCP wire protocol: [`net::EngineServer`]
//!   fronting any engine, [`net::TraceProducer`] streaming events from
//!   remote monitors with backpressure and reconnect-with-resume
//! * [`obs`] — self-instrumentation: the [`obs::MetricsRegistry`],
//!   scoped [`obs::StageTimer`]s on every pipeline stage, and the
//!   [`obs::MetricsSnapshot`] the `Introspect` RPC ships
//! * [`lint`] — span-precise static analysis over COSY specs:
//!   correctness lints, IR-cost-model performance lints, the
//!   `cosy_lint` CLI modes, and the [`lint::LintGate`] the
//!   [`engine::EngineBuilder`] applies at suite load
//! * [`flow`] — abstract interpretation over the compiled IR:
//!   interval/unit/cardinality domains, [`flow::DivVerdict`] triage of
//!   division sites, guard implication ([`flow::ConstraintSet`]) and
//!   whole-suite property subsumption; feeds the semantic lint rules
//!   and sharpens the static cost model with proven loop bounds
//! * [`faults`] — deterministic fault injection: seeded
//!   [`faults::FaultPlan`]s drive the WAL/snapshot/socket seams in
//!   chaos tests; a zero-cost passthrough unless built with the
//!   `faults` feature
//!
//! ```
//! use kojak::engine::{AnalysisEngine, EngineBuilder};
//!
//! let session = EngineBuilder::new().build_online();
//! assert!(session.reports().is_empty());
//! ```

pub use apprentice_sim;
pub use asl_core;
pub use asl_eval;
pub use asl_sql;
pub use cosy;
pub use engine;
pub use faults;
pub use flow;
pub use lint;
pub use net;
pub use obs;
pub use online;
pub use perfdata;
pub use reldb;
