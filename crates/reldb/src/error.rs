//! Error type shared by the SQL front-end and the execution engine.

use std::fmt;

/// Any error produced by `reldb`.
#[derive(Debug, Clone, PartialEq)]
pub enum DbError {
    /// The SQL text could not be tokenized or parsed.
    Parse(String),
    /// A referenced table/column/index does not exist, or a name clashes.
    Catalog(String),
    /// The statement is well-formed but semantically invalid (type
    /// mismatch, wrong arity, ambiguous column, …).
    Semantic(String),
    /// A constraint was violated at execution time (duplicate primary key,
    /// NOT NULL violation, …).
    Constraint(String),
    /// Runtime evaluation error (division by zero, invalid cast, …).
    Eval(String),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Parse(m) => write!(f, "parse error: {m}"),
            DbError::Catalog(m) => write!(f, "catalog error: {m}"),
            DbError::Semantic(m) => write!(f, "semantic error: {m}"),
            DbError::Constraint(m) => write!(f, "constraint violation: {m}"),
            DbError::Eval(m) => write!(f, "evaluation error: {m}"),
        }
    }
}

impl std::error::Error for DbError {}

/// Convenience alias.
pub type DbResult<T> = Result<T, DbError>;
