//! Logical planning: row layouts, predicate classification, pushdown and
//! index selection.
//!
//! A SELECT's FROM clause produces a *layout*: the concatenation of the
//! columns of every referenced table, in FROM order. The planner splits the
//! WHERE/ON conjuncts into
//!
//! * **scan filters** — conjuncts touching a single table, pushed to its
//!   scan (and satisfied by a hash-index point lookup when they have the
//!   shape `col = literal` and an index exists);
//! * **join predicates** — conjuncts that become evaluable exactly when a
//!   join step completes; equality predicates whose sides split across the
//!   join become hash-join keys;
//! * **residual predicates** — everything else (correlated subqueries,
//!   expressions over three or more tables), evaluated after all joins.

use crate::db::Database;
use crate::error::{DbError, DbResult};
use crate::sql::ast::*;

/// One column slot of a row layout.
#[derive(Debug, Clone, PartialEq)]
pub struct LayoutCol {
    /// Visible table name (alias if given).
    pub table: String,
    /// Column name.
    pub column: String,
}

/// The flattened column layout of a FROM clause.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Layout {
    /// All columns in slot order.
    pub cols: Vec<LayoutCol>,
    /// Per-table slot ranges `(visible_name, real_table, start, end)`.
    pub tables: Vec<(String, String, usize, usize)>,
}

impl Layout {
    /// Build the layout for a FROM clause against the catalog.
    pub fn build(db: &Database, from: &TableRef, joins: &[Join]) -> DbResult<Layout> {
        let mut layout = Layout::default();
        layout.push_table(db, from)?;
        for j in joins {
            layout.push_table(db, &j.table)?;
        }
        Ok(layout)
    }

    fn push_table(&mut self, db: &Database, tr: &TableRef) -> DbResult<()> {
        let table = db
            .table(&tr.table)
            .ok_or_else(|| DbError::Catalog(format!("unknown table `{}`", tr.table)))?;
        let visible = tr.visible_name().to_string();
        if self
            .tables
            .iter()
            .any(|(v, ..)| v.eq_ignore_ascii_case(&visible))
        {
            return Err(DbError::Semantic(format!(
                "duplicate table name/alias `{visible}` in FROM"
            )));
        }
        let start = self.cols.len();
        for c in &table.schema.columns {
            self.cols.push(LayoutCol {
                table: visible.clone(),
                column: c.name.clone(),
            });
        }
        self.tables
            .push((visible, tr.table.clone(), start, self.cols.len()));
        Ok(())
    }

    /// Resolve a column reference to a slot. Qualified references must match
    /// the table; unqualified references must be unambiguous.
    pub fn resolve(&self, table: Option<&str>, column: &str) -> DbResult<usize> {
        match self.try_resolve(table, column) {
            Some(slot) => Ok(slot),
            None => Err(DbError::Semantic(format!(
                "unknown column `{}{column}`",
                table.map(|t| format!("{t}.")).unwrap_or_default()
            ))),
        }
    }

    /// Like [`Layout::resolve`] but returns `None` instead of an error
    /// (used for correlated-subquery resolution fallthrough).
    pub fn try_resolve(&self, table: Option<&str>, column: &str) -> Option<usize> {
        match self.resolution(table, column) {
            Resolution::Slot(s) => Some(s),
            _ => None,
        }
    }

    /// Full three-way resolution of a column reference.
    pub fn resolution(&self, table: Option<&str>, column: &str) -> Resolution {
        match table {
            Some(t) => self
                .cols
                .iter()
                .position(|c| {
                    c.table.eq_ignore_ascii_case(t) && c.column.eq_ignore_ascii_case(column)
                })
                .map(Resolution::Slot)
                .unwrap_or(Resolution::Absent),
            None => {
                let mut found = None;
                for (i, c) in self.cols.iter().enumerate() {
                    if c.column.eq_ignore_ascii_case(column) {
                        if found.is_some() {
                            return Resolution::Ambiguous;
                        }
                        found = Some(i);
                    }
                }
                found.map(Resolution::Slot).unwrap_or(Resolution::Absent)
            }
        }
    }

    /// Which table span (index into `tables`) owns a slot?
    pub fn owner_of(&self, slot: usize) -> usize {
        self.tables
            .iter()
            .position(|(_, _, s, e)| slot >= *s && slot < *e)
            .expect("slot within layout")
    }

    /// Analyze which slots (and what else) an expression references.
    pub fn analyze(&self, e: &SqlExpr) -> ExprInfo {
        let mut info = ExprInfo::default();
        self.analyze_into(e, &mut info);
        info
    }

    fn analyze_into(&self, e: &SqlExpr, info: &mut ExprInfo) {
        match e {
            SqlExpr::Lit(_) => {}
            SqlExpr::Col { table, column } => match self.resolution(table.as_deref(), column) {
                Resolution::Slot(s) => info.slots.push(s),
                Resolution::Ambiguous => info.ambiguous = true,
                // Unknown here — may be an outer (correlated) reference.
                Resolution::Absent => info.outer = true,
            },
            SqlExpr::Neg(i) | SqlExpr::Not(i) | SqlExpr::IsNull(i, _) => self.analyze_into(i, info),
            SqlExpr::Binary(_, a, b) => {
                self.analyze_into(a, info);
                self.analyze_into(b, info);
            }
            SqlExpr::InList(x, list, _) => {
                self.analyze_into(x, info);
                for l in list {
                    self.analyze_into(l, info);
                }
            }
            SqlExpr::Func { args, .. } => {
                for a in args {
                    self.analyze_into(a, info);
                }
            }
            SqlExpr::Agg { .. } => info.aggregate = true,
            SqlExpr::Subquery(_) | SqlExpr::Exists(_) => info.subquery = true,
        }
    }

    /// Convenience: the slots of an expression, or `None` when it contains
    /// subqueries, aggregates, ambiguous or outer references.
    pub fn slots_of(&self, e: &SqlExpr) -> Option<Vec<usize>> {
        let info = self.analyze(e);
        if info.subquery || info.aggregate || info.ambiguous || info.outer {
            None
        } else {
            Some(info.slots)
        }
    }
}

/// What a predicate expression references (see [`Layout::analyze`]).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExprInfo {
    /// Slots of this layout referenced by the expression.
    pub slots: Vec<usize>,
    /// References that do not resolve in this layout (correlated/outer).
    pub outer: bool,
    /// Contains a subquery (not pushable — may reference sibling tables).
    pub subquery: bool,
    /// Contains an aggregate call.
    pub aggregate: bool,
    /// Contains an ambiguous unqualified column (an error).
    pub ambiguous: bool,
}

/// Result of resolving one column reference in a layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resolution {
    /// Resolved to a slot.
    Slot(usize),
    /// Matches several columns; needs qualification.
    Ambiguous,
    /// Not present in this layout (possibly an outer reference).
    Absent,
}

/// An index-assisted point lookup on a scan. The key expression contains no
/// columns of the scanned table — it is a literal or references outer rows
/// only, so it is constant for the duration of one scan and evaluated when
/// the scan starts (this is how correlated subqueries hit indexes, as the
/// paper's production databases did).
#[derive(Debug, Clone, PartialEq)]
pub struct IndexLookup {
    /// Column index *within the table schema*.
    pub column: usize,
    /// The key expression (no references to the scanned table).
    pub key: SqlExpr,
}

/// The planned access path of one FROM table.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ScanPlan {
    /// Conjuncts evaluable on this table alone (slot-relative to the table).
    pub filters: Vec<SqlExpr>,
    /// Optional index point lookup replacing the full scan.
    pub index: Option<IndexLookup>,
}

/// One join step.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JoinPlan {
    /// Hash-join key pair `(left_expr, right_expr)`; sides are expressions
    /// over the accumulated left layout and the right table respectively.
    pub hash_key: Option<(SqlExpr, SqlExpr)>,
    /// Predicates checked on the combined row at this step.
    pub predicates: Vec<SqlExpr>,
}

/// The full FROM/WHERE plan of a SELECT.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FromPlan {
    /// The layout of the joined row.
    pub layout: Layout,
    /// Access path per table (same order as `layout.tables`).
    pub scans: Vec<ScanPlan>,
    /// One entry per JOIN clause.
    pub joins: Vec<JoinPlan>,
    /// Predicates evaluated after all joins (incl. correlated subqueries).
    pub residual: Vec<SqlExpr>,
}

/// Plan the FROM/WHERE part of a SELECT.
pub fn plan_from(db: &Database, sel: &SelectStmt) -> DbResult<FromPlan> {
    let Some(from) = &sel.from else {
        return Ok(FromPlan::default());
    };
    let layout = Layout::build(db, from, &sel.joins)?;
    let n_tables = layout.tables.len();
    let mut scans = vec![ScanPlan::default(); n_tables];
    let mut joins = vec![JoinPlan::default(); sel.joins.len()];
    let mut residual = Vec::new();

    // Gather all conjuncts: WHERE + each ON (ON conjuncts may not be pushed
    // above their own join step, but since all joins are inner, pushing
    // further down is sound).
    let mut conjuncts: Vec<SqlExpr> = Vec::new();
    if let Some(w) = &sel.where_ {
        conjuncts.extend(w.clone().conjuncts());
    }
    for j in &sel.joins {
        conjuncts.extend(j.on.clone().conjuncts());
    }

    for c in conjuncts {
        if matches!(c, SqlExpr::Lit(crate::value::Value::Bool(true))) {
            continue; // trivial (comma joins)
        }
        let info = layout.analyze(&c);
        if info.ambiguous {
            return Err(DbError::Semantic(
                "ambiguous unqualified column in predicate; qualify it".into(),
            ));
        }
        if info.subquery || info.aggregate {
            residual.push(c);
            continue;
        }
        let owners: Vec<usize> = {
            let mut o: Vec<usize> = info.slots.iter().map(|s| layout.owner_of(*s)).collect();
            o.sort_unstable();
            o.dedup();
            o
        };
        match owners.len() {
            // Only outer references / literals: constant per outer row —
            // cheapest on the base scan.
            0 => scans[0].filters.push(c),
            // Single-table predicates push to that scan; outer references
            // are fine (frames are available at scan time).
            1 => scans[owners[0]].filters.push(c),
            _ => {
                // Evaluable at the join step that brings in the last
                // referenced table. Table 0 is the base; join step k
                // introduces table k+1.
                let last = *owners.last().expect("non-empty");
                let step = last - 1;
                // Hash key detection: equality with sides splitting as
                // (≤ last-1 tables) vs (exactly table `last`), neither side
                // using outer references.
                if let SqlExpr::Binary(SqlBinOp::Eq, a, b) = &c {
                    let (sa, sb) = (layout.slots_of(a), layout.slots_of(b));
                    if let (Some(sa), Some(sb)) = (sa, sb) {
                        let side = |ss: &[usize]| -> Option<bool> {
                            // true = right side (table `last`), false = left.
                            if ss.iter().all(|s| layout.owner_of(*s) == last) && !ss.is_empty() {
                                Some(true)
                            } else if ss.iter().all(|s| layout.owner_of(*s) < last) {
                                Some(false)
                            } else {
                                None
                            }
                        };
                        if joins[step].hash_key.is_none() {
                            match (side(&sa), side(&sb)) {
                                (Some(false), Some(true)) => {
                                    joins[step].hash_key = Some(((**a).clone(), (**b).clone()));
                                    continue;
                                }
                                (Some(true), Some(false)) => {
                                    joins[step].hash_key = Some(((**b).clone(), (**a).clone()));
                                    continue;
                                }
                                _ => {}
                            }
                        }
                    }
                }
                joins[step].predicates.push(c);
            }
        }
    }

    // Index selection on scans: `col = key` where the key expression does
    // not reference the scanned table (literal or outer/correlated).
    for (ti, scan) in scans.iter_mut().enumerate() {
        let (_, real, start, _) = &layout.tables[ti];
        let table = db.table(real).expect("table exists");
        let mut chosen = None;
        let mut keep = Vec::new();
        for f in scan.filters.drain(..) {
            if chosen.is_none() {
                if let SqlExpr::Binary(SqlBinOp::Eq, a, b) = &f {
                    let as_lookup = |col: &SqlExpr, key: &SqlExpr| -> Option<IndexLookup> {
                        let SqlExpr::Col { table: t, column } = col else {
                            return None;
                        };
                        let slot = layout.try_resolve(t.as_deref(), column)?;
                        if layout.owner_of(slot) != ti {
                            return None;
                        }
                        // The key must be constant during the scan: no
                        // columns of this layout, no subqueries.
                        let kinfo = layout.analyze(key);
                        if !kinfo.slots.is_empty()
                            || kinfo.subquery
                            || kinfo.aggregate
                            || kinfo.ambiguous
                        {
                            return None;
                        }
                        let col_in_table = slot - start;
                        table.index_on(col_in_table)?;
                        Some(IndexLookup {
                            column: col_in_table,
                            key: key.clone(),
                        })
                    };
                    if let Some(l) = as_lookup(a, b).or_else(|| as_lookup(b, a)) {
                        chosen = Some(l);
                        continue; // consumed by the index
                    }
                }
            }
            keep.push(f);
        }
        scan.filters = keep;
        scan.index = chosen;
    }

    Ok(FromPlan {
        layout,
        scans,
        joins,
        residual,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::Database;
    use crate::sql::parser::parse_statement;

    fn db() -> Database {
        let mut db = Database::new();
        db.execute("CREATE TABLE region (id INTEGER PRIMARY KEY, fn_id INTEGER, name TEXT)")
            .unwrap();
        db.execute("CREATE TABLE timing (id INTEGER PRIMARY KEY, region_id INTEGER, run_id INTEGER, incl REAL)")
            .unwrap();
        db.execute("CREATE INDEX t_r ON timing (region_id)")
            .unwrap();
        db
    }

    fn plan(db: &Database, sql: &str) -> FromPlan {
        let stmt = parse_statement(sql).unwrap();
        match stmt {
            crate::sql::ast::Stmt::Select(sel) => plan_from(db, &sel).unwrap(),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn layout_concatenates_tables() {
        let db = db();
        let p = plan(
            &db,
            "SELECT * FROM region r JOIN timing t ON t.region_id = r.id",
        );
        assert_eq!(p.layout.cols.len(), 3 + 4);
        assert_eq!(p.layout.tables.len(), 2);
        assert_eq!(p.layout.resolve(Some("t"), "incl").unwrap(), 6);
    }

    #[test]
    fn single_table_conjunct_pushed_to_scan() {
        let db = db();
        let p = plan(
            &db,
            "SELECT * FROM region r JOIN timing t ON t.region_id = r.id WHERE t.run_id = 3 AND r.name = 'main'",
        );
        // r.name = 'main' pushed to scan 0; t.run_id = 3 pushed to scan 1.
        assert_eq!(p.scans[0].filters.len(), 1);
        assert_eq!(p.scans[1].filters.len(), 1);
        assert!(p.residual.is_empty());
    }

    #[test]
    fn equality_join_becomes_hash_key() {
        let db = db();
        let p = plan(
            &db,
            "SELECT * FROM region r JOIN timing t ON t.region_id = r.id",
        );
        assert!(p.joins[0].hash_key.is_some());
        assert!(p.joins[0].predicates.is_empty());
    }

    #[test]
    fn index_lookup_selected_for_pk() {
        let db = db();
        let p = plan(&db, "SELECT * FROM region WHERE id = 7");
        let lookup = p.scans[0].index.as_ref().unwrap();
        assert_eq!(lookup.column, 0);
        assert_eq!(lookup.key, SqlExpr::Lit(crate::value::Value::Int(7)));
        assert!(p.scans[0].filters.is_empty());
    }

    #[test]
    fn correlated_key_gets_index_lookup() {
        // An outer (unresolvable) reference as the key: the shape of every
        // correlated subquery the ASL compiler generates.
        let db = db();
        let p = plan(&db, "SELECT * FROM timing WHERE region_id = ctx.id");
        let lookup = p.scans[0].index.as_ref().unwrap();
        assert_eq!(lookup.column, 1);
        assert!(matches!(lookup.key, SqlExpr::Col { .. }));
    }

    #[test]
    fn secondary_index_used() {
        let db = db();
        let p = plan(&db, "SELECT * FROM timing WHERE region_id = 2 AND incl > 0");
        let lookup = p.scans[0].index.as_ref().unwrap();
        assert_eq!(lookup.column, 1);
        assert_eq!(p.scans[0].filters.len(), 1); // incl > 0 remains
    }

    #[test]
    fn non_equality_join_is_predicate() {
        let db = db();
        let p = plan(&db, "SELECT * FROM region r JOIN timing t ON t.incl > r.id");
        assert!(p.joins[0].hash_key.is_none());
        assert_eq!(p.joins[0].predicates.len(), 1);
    }

    #[test]
    fn subquery_predicate_is_residual() {
        let db = db();
        let p = plan(
            &db,
            "SELECT * FROM region WHERE id = (SELECT MIN(region_id) FROM timing)",
        );
        assert_eq!(p.residual.len(), 1);
    }

    #[test]
    fn ambiguous_unqualified_column_is_planning_error() {
        let db = db();
        let stmt = parse_statement(
            "SELECT * FROM region r JOIN timing t ON t.region_id = r.id WHERE id = 1",
        )
        .unwrap();
        match stmt {
            crate::sql::ast::Stmt::Select(sel) => {
                // `id` exists in both tables → must be qualified.
                assert!(plan_from(&db, &sel).is_err());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn duplicate_alias_rejected() {
        let db = db();
        let stmt = parse_statement("SELECT * FROM region r JOIN timing r ON 1 = 1").unwrap();
        match stmt {
            crate::sql::ast::Stmt::Select(sel) => {
                assert!(plan_from(&db, &sel).is_err());
            }
            other => panic!("{other:?}"),
        }
    }
}
