//! The database: catalog of tables plus statement dispatch.

use crate::error::{DbError, DbResult};
use crate::exec::{eval_expr, run_select, ExecStats, Frames};
use crate::plan::{Layout, LayoutCol};
use crate::schema::{ColumnDef, TableSchema};
use crate::sql::ast::*;
use crate::sql::parser::parse_statement;
use crate::table::Table;
use crate::value::{Row, Value};
use std::collections::BTreeMap;

/// Result of executing one statement.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryResult {
    /// Output column names (SELECT only).
    pub columns: Vec<String>,
    /// Result rows (SELECT only).
    pub rows: Vec<Row>,
    /// Rows affected (INSERT/UPDATE/DELETE).
    pub affected: u64,
    /// Execution statistics.
    pub stats: ExecStats,
}

impl QueryResult {
    /// The single value of a one-row/one-column result.
    pub fn scalar(&self) -> Option<&Value> {
        if self.rows.len() == 1 && self.rows[0].len() == 1 {
            Some(&self.rows[0][0])
        } else {
            None
        }
    }

    /// Approximate wire size of the result rows in bytes.
    pub fn wire_size(&self) -> usize {
        self.rows
            .iter()
            .map(|r| r.iter().map(Value::wire_size).sum::<usize>())
            .sum()
    }
}

/// An in-memory relational database.
#[derive(Debug, Clone, Default)]
pub struct Database {
    /// Tables keyed by lowercase name (lookups are case-insensitive).
    tables: BTreeMap<String, Table>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Look up a table (case-insensitive).
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(&name.to_ascii_lowercase())
    }

    /// Mutable table lookup (case-insensitive).
    pub fn table_mut(&mut self, name: &str) -> Option<&mut Table> {
        self.tables.get_mut(&name.to_ascii_lowercase())
    }

    /// Names of all tables, sorted.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables
            .values()
            .map(|t| t.schema.name.as_str())
            .collect()
    }

    /// Create a table from a schema (programmatic API used by `asl-sql`).
    pub fn create_table(&mut self, schema: TableSchema) -> DbResult<()> {
        let key = schema.name.to_ascii_lowercase();
        if self.tables.contains_key(&key) {
            return Err(DbError::Catalog(format!(
                "table `{}` already exists",
                schema.name
            )));
        }
        self.tables.insert(key, Table::new(schema));
        Ok(())
    }

    /// Bulk-insert pre-built rows (fast path for loaders; all constraint
    /// checks still apply).
    pub fn insert_rows(&mut self, table: &str, rows: Vec<Row>) -> DbResult<u64> {
        let t = self
            .table_mut(table)
            .ok_or_else(|| DbError::Catalog(format!("unknown table `{table}`")))?;
        let mut n = 0;
        for row in rows {
            t.insert(row)?;
            n += 1;
        }
        Ok(n)
    }

    /// Execute any SQL statement.
    pub fn execute(&mut self, sql: &str) -> DbResult<QueryResult> {
        let stmt = parse_statement(sql)?;
        self.execute_stmt(stmt)
    }

    /// Execute a SELECT without requiring `&mut self`.
    pub fn query(&self, sql: &str) -> DbResult<QueryResult> {
        match parse_statement(sql)? {
            Stmt::Select(sel) => {
                let mut stats = ExecStats::default();
                let (columns, rows) = run_select(self, &sel, &Frames::new(), &mut stats)?;
                Ok(QueryResult {
                    columns,
                    rows,
                    affected: 0,
                    stats,
                })
            }
            _ => Err(DbError::Semantic(
                "query() accepts SELECT statements only".into(),
            )),
        }
    }

    /// Execute a parsed statement.
    pub fn execute_stmt(&mut self, stmt: Stmt) -> DbResult<QueryResult> {
        match stmt {
            Stmt::CreateTable { name, columns } => {
                let mut defs = Vec::new();
                let mut pk = None;
                for (i, (cname, ty, not_null, is_pk)) in columns.into_iter().enumerate() {
                    if is_pk {
                        if pk.is_some() {
                            return Err(DbError::Catalog(
                                "multiple PRIMARY KEY columns are not supported".into(),
                            ));
                        }
                        pk = Some(i);
                    }
                    defs.push(if not_null {
                        ColumnDef::not_null(cname, ty)
                    } else {
                        ColumnDef::new(cname, ty)
                    });
                }
                self.create_table(TableSchema::new(name, defs, pk)?)?;
                Ok(QueryResult::default())
            }
            Stmt::CreateIndex { table, column, .. } => {
                let t = self
                    .table_mut(&table)
                    .ok_or_else(|| DbError::Catalog(format!("unknown table `{table}`")))?;
                let col = t.schema.column_index(&column).ok_or_else(|| {
                    DbError::Catalog(format!("unknown column `{column}` in `{table}`"))
                })?;
                t.create_index(col)?;
                Ok(QueryResult::default())
            }
            Stmt::Insert {
                table,
                columns,
                values,
            } => {
                let mut stats = ExecStats::default();
                // Evaluate value expressions first (no row context).
                let empty_layout = Layout::default();
                let schema = self
                    .table(&table)
                    .ok_or_else(|| DbError::Catalog(format!("unknown table `{table}`")))?
                    .schema
                    .clone();
                let col_map: Vec<usize> = match &columns {
                    None => (0..schema.arity()).collect(),
                    Some(cols) => {
                        let mut m = Vec::with_capacity(cols.len());
                        for c in cols {
                            m.push(schema.column_index(c).ok_or_else(|| {
                                DbError::Catalog(format!("unknown column `{c}` in `{table}`"))
                            })?);
                        }
                        m
                    }
                };
                let mut built = Vec::with_capacity(values.len());
                for tuple in values {
                    if tuple.len() != col_map.len() {
                        return Err(DbError::Semantic(format!(
                            "INSERT expects {} values per row, got {}",
                            col_map.len(),
                            tuple.len()
                        )));
                    }
                    let mut row = vec![Value::Null; schema.arity()];
                    for (expr, &slot) in tuple.iter().zip(col_map.iter()) {
                        row[slot] =
                            eval_expr(self, expr, &empty_layout, &[], &Frames::new(), &mut stats)?;
                    }
                    built.push(row);
                }
                let n = self.insert_rows(&table, built)?;
                Ok(QueryResult {
                    affected: n,
                    stats,
                    ..Default::default()
                })
            }
            Stmt::Select(sel) => {
                let mut stats = ExecStats::default();
                let (columns, rows) = run_select(self, &sel, &Frames::new(), &mut stats)?;
                Ok(QueryResult {
                    columns,
                    rows,
                    affected: 0,
                    stats,
                })
            }
            Stmt::Update {
                table,
                sets,
                where_,
            } => {
                let mut stats = ExecStats::default();
                let t = self
                    .table(&table)
                    .ok_or_else(|| DbError::Catalog(format!("unknown table `{table}`")))?;
                let layout = single_table_layout(t, &table);
                let set_slots: Vec<(usize, SqlExpr)> = sets
                    .into_iter()
                    .map(|(c, e)| {
                        t.schema.column_index(&c).map(|i| (i, e)).ok_or_else(|| {
                            DbError::Catalog(format!("unknown column `{c}` in `{table}`"))
                        })
                    })
                    .collect::<DbResult<_>>()?;

                // Collect matching row ids and their new images first (the
                // borrow of `t` must end before mutation).
                let mut updates: Vec<(usize, Row)> = Vec::new();
                for (id, row) in t.iter() {
                    stats.rows_scanned += 1;
                    if let Some(w) = &where_ {
                        let v = eval_expr(self, w, &layout, row, &Frames::new(), &mut stats)?;
                        if !v.as_bool().unwrap_or(false) {
                            continue;
                        }
                    }
                    let mut new_row = row.clone();
                    for (slot, expr) in &set_slots {
                        new_row[*slot] =
                            eval_expr(self, expr, &layout, row, &Frames::new(), &mut stats)?;
                    }
                    updates.push((id, new_row));
                }
                let n = updates.len() as u64;
                let t = self.table_mut(&table).expect("checked above");
                for (id, new_row) in updates {
                    t.update(id, new_row)?;
                }
                Ok(QueryResult {
                    affected: n,
                    stats,
                    ..Default::default()
                })
            }
            Stmt::Delete { table, where_ } => {
                let mut stats = ExecStats::default();
                let t = self
                    .table(&table)
                    .ok_or_else(|| DbError::Catalog(format!("unknown table `{table}`")))?;
                let layout = single_table_layout(t, &table);
                let mut doomed = Vec::new();
                for (id, row) in t.iter() {
                    stats.rows_scanned += 1;
                    match &where_ {
                        None => doomed.push(id),
                        Some(w) => {
                            let v = eval_expr(self, w, &layout, row, &Frames::new(), &mut stats)?;
                            if v.as_bool().unwrap_or(false) {
                                doomed.push(id);
                            }
                        }
                    }
                }
                let n = doomed.len() as u64;
                let t = self.table_mut(&table).expect("checked above");
                for id in doomed {
                    t.delete(id);
                }
                Ok(QueryResult {
                    affected: n,
                    stats,
                    ..Default::default()
                })
            }
            Stmt::DropTable { name } => {
                let key = name.to_ascii_lowercase();
                if self.tables.remove(&key).is_none() {
                    return Err(DbError::Catalog(format!("unknown table `{name}`")));
                }
                Ok(QueryResult::default())
            }
        }
    }
}

fn single_table_layout(t: &Table, visible: &str) -> Layout {
    Layout {
        cols: t
            .schema
            .columns
            .iter()
            .map(|c| LayoutCol {
                table: visible.to_string(),
                column: c.name.clone(),
            })
            .collect(),
        tables: vec![(
            visible.to_string(),
            t.schema.name.clone(),
            0,
            t.schema.arity(),
        )],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> Database {
        let mut db = Database::new();
        db.execute("CREATE TABLE run (id INTEGER PRIMARY KEY, nope INTEGER NOT NULL)")
            .unwrap();
        db.execute("CREATE TABLE timing (id INTEGER PRIMARY KEY, run_id INTEGER, region TEXT, incl REAL, ovhd REAL)")
            .unwrap();
        db.execute("INSERT INTO run (id, nope) VALUES (1, 2), (2, 8), (3, 32)")
            .unwrap();
        db.execute(
            "INSERT INTO timing (id, run_id, region, incl, ovhd) VALUES \
             (1, 1, 'main', 10.0, 0.5), (2, 2, 'main', 14.0, 1.5), (3, 3, 'main', 30.0, 6.0), \
             (4, 1, 'loop', 8.0, 0.25), (5, 2, 'loop', 11.0, 1.2), (6, 3, 'loop', 24.0, 5.0)",
        )
        .unwrap();
        db
    }

    #[test]
    fn select_where_and_projection() {
        let db = setup();
        let r = db
            .query("SELECT region, incl FROM timing WHERE run_id = 2 ORDER BY incl DESC")
            .unwrap();
        assert_eq!(r.columns, vec!["region", "incl"]);
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.rows[0][0], Value::Text("main".into()));
    }

    #[test]
    fn join_with_hash_key() {
        let db = setup();
        let r = db
            .query(
                "SELECT t.region, r.nope FROM timing t JOIN run r ON t.run_id = r.id \
                 WHERE r.nope = 8",
            )
            .unwrap();
        assert_eq!(r.rows.len(), 2);
        assert!(r.rows.iter().all(|row| row[1] == Value::Int(8)));
    }

    #[test]
    fn group_by_with_having_and_aggregates() {
        let db = setup();
        let r = db
            .query(
                "SELECT region, SUM(incl) AS total, COUNT(*) AS n FROM timing \
                 GROUP BY region HAVING SUM(incl) > 40 ORDER BY total DESC",
            )
            .unwrap();
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.rows[0][0], Value::Text("main".into()));
        assert_eq!(r.rows[0][1], Value::Float(54.0));
        assert_eq!(r.rows[0][2], Value::Int(3));
    }

    #[test]
    fn aggregate_without_group_by() {
        let db = setup();
        let r = db.query("SELECT MIN(nope), MAX(nope) FROM run").unwrap();
        assert_eq!(r.rows[0], vec![Value::Int(2), Value::Int(32)]);
    }

    #[test]
    fn count_on_empty_table() {
        let mut db = Database::new();
        db.execute("CREATE TABLE e (x INTEGER)").unwrap();
        let r = db.query("SELECT COUNT(*) FROM e").unwrap();
        assert_eq!(r.rows[0][0], Value::Int(0));
        // MIN of empty set is NULL.
        let r = db.query("SELECT MIN(x) FROM e").unwrap();
        assert_eq!(r.rows[0][0], Value::Null);
    }

    #[test]
    fn scalar_subquery_uncorrelated() {
        let db = setup();
        let r = db
            .query(
                "SELECT region FROM timing WHERE run_id = \
                 (SELECT id FROM run WHERE nope = (SELECT MIN(nope) FROM run))",
            )
            .unwrap();
        assert_eq!(r.rows.len(), 2);
    }

    #[test]
    fn correlated_subquery() {
        let db = setup();
        // Regions whose inclusive time in their run exceeds the average
        // inclusive time of that run... simplified: timing rows whose incl
        // is the max among rows of the same run.
        let r = db
            .query(
                "SELECT t.id FROM timing t WHERE t.incl = \
                 (SELECT MAX(u.incl) FROM timing u WHERE u.run_id = t.run_id) \
                 ORDER BY t.id",
            )
            .unwrap();
        let ids: Vec<i64> = r.rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
        assert_eq!(ids, vec![1, 2, 3]); // the 'main' rows
    }

    #[test]
    fn exists_subquery() {
        let db = setup();
        let r = db
            .query(
                "SELECT r.id FROM run r WHERE EXISTS \
                 (SELECT 1 FROM timing t WHERE t.run_id = r.id AND t.incl > 20)",
            )
            .unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0][0], Value::Int(3));
    }

    #[test]
    fn update_and_delete() {
        let mut db = setup();
        let r = db
            .execute("UPDATE timing SET ovhd = ovhd * 2 WHERE region = 'loop'")
            .unwrap();
        assert_eq!(r.affected, 3);
        let r = db
            .query("SELECT SUM(ovhd) FROM timing WHERE region = 'loop'")
            .unwrap();
        assert_eq!(r.rows[0][0], Value::Float(2.0 * (0.25 + 1.2 + 5.0)));
        let r = db.execute("DELETE FROM timing WHERE run_id = 1").unwrap();
        assert_eq!(r.affected, 2);
        assert_eq!(db.table("timing").unwrap().len(), 4);
    }

    #[test]
    fn distinct_and_limit() {
        let db = setup();
        let r = db.query("SELECT DISTINCT region FROM timing").unwrap();
        assert_eq!(r.rows.len(), 2);
        let r = db
            .query("SELECT region FROM timing ORDER BY incl LIMIT 3")
            .unwrap();
        assert_eq!(r.rows.len(), 3);
    }

    #[test]
    fn star_expansion() {
        let db = setup();
        let r = db.query("SELECT * FROM run ORDER BY id").unwrap();
        assert_eq!(r.columns, vec!["id", "nope"]);
        assert_eq!(r.rows.len(), 3);
    }

    #[test]
    fn index_lookup_reduces_scanned_rows() {
        let db = setup();
        let by_pk = db.query("SELECT incl FROM timing WHERE id = 3").unwrap();
        assert_eq!(by_pk.stats.rows_scanned, 1);
        assert_eq!(by_pk.stats.index_lookups, 1);
        let full = db.query("SELECT incl FROM timing WHERE incl > 0").unwrap();
        assert_eq!(full.stats.rows_scanned, 6);
    }

    #[test]
    fn division_yields_float() {
        let db = Database::new();
        let r = db.query("SELECT 3 / 2").unwrap();
        assert_eq!(r.rows[0][0], Value::Float(1.5));
    }

    #[test]
    fn division_by_zero_is_error() {
        let db = Database::new();
        assert!(db.query("SELECT 1 / 0").is_err());
    }

    #[test]
    fn insert_type_mismatch_is_error() {
        let mut db = setup();
        assert!(db
            .execute("INSERT INTO run (id, nope) VALUES (9, 'not a number')")
            .is_err());
    }

    #[test]
    fn duplicate_pk_via_sql_is_error() {
        let mut db = setup();
        let err = db
            .execute("INSERT INTO run (id, nope) VALUES (1, 99)")
            .unwrap_err();
        assert!(matches!(err, DbError::Constraint(_)));
    }

    #[test]
    fn drop_table() {
        let mut db = setup();
        db.execute("DROP TABLE timing").unwrap();
        assert!(db.query("SELECT * FROM timing").is_err());
        assert!(db.execute("DROP TABLE timing").is_err());
    }

    #[test]
    fn order_by_source_expression() {
        let db = setup();
        // ORDER BY an expression that is not in the select list.
        let r = db
            .query("SELECT region FROM timing WHERE run_id = 3 ORDER BY ovhd DESC")
            .unwrap();
        assert_eq!(r.rows[0][0], Value::Text("main".into()));
    }

    #[test]
    fn arithmetic_in_projection() {
        let db = setup();
        let r = db
            .query("SELECT incl - ovhd AS pure FROM timing WHERE id = 1")
            .unwrap();
        assert_eq!(r.rows[0][0], Value::Float(9.5));
    }

    #[test]
    fn table_less_select() {
        let db = Database::new();
        let r = db.query("SELECT 1 + 1, 'x'").unwrap();
        assert_eq!(r.rows[0], vec![Value::Int(2), Value::Text("x".into())]);
    }

    #[test]
    fn in_list_filter() {
        let db = setup();
        let r = db
            .query("SELECT id FROM run WHERE nope IN (2, 32) ORDER BY id")
            .unwrap();
        assert_eq!(r.rows.len(), 2);
    }

    #[test]
    fn aggregate_arithmetic() {
        let db = setup();
        let r = db
            .query("SELECT SUM(incl) - SUM(ovhd) FROM timing WHERE run_id = 1")
            .unwrap();
        assert_eq!(r.rows[0][0], Value::Float(18.0 - 0.75));
    }

    #[test]
    fn group_key_in_select() {
        let db = setup();
        let r = db
            .query("SELECT run_id, AVG(incl) FROM timing GROUP BY run_id ORDER BY run_id")
            .unwrap();
        assert_eq!(r.rows.len(), 3);
        assert_eq!(r.rows[0][0], Value::Int(1));
        assert_eq!(r.rows[0][1], Value::Float(9.0));
    }

    #[test]
    fn unknown_column_is_error() {
        let db = setup();
        assert!(db.query("SELECT zzz FROM run").is_err());
    }

    #[test]
    fn ambiguous_column_is_error() {
        let db = setup();
        assert!(db
            .query("SELECT id FROM run r JOIN timing t ON t.run_id = r.id")
            .is_err());
    }

    #[test]
    fn greatest_and_least() {
        let db = Database::new();
        let r = db
            .query("SELECT GREATEST(1, 5, 3), LEAST(2.5, 2, 9)")
            .unwrap();
        assert_eq!(r.rows[0][0], Value::Int(5));
        assert_eq!(r.rows[0][1], Value::Int(2));
        // NULL poisons the result (SQL GREATEST semantics).
        let r = db.query("SELECT GREATEST(1, NULL)").unwrap();
        assert_eq!(r.rows[0][0], Value::Null);
    }

    #[test]
    fn scalar_functions() {
        let db = Database::new();
        let r = db
            .query("SELECT ABS(-4), COALESCE(NULL, NULL, 7), LENGTH('abc'), UPPER('xy'), ROUND(2.567, 2)")
            .unwrap();
        assert_eq!(
            r.rows[0],
            vec![
                Value::Int(4),
                Value::Int(7),
                Value::Int(3),
                Value::Text("XY".into()),
                Value::Float(2.57),
            ]
        );
    }

    #[test]
    fn is_null_filters() {
        let mut db = Database::new();
        db.execute("CREATE TABLE n (id INTEGER PRIMARY KEY, x INTEGER)")
            .unwrap();
        db.execute("INSERT INTO n (id, x) VALUES (1, 10), (2, NULL), (3, 30)")
            .unwrap();
        let r = db.query("SELECT id FROM n WHERE x IS NULL").unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0][0], Value::Int(2));
        let r = db.query("SELECT COUNT(x) FROM n").unwrap();
        assert_eq!(r.rows[0][0], Value::Int(2)); // COUNT skips NULLs
                                                 // Comparisons with NULL are false in this dialect.
        let r = db
            .query("SELECT id FROM n WHERE x > 0 ORDER BY id")
            .unwrap();
        assert_eq!(r.rows.len(), 2);
    }

    #[test]
    fn count_distinct() {
        let db = setup();
        let r = db
            .query("SELECT COUNT(DISTINCT region) FROM timing")
            .unwrap();
        assert_eq!(r.rows[0][0], Value::Int(2));
    }
}
