//! Rendering of SQL AST nodes back to SQL text.
//!
//! Used by the ASL→SQL compiler (`asl-sql`), which builds [`SelectStmt`]
//! trees programmatically and ships them to a [`crate::remote::Connection`]
//! as statement strings. Rendered output re-parses to an equivalent tree
//! (tested below).

use crate::sql::ast::*;
use crate::value::Value;
use std::fmt::Write;

/// Render an identifier, quoting it when it collides with a keyword.
pub fn quote_ident(name: &str) -> String {
    if crate::sql::lexer::is_keyword(&name.to_ascii_uppercase()) {
        format!("\"{name}\"")
    } else {
        name.to_string()
    }
}

/// Render a value as a SQL literal.
pub fn render_value(v: &Value) -> String {
    match v {
        Value::Null => "NULL".to_string(),
        Value::Int(i) => i.to_string(),
        // `{:e}` keeps the shortest round-trip form and always carries an
        // exponent so the lexer reads it back as a float.
        Value::Float(f) => {
            if f.is_finite() {
                format!("{f:e}")
            } else {
                "NULL".to_string()
            }
        }
        Value::Bool(b) => if *b { "TRUE" } else { "FALSE" }.to_string(),
        Value::Text(s) => format!("'{}'", s.replace('\'', "''")),
    }
}

fn prec(e: &SqlExpr) -> u8 {
    match e {
        SqlExpr::Binary(SqlBinOp::Or, _, _) => 1,
        SqlExpr::Binary(SqlBinOp::And, _, _) => 2,
        SqlExpr::Not(_) => 3,
        SqlExpr::Binary(
            SqlBinOp::Eq
            | SqlBinOp::Neq
            | SqlBinOp::Lt
            | SqlBinOp::Le
            | SqlBinOp::Gt
            | SqlBinOp::Ge,
            _,
            _,
        ) => 4,
        SqlExpr::IsNull(..) | SqlExpr::InList(..) => 4,
        SqlExpr::Binary(SqlBinOp::Add | SqlBinOp::Sub, _, _) => 5,
        SqlExpr::Binary(SqlBinOp::Mul | SqlBinOp::Div | SqlBinOp::Mod, _, _) => 6,
        SqlExpr::Neg(_) => 7,
        _ => 10,
    }
}

fn op_text(op: SqlBinOp) -> &'static str {
    match op {
        SqlBinOp::Add => "+",
        SqlBinOp::Sub => "-",
        SqlBinOp::Mul => "*",
        SqlBinOp::Div => "/",
        SqlBinOp::Mod => "%",
        SqlBinOp::Eq => "=",
        SqlBinOp::Neq => "<>",
        SqlBinOp::Lt => "<",
        SqlBinOp::Le => "<=",
        SqlBinOp::Gt => ">",
        SqlBinOp::Ge => ">=",
        SqlBinOp::And => "AND",
        SqlBinOp::Or => "OR",
    }
}

fn render_child(out: &mut String, child: &SqlExpr, parent: u8, tight: bool) {
    let cp = prec(child);
    let need = if tight { cp <= parent } else { cp < parent };
    if need {
        out.push('(');
        render_expr_into(out, child);
        out.push(')');
    } else {
        render_expr_into(out, child);
    }
}

fn render_expr_into(out: &mut String, e: &SqlExpr) {
    match e {
        SqlExpr::Lit(v) => out.push_str(&render_value(v)),
        SqlExpr::Col { table, column } => {
            if let Some(t) = table {
                let _ = write!(out, "{}.", quote_ident(t));
            }
            out.push_str(&quote_ident(column));
        }
        SqlExpr::Neg(inner) => {
            out.push('-');
            render_child(out, inner, prec(e), true);
        }
        SqlExpr::Not(inner) => {
            out.push_str("NOT ");
            render_child(out, inner, prec(e), true);
        }
        SqlExpr::Binary(op, a, b) => {
            let p = prec(e);
            render_child(out, a, p, false);
            let _ = write!(out, " {} ", op_text(*op));
            render_child(out, b, p, true);
        }
        SqlExpr::IsNull(inner, negated) => {
            render_child(out, inner, prec(e), true);
            out.push_str(if *negated { " IS NOT NULL" } else { " IS NULL" });
        }
        SqlExpr::InList(x, list, negated) => {
            render_child(out, x, prec(e), true);
            out.push_str(if *negated { " NOT IN (" } else { " IN (" });
            for (i, item) in list.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                render_expr_into(out, item);
            }
            out.push(')');
        }
        SqlExpr::Agg {
            func,
            arg,
            distinct,
        } => {
            let _ = write!(out, "{}(", func.name());
            match arg {
                None => out.push('*'),
                Some(a) => {
                    if *distinct {
                        out.push_str("DISTINCT ");
                    }
                    render_expr_into(out, a);
                }
            }
            out.push(')');
        }
        SqlExpr::Func { name, args } => {
            let _ = write!(out, "{name}(");
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                render_expr_into(out, a);
            }
            out.push(')');
        }
        SqlExpr::Subquery(sel) => {
            out.push('(');
            out.push_str(&render_select(sel));
            out.push(')');
        }
        SqlExpr::Exists(sel) => {
            out.push_str("EXISTS (");
            out.push_str(&render_select(sel));
            out.push(')');
        }
    }
}

/// Render an expression to SQL text.
pub fn render_expr(e: &SqlExpr) -> String {
    let mut s = String::new();
    render_expr_into(&mut s, e);
    s
}

fn render_table_ref(t: &TableRef) -> String {
    match &t.alias {
        Some(a) if a != &t.table => {
            format!("{} {}", quote_ident(&t.table), quote_ident(a))
        }
        _ => quote_ident(&t.table),
    }
}

/// Render a SELECT statement to SQL text.
pub fn render_select(sel: &SelectStmt) -> String {
    let mut out = String::from("SELECT ");
    if sel.distinct {
        out.push_str("DISTINCT ");
    }
    for (i, item) in sel.items.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        match item {
            SelectItem::Star => out.push('*'),
            SelectItem::Expr { expr, alias } => {
                render_expr_into(&mut out, expr);
                if let Some(a) = alias {
                    let _ = write!(out, " AS {a}");
                }
            }
        }
    }
    if let Some(from) = &sel.from {
        let _ = write!(out, " FROM {}", render_table_ref(from));
        for j in &sel.joins {
            let _ = write!(
                out,
                " JOIN {} ON {}",
                render_table_ref(&j.table),
                render_expr(&j.on)
            );
        }
    }
    if let Some(w) = &sel.where_ {
        let _ = write!(out, " WHERE {}", render_expr(w));
    }
    if !sel.group_by.is_empty() {
        out.push_str(" GROUP BY ");
        for (i, g) in sel.group_by.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            render_expr_into(&mut out, g);
        }
    }
    if let Some(h) = &sel.having {
        let _ = write!(out, " HAVING {}", render_expr(h));
    }
    if !sel.order_by.is_empty() {
        out.push_str(" ORDER BY ");
        for (i, (e, desc)) in sel.order_by.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            render_expr_into(&mut out, e);
            if *desc {
                out.push_str(" DESC");
            }
        }
    }
    if let Some(l) = sel.limit {
        let _ = write!(out, " LIMIT {l}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sql::parser::parse_statement;

    fn roundtrip(sql: &str) {
        let stmt1 = parse_statement(sql).unwrap();
        let Stmt::Select(sel1) = &stmt1 else {
            panic!("expected SELECT")
        };
        let rendered = render_select(sel1);
        let stmt2 = parse_statement(&rendered)
            .unwrap_or_else(|e| panic!("reparse of `{rendered}` failed: {e}"));
        let Stmt::Select(sel2) = &stmt2 else {
            panic!("expected SELECT")
        };
        assert_eq!(
            render_select(sel2),
            rendered,
            "rendering must be a fixpoint for `{sql}`"
        );
    }

    #[test]
    fn roundtrip_basic_select() {
        roundtrip("SELECT a, b + 1 AS c FROM t WHERE x > 2 AND y = 'z' ORDER BY c DESC LIMIT 5");
    }

    #[test]
    fn roundtrip_join_group() {
        roundtrip(
            "SELECT r.id, SUM(t.x) AS s FROM region r JOIN timing t ON t.rid = r.id \
             GROUP BY r.id HAVING SUM(t.x) > 0",
        );
    }

    #[test]
    fn roundtrip_subqueries() {
        roundtrip("SELECT (SELECT MIN(x) FROM u WHERE u.k = t.k) FROM t");
        roundtrip("SELECT a FROM t WHERE EXISTS (SELECT 1 FROM u WHERE u.a = t.a)");
    }

    #[test]
    fn roundtrip_precedence() {
        roundtrip("SELECT (1 + 2) * 3, 1 + 2 * 3 FROM t");
        roundtrip("SELECT a FROM t WHERE NOT (x = 1 OR y = 2) AND z = 3");
    }

    #[test]
    fn float_literals_roundtrip_exactly() {
        for v in [1.5, 0.1, 1e-9, 123456.789, -2.5e10] {
            let lit = render_value(&Value::Float(v));
            let parsed = parse_statement(&format!("SELECT {lit}"))
                .unwrap_or_else(|e| panic!("`{lit}`: {e}"));
            let Stmt::Select(sel) = parsed else { panic!() };
            let SelectItem::Expr { expr, .. } = &sel.items[0] else {
                panic!()
            };
            let got = match expr {
                SqlExpr::Lit(Value::Float(f)) => *f,
                SqlExpr::Neg(inner) => match &**inner {
                    SqlExpr::Lit(Value::Float(f)) => -*f,
                    other => panic!("{other:?}"),
                },
                other => panic!("{other:?}"),
            };
            assert_eq!(got, v, "float {v} did not roundtrip");
        }
    }

    #[test]
    fn string_escaping_roundtrips() {
        assert_eq!(render_value(&Value::Text("it's".into())), "'it''s'");
        roundtrip("SELECT 'it''s' FROM t");
    }
}
