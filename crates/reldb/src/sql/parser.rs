//! Recursive-descent SQL parser.

use crate::error::{DbError, DbResult};
use crate::sql::ast::*;
use crate::sql::lexer::{lex_sql, SqlToken};
use crate::value::{ColType, Value};

/// Parse a single SQL statement (an optional trailing `;` is allowed).
pub fn parse_statement(sql: &str) -> DbResult<Stmt> {
    let tokens = lex_sql(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.statement()?;
    p.eat(&SqlToken::Semi);
    p.expect(&SqlToken::Eof)?;
    Ok(stmt)
}

struct Parser {
    tokens: Vec<SqlToken>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &SqlToken {
        &self.tokens[self.pos]
    }

    fn peek_at(&self, n: usize) -> &SqlToken {
        let i = (self.pos + n).min(self.tokens.len() - 1);
        &self.tokens[i]
    }

    fn bump(&mut self) -> SqlToken {
        let t = self.tokens[self.pos].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &SqlToken) -> bool {
        if self.peek() == t {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &SqlToken) -> DbResult<()> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(DbError::Parse(format!(
                "expected {t:?}, found {:?}",
                self.peek()
            )))
        }
    }

    fn at_word(&self, w: &str) -> bool {
        matches!(self.peek(), SqlToken::Word(x) if x == w)
    }

    fn eat_word(&mut self, w: &str) -> bool {
        if self.at_word(w) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_word(&mut self, w: &str) -> DbResult<()> {
        if self.eat_word(w) {
            Ok(())
        } else {
            Err(DbError::Parse(format!(
                "expected `{w}`, found {:?}",
                self.peek()
            )))
        }
    }

    /// An identifier: a non-keyword word or a quoted identifier.
    fn ident(&mut self) -> DbResult<String> {
        match self.bump() {
            SqlToken::Word(w) if !crate::sql::lexer::is_keyword(&w) => Ok(w),
            SqlToken::QuotedIdent(w) => Ok(w),
            other => Err(DbError::Parse(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    fn statement(&mut self) -> DbResult<Stmt> {
        if self.at_word("CREATE") {
            self.bump();
            if self.eat_word("TABLE") {
                self.create_table()
            } else if self.eat_word("INDEX") {
                self.create_index()
            } else {
                Err(DbError::Parse(
                    "expected TABLE or INDEX after CREATE".into(),
                ))
            }
        } else if self.eat_word("INSERT") {
            self.insert()
        } else if self.at_word("SELECT") {
            Ok(Stmt::Select(Box::new(self.select()?)))
        } else if self.eat_word("UPDATE") {
            self.update()
        } else if self.eat_word("DELETE") {
            self.delete()
        } else if self.eat_word("DROP") {
            self.expect_word("TABLE")?;
            Ok(Stmt::DropTable {
                name: self.ident()?,
            })
        } else {
            Err(DbError::Parse(format!(
                "expected a statement, found {:?}",
                self.peek()
            )))
        }
    }

    fn col_type(&mut self) -> DbResult<ColType> {
        match self.bump() {
            SqlToken::Word(w) => match w.as_str() {
                "INTEGER" | "INT" => Ok(ColType::Integer),
                "REAL" | "FLOAT" | "DOUBLE" => Ok(ColType::Real),
                "TEXT" => Ok(ColType::Text),
                "VARCHAR" => {
                    // Optional length: VARCHAR(80).
                    if self.eat(&SqlToken::LParen) {
                        self.bump(); // length literal
                        self.expect(&SqlToken::RParen)?;
                    }
                    Ok(ColType::Text)
                }
                "BOOLEAN" => Ok(ColType::Boolean),
                other => Err(DbError::Parse(format!("unknown column type `{other}`"))),
            },
            other => Err(DbError::Parse(format!(
                "expected column type, found {other:?}"
            ))),
        }
    }

    fn create_table(&mut self) -> DbResult<Stmt> {
        let name = self.ident()?;
        self.expect(&SqlToken::LParen)?;
        let mut columns = Vec::new();
        loop {
            let cname = self.ident()?;
            let ty = self.col_type()?;
            let mut not_null = false;
            let mut pk = false;
            loop {
                if self.eat_word("PRIMARY") {
                    self.expect_word("KEY")?;
                    pk = true;
                    not_null = true;
                } else if self.eat_word("NOT") {
                    self.expect_word("NULL")?;
                    not_null = true;
                } else {
                    break;
                }
            }
            columns.push((cname, ty, not_null, pk));
            if !self.eat(&SqlToken::Comma) {
                break;
            }
        }
        self.expect(&SqlToken::RParen)?;
        Ok(Stmt::CreateTable { name, columns })
    }

    fn create_index(&mut self) -> DbResult<Stmt> {
        let name = self.ident()?;
        self.expect_word("ON")?;
        let table = self.ident()?;
        self.expect(&SqlToken::LParen)?;
        let column = self.ident()?;
        self.expect(&SqlToken::RParen)?;
        Ok(Stmt::CreateIndex {
            name,
            table,
            column,
        })
    }

    fn insert(&mut self) -> DbResult<Stmt> {
        self.expect_word("INTO")?;
        let table = self.ident()?;
        let columns = if self.eat(&SqlToken::LParen) {
            let mut cols = Vec::new();
            loop {
                cols.push(self.ident()?);
                if !self.eat(&SqlToken::Comma) {
                    break;
                }
            }
            self.expect(&SqlToken::RParen)?;
            Some(cols)
        } else {
            None
        };
        self.expect_word("VALUES")?;
        let mut values = Vec::new();
        loop {
            self.expect(&SqlToken::LParen)?;
            let mut row = Vec::new();
            if !self.eat(&SqlToken::RParen) {
                loop {
                    row.push(self.expr()?);
                    if !self.eat(&SqlToken::Comma) {
                        break;
                    }
                }
                self.expect(&SqlToken::RParen)?;
            }
            values.push(row);
            if !self.eat(&SqlToken::Comma) {
                break;
            }
        }
        Ok(Stmt::Insert {
            table,
            columns,
            values,
        })
    }

    fn update(&mut self) -> DbResult<Stmt> {
        let table = self.ident()?;
        self.expect_word("SET")?;
        let mut sets = Vec::new();
        loop {
            let col = self.ident()?;
            self.expect(&SqlToken::Eq)?;
            sets.push((col, self.expr()?));
            if !self.eat(&SqlToken::Comma) {
                break;
            }
        }
        let where_ = if self.eat_word("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Stmt::Update {
            table,
            sets,
            where_,
        })
    }

    fn delete(&mut self) -> DbResult<Stmt> {
        self.expect_word("FROM")?;
        let table = self.ident()?;
        let where_ = if self.eat_word("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Stmt::Delete { table, where_ })
    }

    fn table_ref(&mut self) -> DbResult<TableRef> {
        let table = self.ident()?;
        // Optional alias: `Region r` or `Region AS r`. `eat_word` consumes
        // the AS; either way the alias identifier is next.
        let has_alias = self.eat_word("AS")
            || matches!(self.peek(), SqlToken::Word(w) if !crate::sql::lexer::is_keyword(w));
        let alias = if has_alias { Some(self.ident()?) } else { None };
        Ok(TableRef { table, alias })
    }

    /// Parse a SELECT statement body (assumes the SELECT keyword is next).
    pub(crate) fn select(&mut self) -> DbResult<SelectStmt> {
        self.expect_word("SELECT")?;
        let distinct = self.eat_word("DISTINCT");
        let mut items = Vec::new();
        loop {
            if self.eat(&SqlToken::Star) {
                items.push(SelectItem::Star);
            } else {
                let expr = self.expr()?;
                let has_alias = self.eat_word("AS")
                    || matches!(self.peek(), SqlToken::Word(w) if !crate::sql::lexer::is_keyword(w));
                let alias = if has_alias { Some(self.ident()?) } else { None };
                items.push(SelectItem::Expr { expr, alias });
            }
            if !self.eat(&SqlToken::Comma) {
                break;
            }
        }

        let mut from = None;
        let mut joins = Vec::new();
        if self.eat_word("FROM") {
            from = Some(self.table_ref()?);
            loop {
                let inner = self.eat_word("INNER");
                if self.eat_word("JOIN") {
                    let table = self.table_ref()?;
                    self.expect_word("ON")?;
                    let on = self.expr()?;
                    joins.push(Join { table, on });
                } else if inner {
                    return Err(DbError::Parse("expected JOIN after INNER".into()));
                } else if self.eat(&SqlToken::Comma) {
                    // Comma join: cross product with TRUE condition; any
                    // real predicate lives in WHERE and is pushed by the
                    // planner.
                    let table = self.table_ref()?;
                    joins.push(Join {
                        table,
                        on: SqlExpr::Lit(Value::Bool(true)),
                    });
                } else {
                    break;
                }
            }
        }

        let where_ = if self.eat_word("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_word("GROUP") {
            self.expect_word("BY")?;
            loop {
                group_by.push(self.expr()?);
                if !self.eat(&SqlToken::Comma) {
                    break;
                }
            }
        }
        let having = if self.eat_word("HAVING") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut order_by = Vec::new();
        if self.eat_word("ORDER") {
            self.expect_word("BY")?;
            loop {
                let e = self.expr()?;
                let desc = if self.eat_word("DESC") {
                    true
                } else {
                    self.eat_word("ASC");
                    false
                };
                order_by.push((e, desc));
                if !self.eat(&SqlToken::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_word("LIMIT") {
            match self.bump() {
                SqlToken::Int(n) if n >= 0 => Some(n as u64),
                other => {
                    return Err(DbError::Parse(format!(
                        "expected LIMIT count, found {other:?}"
                    )))
                }
            }
        } else {
            None
        };

        Ok(SelectStmt {
            distinct,
            items,
            from,
            joins,
            where_,
            group_by,
            having,
            order_by,
            limit,
        })
    }

    // ---- expressions, precedence climbing --------------------------------

    fn expr(&mut self) -> DbResult<SqlExpr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> DbResult<SqlExpr> {
        let mut lhs = self.and_expr()?;
        while self.eat_word("OR") {
            let rhs = self.and_expr()?;
            lhs = SqlExpr::Binary(SqlBinOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> DbResult<SqlExpr> {
        let mut lhs = self.not_expr()?;
        while self.eat_word("AND") {
            let rhs = self.not_expr()?;
            lhs = SqlExpr::Binary(SqlBinOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> DbResult<SqlExpr> {
        if self.eat_word("NOT") {
            Ok(SqlExpr::Not(Box::new(self.not_expr()?)))
        } else {
            self.comparison()
        }
    }

    fn comparison(&mut self) -> DbResult<SqlExpr> {
        let lhs = self.additive()?;
        // IS [NOT] NULL
        if self.eat_word("IS") {
            let negated = self.eat_word("NOT");
            self.expect_word("NULL")?;
            return Ok(SqlExpr::IsNull(Box::new(lhs), negated));
        }
        // [NOT] IN (list)
        if self.at_word("IN")
            || (self.at_word("NOT") && matches!(self.peek_at(1), SqlToken::Word(w) if w == "IN"))
        {
            let negated = self.eat_word("NOT");
            self.expect_word("IN")?;
            self.expect(&SqlToken::LParen)?;
            let mut list = Vec::new();
            loop {
                list.push(self.expr()?);
                if !self.eat(&SqlToken::Comma) {
                    break;
                }
            }
            self.expect(&SqlToken::RParen)?;
            return Ok(SqlExpr::InList(Box::new(lhs), list, negated));
        }
        let op = match self.peek() {
            SqlToken::Eq => Some(SqlBinOp::Eq),
            SqlToken::Neq => Some(SqlBinOp::Neq),
            SqlToken::Lt => Some(SqlBinOp::Lt),
            SqlToken::Le => Some(SqlBinOp::Le),
            SqlToken::Gt => Some(SqlBinOp::Gt),
            SqlToken::Ge => Some(SqlBinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let rhs = self.additive()?;
            Ok(SqlExpr::Binary(op, Box::new(lhs), Box::new(rhs)))
        } else {
            Ok(lhs)
        }
    }

    fn additive(&mut self) -> DbResult<SqlExpr> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                SqlToken::Plus => SqlBinOp::Add,
                SqlToken::Minus => SqlBinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.multiplicative()?;
            lhs = SqlExpr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn multiplicative(&mut self) -> DbResult<SqlExpr> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                SqlToken::Star => SqlBinOp::Mul,
                SqlToken::Slash => SqlBinOp::Div,
                SqlToken::Percent => SqlBinOp::Mod,
                _ => break,
            };
            self.bump();
            let rhs = self.unary()?;
            lhs = SqlExpr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> DbResult<SqlExpr> {
        if self.eat(&SqlToken::Minus) {
            Ok(SqlExpr::Neg(Box::new(self.unary()?)))
        } else {
            self.primary()
        }
    }

    fn agg_func(word: &str) -> Option<AggFunc> {
        Some(match word {
            "COUNT" => AggFunc::Count,
            "SUM" => AggFunc::Sum,
            "MIN" => AggFunc::Min,
            "MAX" => AggFunc::Max,
            "AVG" => AggFunc::Avg,
            _ => None?,
        })
    }

    fn primary(&mut self) -> DbResult<SqlExpr> {
        match self.peek().clone() {
            SqlToken::Int(v) => {
                self.bump();
                Ok(SqlExpr::Lit(Value::Int(v)))
            }
            SqlToken::Float(v) => {
                self.bump();
                Ok(SqlExpr::Lit(Value::Float(v)))
            }
            SqlToken::Str(s) => {
                self.bump();
                Ok(SqlExpr::Lit(Value::Text(s)))
            }
            SqlToken::LParen => {
                self.bump();
                // Subquery or parenthesized expression.
                if self.at_word("SELECT") {
                    let sub = self.select()?;
                    self.expect(&SqlToken::RParen)?;
                    Ok(SqlExpr::Subquery(Box::new(sub)))
                } else {
                    let e = self.expr()?;
                    self.expect(&SqlToken::RParen)?;
                    Ok(e)
                }
            }
            SqlToken::Word(w) => {
                match w.as_str() {
                    "NULL" => {
                        self.bump();
                        return Ok(SqlExpr::Lit(Value::Null));
                    }
                    "TRUE" => {
                        self.bump();
                        return Ok(SqlExpr::Lit(Value::Bool(true)));
                    }
                    "FALSE" => {
                        self.bump();
                        return Ok(SqlExpr::Lit(Value::Bool(false)));
                    }
                    "EXISTS" => {
                        self.bump();
                        self.expect(&SqlToken::LParen)?;
                        let sub = self.select()?;
                        self.expect(&SqlToken::RParen)?;
                        return Ok(SqlExpr::Exists(Box::new(sub)));
                    }
                    _ => {}
                }
                if let Some(func) = Self::agg_func(&w) {
                    self.bump();
                    self.expect(&SqlToken::LParen)?;
                    if func == AggFunc::Count && self.eat(&SqlToken::Star) {
                        self.expect(&SqlToken::RParen)?;
                        return Ok(SqlExpr::Agg {
                            func,
                            arg: None,
                            distinct: false,
                        });
                    }
                    let distinct = self.eat_word("DISTINCT");
                    let arg = self.expr()?;
                    self.expect(&SqlToken::RParen)?;
                    return Ok(SqlExpr::Agg {
                        func,
                        arg: Some(Box::new(arg)),
                        distinct,
                    });
                }
                // Scalar function call?
                let known_scalar = [
                    "ABS", "COALESCE", "LENGTH", "UPPER", "LOWER", "ROUND", "GREATEST", "LEAST",
                ];
                let upper = w.to_ascii_uppercase();
                if known_scalar.contains(&upper.as_str())
                    && matches!(self.peek_at(1), SqlToken::LParen)
                {
                    self.bump();
                    self.bump(); // (
                    let mut args = Vec::new();
                    if !self.eat(&SqlToken::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&SqlToken::Comma) {
                                break;
                            }
                        }
                        self.expect(&SqlToken::RParen)?;
                    }
                    return Ok(SqlExpr::Func { name: upper, args });
                }
                // Column reference (possibly qualified).
                if crate::sql::lexer::is_keyword(&w) {
                    return Err(DbError::Parse(format!(
                        "unexpected keyword `{w}` in expression"
                    )));
                }
                self.bump();
                if self.eat(&SqlToken::Dot) {
                    let column = self.ident()?;
                    Ok(SqlExpr::Col {
                        table: Some(w),
                        column,
                    })
                } else {
                    Ok(SqlExpr::Col {
                        table: None,
                        column: w,
                    })
                }
            }
            SqlToken::QuotedIdent(w) => {
                self.bump();
                if self.eat(&SqlToken::Dot) {
                    let column = self.ident()?;
                    Ok(SqlExpr::Col {
                        table: Some(w),
                        column,
                    })
                } else {
                    Ok(SqlExpr::Col {
                        table: None,
                        column: w,
                    })
                }
            }
            other => Err(DbError::Parse(format!(
                "expected expression, found {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(sql: &str) -> Stmt {
        parse_statement(sql).unwrap_or_else(|e| panic!("parse of `{sql}` failed: {e}"))
    }

    #[test]
    fn parse_create_table() {
        let s =
            parse_ok("CREATE TABLE Region (id INTEGER PRIMARY KEY, name TEXT NOT NULL, x REAL)");
        match s {
            Stmt::CreateTable { name, columns } => {
                assert_eq!(name, "Region");
                assert_eq!(columns.len(), 3);
                assert!(columns[0].3); // pk
                assert!(columns[1].2); // not null
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_insert_multi_row() {
        let s = parse_ok("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')");
        match s {
            Stmt::Insert {
                table,
                columns,
                values,
            } => {
                assert_eq!(table, "t");
                assert_eq!(columns.unwrap(), vec!["a", "b"]);
                assert_eq!(values.len(), 2);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_select_with_everything() {
        let s = parse_ok(
            "SELECT r.id, SUM(t.Time) AS total FROM Region r \
             JOIN TypedTiming t ON t.region_id = r.id \
             WHERE t.run_id = 3 AND t.ty = 'Barrier' \
             GROUP BY r.id HAVING SUM(t.Time) > 0 \
             ORDER BY total DESC LIMIT 10",
        );
        match s {
            Stmt::Select(sel) => {
                assert!(sel.from.is_some());
                assert_eq!(sel.joins.len(), 1);
                assert!(sel.where_.is_some());
                assert_eq!(sel.group_by.len(), 1);
                assert!(sel.having.is_some());
                assert_eq!(sel.order_by.len(), 1);
                assert!(sel.order_by[0].1); // desc
                assert_eq!(sel.limit, Some(10));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_count_star_and_distinct() {
        let s = parse_ok("SELECT COUNT(*), COUNT(DISTINCT a) FROM t");
        match s {
            Stmt::Select(sel) => {
                assert_eq!(sel.items.len(), 2);
                match &sel.items[0] {
                    SelectItem::Expr {
                        expr: SqlExpr::Agg { arg: None, .. },
                        ..
                    } => {}
                    other => panic!("{other:?}"),
                }
                match &sel.items[1] {
                    SelectItem::Expr {
                        expr: SqlExpr::Agg { distinct: true, .. },
                        ..
                    } => {}
                    other => panic!("{other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_scalar_subquery() {
        let s = parse_ok("SELECT (SELECT MIN(NoPe) FROM TestRun) AS m FROM t");
        match s {
            Stmt::Select(sel) => match &sel.items[0] {
                SelectItem::Expr {
                    expr: SqlExpr::Subquery(_),
                    ..
                } => {}
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_exists_and_in() {
        parse_ok("SELECT a FROM t WHERE EXISTS (SELECT b FROM u WHERE u.x = t.a)");
        let s = parse_ok("SELECT a FROM t WHERE a IN (1, 2, 3) AND b NOT IN (4)");
        match s {
            Stmt::Select(sel) => {
                let w = sel.where_.unwrap();
                let parts = w.conjuncts();
                assert!(matches!(parts[0], SqlExpr::InList(_, _, false)));
                assert!(matches!(parts[1], SqlExpr::InList(_, _, true)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_is_null() {
        let s = parse_ok("SELECT a FROM t WHERE a IS NOT NULL AND b IS NULL");
        match s {
            Stmt::Select(sel) => {
                let parts = sel.where_.unwrap().conjuncts();
                assert!(matches!(parts[0], SqlExpr::IsNull(_, true)));
                assert!(matches!(parts[1], SqlExpr::IsNull(_, false)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_update_delete_drop() {
        parse_ok("UPDATE t SET a = a + 1, b = 'x' WHERE id = 3");
        parse_ok("DELETE FROM t WHERE a < 0");
        parse_ok("DROP TABLE t");
    }

    #[test]
    fn parse_comma_join() {
        let s = parse_ok("SELECT a FROM t, u WHERE t.id = u.id");
        match s {
            Stmt::Select(sel) => {
                assert_eq!(sel.joins.len(), 1);
                assert_eq!(sel.joins[0].on, SqlExpr::Lit(Value::Bool(true)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_precedence() {
        let s = parse_ok("SELECT 1 + 2 * 3 FROM t");
        match s {
            Stmt::Select(sel) => match &sel.items[0] {
                SelectItem::Expr {
                    expr: SqlExpr::Binary(SqlBinOp::Add, _, rhs),
                    ..
                } => {
                    assert!(matches!(**rhs, SqlExpr::Binary(SqlBinOp::Mul, _, _)));
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn reserved_word_as_identifier_fails() {
        assert!(parse_statement("SELECT SELECT FROM t").is_err());
        assert!(parse_statement("CREATE TABLE table (a INTEGER)").is_err());
    }

    #[test]
    fn quoted_identifier_allows_keywords() {
        parse_ok("SELECT \"Group\" FROM t");
    }

    #[test]
    fn table_less_select() {
        let s = parse_ok("SELECT 1 + 1");
        match s {
            Stmt::Select(sel) => assert!(sel.from.is_none()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn trailing_semicolon_ok() {
        parse_ok("SELECT 1;");
    }

    #[test]
    fn garbage_after_statement_fails() {
        assert!(parse_statement("SELECT 1 extra garbage +").is_err());
    }
}
