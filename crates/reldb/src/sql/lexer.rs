//! SQL tokenizer.

use crate::error::{DbError, DbResult};

/// SQL token. Keywords are recognized case-insensitively and normalized to
/// uppercase in [`SqlToken::Word`].
#[derive(Debug, Clone, PartialEq)]
pub enum SqlToken {
    /// Keyword or identifier (keywords uppercased; identifiers preserved).
    Word(String),
    /// Quoted identifier: `"Region"` (case preserved, never a keyword).
    QuotedIdent(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal `'…'` with `''` escaping.
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `;`
    Semi,
    /// End of input.
    Eof,
}

/// The reserved words that are never treated as identifiers.
pub const KEYWORDS: &[&str] = &[
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER", "LIMIT", "ASC", "DESC", "AS",
    "JOIN", "INNER", "LEFT", "ON", "AND", "OR", "NOT", "NULL", "IS", "IN", "EXISTS", "DISTINCT",
    "CREATE", "TABLE", "INDEX", "PRIMARY", "KEY", "INSERT", "INTO", "VALUES", "UPDATE", "SET",
    "DELETE", "DROP", "TRUE", "FALSE", "INTEGER", "INT", "REAL", "FLOAT", "DOUBLE", "TEXT",
    "VARCHAR", "BOOLEAN", "COUNT", "SUM", "MIN", "MAX", "AVG", "CASE", "WHEN", "THEN", "ELSE",
    "END", "BETWEEN", "LIKE", "UNION", "ALL",
];

/// Is this (uppercased) word a reserved keyword?
pub fn is_keyword(w: &str) -> bool {
    KEYWORDS.contains(&w)
}

/// Tokenize a SQL string.
pub fn lex_sql(src: &str) -> DbResult<Vec<SqlToken>> {
    let b = src.as_bytes();
    let mut i = 0usize;
    let mut out = Vec::new();
    while i < b.len() {
        let c = b[i];
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'-' if b.get(i + 1) == Some(&b'-') => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'(' => {
                out.push(SqlToken::LParen);
                i += 1;
            }
            b')' => {
                out.push(SqlToken::RParen);
                i += 1;
            }
            b',' => {
                out.push(SqlToken::Comma);
                i += 1;
            }
            b'.' => {
                out.push(SqlToken::Dot);
                i += 1;
            }
            b'*' => {
                out.push(SqlToken::Star);
                i += 1;
            }
            b'+' => {
                out.push(SqlToken::Plus);
                i += 1;
            }
            b'-' => {
                out.push(SqlToken::Minus);
                i += 1;
            }
            b'/' => {
                out.push(SqlToken::Slash);
                i += 1;
            }
            b'%' => {
                out.push(SqlToken::Percent);
                i += 1;
            }
            b';' => {
                out.push(SqlToken::Semi);
                i += 1;
            }
            b'=' => {
                out.push(SqlToken::Eq);
                i += 1;
            }
            b'!' if b.get(i + 1) == Some(&b'=') => {
                out.push(SqlToken::Neq);
                i += 2;
            }
            b'<' => {
                if b.get(i + 1) == Some(&b'=') {
                    out.push(SqlToken::Le);
                    i += 2;
                } else if b.get(i + 1) == Some(&b'>') {
                    out.push(SqlToken::Neq);
                    i += 2;
                } else {
                    out.push(SqlToken::Lt);
                    i += 1;
                }
            }
            b'>' => {
                if b.get(i + 1) == Some(&b'=') {
                    out.push(SqlToken::Ge);
                    i += 2;
                } else {
                    out.push(SqlToken::Gt);
                    i += 1;
                }
            }
            b'\'' => {
                i += 1;
                let mut s = String::new();
                loop {
                    match b.get(i) {
                        Some(b'\'') if b.get(i + 1) == Some(&b'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some(b'\'') => {
                            i += 1;
                            break;
                        }
                        Some(&ch) => {
                            s.push(ch as char);
                            i += 1;
                        }
                        None => return Err(DbError::Parse("unterminated string literal".into())),
                    }
                }
                out.push(SqlToken::Str(s));
            }
            b'"' => {
                i += 1;
                let start = i;
                while i < b.len() && b[i] != b'"' {
                    i += 1;
                }
                if i >= b.len() {
                    return Err(DbError::Parse("unterminated quoted identifier".into()));
                }
                out.push(SqlToken::QuotedIdent(src[start..i].to_string()));
                i += 1;
            }
            b'0'..=b'9' => {
                let start = i;
                while i < b.len() && b[i].is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i < b.len() && b[i] == b'.' && b.get(i + 1).is_some_and(u8::is_ascii_digit) {
                    is_float = true;
                    i += 1;
                    while i < b.len() && b[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                if i < b.len() && (b[i] == b'e' || b[i] == b'E') {
                    let save = i;
                    i += 1;
                    if i < b.len() && (b[i] == b'+' || b[i] == b'-') {
                        i += 1;
                    }
                    if i < b.len() && b[i].is_ascii_digit() {
                        is_float = true;
                        while i < b.len() && b[i].is_ascii_digit() {
                            i += 1;
                        }
                    } else {
                        i = save;
                    }
                }
                let text = &src[start..i];
                if is_float {
                    out.push(SqlToken::Float(text.parse().map_err(|_| {
                        DbError::Parse(format!("bad float literal `{text}`"))
                    })?));
                } else {
                    out.push(SqlToken::Int(text.parse().map_err(|_| {
                        DbError::Parse(format!("bad integer literal `{text}`"))
                    })?));
                }
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                let word = &src[start..i];
                let upper = word.to_ascii_uppercase();
                if is_keyword(&upper) {
                    out.push(SqlToken::Word(upper));
                } else {
                    out.push(SqlToken::Word(word.to_string()));
                }
            }
            other => {
                return Err(DbError::Parse(format!(
                    "unexpected character `{}` in SQL",
                    other as char
                )))
            }
        }
    }
    out.push(SqlToken::Eof);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_select() {
        let t = lex_sql("SELECT a, b FROM t WHERE x >= 1.5").unwrap();
        assert_eq!(t[0], SqlToken::Word("SELECT".into()));
        assert!(t.contains(&SqlToken::Ge));
        assert!(t.contains(&SqlToken::Float(1.5)));
    }

    #[test]
    fn keywords_case_insensitive_identifiers_preserved() {
        let t = lex_sql("select TotTimes from Region").unwrap();
        assert_eq!(t[0], SqlToken::Word("SELECT".into()));
        assert_eq!(t[1], SqlToken::Word("TotTimes".into()));
        assert_eq!(t[3], SqlToken::Word("Region".into()));
    }

    #[test]
    fn string_escaping() {
        let t = lex_sql("'it''s'").unwrap();
        assert_eq!(t[0], SqlToken::Str("it's".into()));
    }

    #[test]
    fn quoted_identifiers() {
        let t = lex_sql("\"Group\"").unwrap();
        assert_eq!(t[0], SqlToken::QuotedIdent("Group".into()));
    }

    #[test]
    fn comments_skipped() {
        let t = lex_sql("SELECT 1 -- trailing\n, 2").unwrap();
        assert!(t.contains(&SqlToken::Int(2)));
    }

    #[test]
    fn neq_aliases() {
        assert!(lex_sql("a <> b").unwrap().contains(&SqlToken::Neq));
        assert!(lex_sql("a != b").unwrap().contains(&SqlToken::Neq));
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(lex_sql("'oops").is_err());
    }

    #[test]
    fn number_then_dot_word() {
        // `1.x` is int, dot, word — not a float.
        let t = lex_sql("1.x").unwrap();
        assert_eq!(t[0], SqlToken::Int(1));
        assert_eq!(t[1], SqlToken::Dot);
    }
}
