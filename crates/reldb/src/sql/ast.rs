//! SQL abstract syntax tree.

use crate::value::{ColType, Value};

/// A full SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `CREATE TABLE`.
    CreateTable {
        /// Table name.
        name: String,
        /// Column definitions: (name, type, not_null, primary_key).
        columns: Vec<(String, ColType, bool, bool)>,
    },
    /// `CREATE INDEX name ON table (column)`.
    CreateIndex {
        /// Index name (informational).
        name: String,
        /// Table to index.
        table: String,
        /// Column to index.
        column: String,
    },
    /// `INSERT INTO`.
    Insert {
        /// Target table.
        table: String,
        /// Optional explicit column list.
        columns: Option<Vec<String>>,
        /// One expression row per VALUES tuple.
        values: Vec<Vec<SqlExpr>>,
    },
    /// `SELECT`.
    Select(Box<SelectStmt>),
    /// `UPDATE`.
    Update {
        /// Target table.
        table: String,
        /// `SET col = expr` assignments.
        sets: Vec<(String, SqlExpr)>,
        /// Optional filter.
        where_: Option<SqlExpr>,
    },
    /// `DELETE FROM`.
    Delete {
        /// Target table.
        table: String,
        /// Optional filter.
        where_: Option<SqlExpr>,
    },
    /// `DROP TABLE`.
    DropTable {
        /// Table to drop.
        name: String,
    },
}

/// A table reference with an optional alias.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    /// Table name.
    pub table: String,
    /// Alias (defaults to the table name).
    pub alias: Option<String>,
}

impl TableRef {
    /// The name this table is visible as.
    pub fn visible_name(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.table)
    }
}

/// One `JOIN … ON …` clause (inner joins only).
#[derive(Debug, Clone, PartialEq)]
pub struct Join {
    /// The joined table.
    pub table: TableRef,
    /// The join predicate.
    pub on: SqlExpr,
}

/// One item of the SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Star,
    /// `expr [AS alias]`
    Expr {
        /// The expression.
        expr: SqlExpr,
        /// Output column name.
        alias: Option<String>,
    },
}

/// A SELECT statement.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SelectStmt {
    /// `DISTINCT` flag.
    pub distinct: bool,
    /// Output items.
    pub items: Vec<SelectItem>,
    /// The first FROM table (`None` for table-less `SELECT 1`).
    pub from: Option<TableRef>,
    /// INNER JOIN clauses, in order.
    pub joins: Vec<Join>,
    /// WHERE predicate.
    pub where_: Option<SqlExpr>,
    /// GROUP BY expressions.
    pub group_by: Vec<SqlExpr>,
    /// HAVING predicate.
    pub having: Option<SqlExpr>,
    /// ORDER BY expressions with a descending flag.
    pub order_by: Vec<(SqlExpr, bool)>,
    /// LIMIT row count.
    pub limit: Option<u64>,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SqlBinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `=`
    Eq,
    /// `<>`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `AND`
    And,
    /// `OR`
    Or,
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `COUNT`
    Count,
    /// `SUM`
    Sum,
    /// `MIN`
    Min,
    /// `MAX`
    Max,
    /// `AVG`
    Avg,
}

impl AggFunc {
    /// SQL name.
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
            AggFunc::Avg => "AVG",
        }
    }
}

/// A SQL expression.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlExpr {
    /// Literal value.
    Lit(Value),
    /// Column reference, optionally qualified.
    Col {
        /// Table qualifier (alias).
        table: Option<String>,
        /// Column name.
        column: String,
    },
    /// Unary minus.
    Neg(Box<SqlExpr>),
    /// `NOT`.
    Not(Box<SqlExpr>),
    /// Binary operation.
    Binary(SqlBinOp, Box<SqlExpr>, Box<SqlExpr>),
    /// `expr IS NULL` / `expr IS NOT NULL` (bool = negated).
    IsNull(Box<SqlExpr>, bool),
    /// `expr [NOT] IN (e1, e2, …)` (bool = negated).
    InList(Box<SqlExpr>, Vec<SqlExpr>, bool),
    /// Aggregate call. `arg == None` means `COUNT(*)`.
    Agg {
        /// Which aggregate.
        func: AggFunc,
        /// The aggregated expression.
        arg: Option<Box<SqlExpr>>,
        /// `DISTINCT` inside the call.
        distinct: bool,
    },
    /// Scalar function call (ABS, COALESCE, LENGTH, UPPER, LOWER, ROUND).
    Func {
        /// Uppercased function name.
        name: String,
        /// Arguments.
        args: Vec<SqlExpr>,
    },
    /// Scalar subquery `(SELECT …)`; must return at most one row/column.
    Subquery(Box<SelectStmt>),
    /// `EXISTS (SELECT …)`.
    Exists(Box<SelectStmt>),
}

impl SqlExpr {
    /// Column reference helper.
    pub fn col(table: Option<&str>, column: &str) -> SqlExpr {
        SqlExpr::Col {
            table: table.map(str::to_string),
            column: column.to_string(),
        }
    }

    /// Does this expression contain an aggregate call (outside subqueries)?
    pub fn contains_aggregate(&self) -> bool {
        match self {
            SqlExpr::Agg { .. } => true,
            SqlExpr::Lit(_) | SqlExpr::Col { .. } | SqlExpr::Subquery(_) | SqlExpr::Exists(_) => {
                false
            }
            SqlExpr::Neg(e) | SqlExpr::Not(e) | SqlExpr::IsNull(e, _) => e.contains_aggregate(),
            SqlExpr::Binary(_, a, b) => a.contains_aggregate() || b.contains_aggregate(),
            SqlExpr::InList(e, list, _) => {
                e.contains_aggregate() || list.iter().any(SqlExpr::contains_aggregate)
            }
            SqlExpr::Func { args, .. } => args.iter().any(SqlExpr::contains_aggregate),
        }
    }

    /// Split a conjunction into its conjuncts.
    pub fn conjuncts(self) -> Vec<SqlExpr> {
        match self {
            SqlExpr::Binary(SqlBinOp::And, a, b) => {
                let mut out = a.conjuncts();
                out.extend(b.conjuncts());
                out
            }
            other => vec![other],
        }
    }

    /// The set of table qualifiers that appear unmistakably in this
    /// expression (used for pushdown decisions). Unqualified columns yield
    /// `None` entries.
    pub fn referenced_tables<'a>(&'a self, out: &mut Vec<Option<&'a str>>) {
        match self {
            SqlExpr::Col { table, .. } => out.push(table.as_deref()),
            SqlExpr::Lit(_) => {}
            SqlExpr::Neg(e) | SqlExpr::Not(e) | SqlExpr::IsNull(e, _) => e.referenced_tables(out),
            SqlExpr::Binary(_, a, b) => {
                a.referenced_tables(out);
                b.referenced_tables(out);
            }
            SqlExpr::InList(e, list, _) => {
                e.referenced_tables(out);
                for l in list {
                    l.referenced_tables(out);
                }
            }
            SqlExpr::Agg { arg, .. } => {
                if let Some(a) = arg {
                    a.referenced_tables(out);
                }
            }
            SqlExpr::Func { args, .. } => {
                for a in args {
                    a.referenced_tables(out);
                }
            }
            // Subqueries reference their own scopes; correlated references
            // are resolved at evaluation time, so treat them as opaque and
            // *not* pushable.
            SqlExpr::Subquery(_) | SqlExpr::Exists(_) => out.push(Some("\u{0}subquery")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conjuncts_flatten() {
        let e = SqlExpr::Binary(
            SqlBinOp::And,
            Box::new(SqlExpr::Binary(
                SqlBinOp::And,
                Box::new(SqlExpr::Lit(Value::Bool(true))),
                Box::new(SqlExpr::Lit(Value::Bool(false))),
            )),
            Box::new(SqlExpr::Lit(Value::Int(1))),
        );
        assert_eq!(e.conjuncts().len(), 3);
    }

    #[test]
    fn contains_aggregate_stops_at_subquery() {
        let sub = SelectStmt {
            items: vec![SelectItem::Expr {
                expr: SqlExpr::Agg {
                    func: AggFunc::Count,
                    arg: None,
                    distinct: false,
                },
                alias: None,
            }],
            ..Default::default()
        };
        let e = SqlExpr::Subquery(Box::new(sub));
        assert!(!e.contains_aggregate());
        let direct = SqlExpr::Agg {
            func: AggFunc::Sum,
            arg: Some(Box::new(SqlExpr::col(None, "x"))),
            distinct: false,
        };
        assert!(direct.contains_aggregate());
    }

    #[test]
    fn visible_name_prefers_alias() {
        let t = TableRef {
            table: "Region".into(),
            alias: Some("r".into()),
        };
        assert_eq!(t.visible_name(), "r");
        let t2 = TableRef {
            table: "Region".into(),
            alias: None,
        };
        assert_eq!(t2.visible_name(), "Region");
    }
}
