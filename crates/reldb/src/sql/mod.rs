//! SQL front-end: lexer, AST and recursive-descent parser.
//!
//! The supported subset covers everything COSY's generated queries need
//! (§5 of the paper: property conditions and severities translated into
//! SQL):
//!
//! * `CREATE TABLE name (col TYPE [PRIMARY KEY|NOT NULL], …)`
//! * `CREATE INDEX name ON table (column)`
//! * `INSERT INTO t [(cols)] VALUES (…), (…)`
//! * `SELECT [DISTINCT] items FROM t [alias] [JOIN u [alias] ON e]*
//!    [WHERE e] [GROUP BY e, …] [HAVING e] [ORDER BY e [ASC|DESC], …]
//!    [LIMIT n]`
//! * `UPDATE t SET col = e, … [WHERE e]` / `DELETE FROM t [WHERE e]`
//! * `DROP TABLE t`
//!
//! Expressions include scalar subqueries `(SELECT …)` (correlated allowed),
//! `EXISTS (…)`, `IN (list)`, `IS [NOT] NULL`, the aggregates
//! `COUNT/SUM/MIN/MAX/AVG` (plus `COUNT(*)` and `COUNT(DISTINCT e)`), and
//! the scalar functions `ABS`, `COALESCE`, `LENGTH`, `UPPER`, `LOWER`,
//! `ROUND`.

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod render;

pub use ast::*;
pub use parser::parse_statement;
pub use render::{render_expr, render_select, render_value};
