//! Table schemas and the catalog.

use crate::error::{DbError, DbResult};
use crate::value::ColType;
use serde::{Deserialize, Serialize};

/// One column of a table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnDef {
    /// Column name (case-preserved, matched case-insensitively).
    pub name: String,
    /// Data type.
    pub ty: ColType,
    /// Whether NULL is allowed.
    pub nullable: bool,
}

impl ColumnDef {
    /// A nullable column.
    pub fn new(name: impl Into<String>, ty: ColType) -> Self {
        ColumnDef {
            name: name.into(),
            ty,
            nullable: true,
        }
    }

    /// A NOT NULL column.
    pub fn not_null(name: impl Into<String>, ty: ColType) -> Self {
        ColumnDef {
            name: name.into(),
            ty,
            nullable: false,
        }
    }
}

/// Schema of one table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableSchema {
    /// Table name.
    pub name: String,
    /// Columns in declaration order.
    pub columns: Vec<ColumnDef>,
    /// Index of the PRIMARY KEY column, if declared.
    pub primary_key: Option<usize>,
}

impl TableSchema {
    /// Create a schema; validates duplicate column names.
    pub fn new(
        name: impl Into<String>,
        columns: Vec<ColumnDef>,
        primary_key: Option<usize>,
    ) -> DbResult<Self> {
        let name = name.into();
        for (i, c) in columns.iter().enumerate() {
            if columns[..i]
                .iter()
                .any(|o| o.name.eq_ignore_ascii_case(&c.name))
            {
                return Err(DbError::Catalog(format!(
                    "duplicate column `{}` in table `{name}`",
                    c.name
                )));
            }
        }
        if let Some(pk) = primary_key {
            if pk >= columns.len() {
                return Err(DbError::Catalog(format!(
                    "primary key index {pk} out of range in `{name}`"
                )));
            }
        }
        Ok(TableSchema {
            name,
            columns,
            primary_key,
        })
    }

    /// Index of a column by (case-insensitive) name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Render as a `CREATE TABLE` statement. Identifiers that collide with
    /// SQL keywords are quoted.
    pub fn to_create_sql(&self) -> String {
        let cols: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let mut s = format!(
                    "{} {}",
                    crate::sql::render::quote_ident(&c.name),
                    c.ty.sql_name()
                );
                if self.primary_key == Some(i) {
                    s.push_str(" PRIMARY KEY");
                } else if !c.nullable {
                    s.push_str(" NOT NULL");
                }
                s
            })
            .collect();
        format!(
            "CREATE TABLE {} ({})",
            crate::sql::render::quote_ident(&self.name),
            cols.join(", ")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_columns_rejected() {
        let err = TableSchema::new(
            "t",
            vec![
                ColumnDef::new("a", ColType::Integer),
                ColumnDef::new("A", ColType::Text),
            ],
            None,
        )
        .unwrap_err();
        assert!(matches!(err, DbError::Catalog(_)));
    }

    #[test]
    fn column_lookup_is_case_insensitive() {
        let s = TableSchema::new(
            "t",
            vec![
                ColumnDef::new("Id", ColType::Integer),
                ColumnDef::new("Name", ColType::Text),
            ],
            Some(0),
        )
        .unwrap();
        assert_eq!(s.column_index("id"), Some(0));
        assert_eq!(s.column_index("NAME"), Some(1));
        assert_eq!(s.column_index("zzz"), None);
    }

    #[test]
    fn create_sql_roundtrips_visually() {
        let s = TableSchema::new(
            "t",
            vec![
                ColumnDef::new("id", ColType::Integer),
                ColumnDef::not_null("x", ColType::Real),
            ],
            Some(0),
        )
        .unwrap();
        assert_eq!(
            s.to_create_sql(),
            "CREATE TABLE t (id INTEGER PRIMARY KEY, x REAL NOT NULL)"
        );
    }

    #[test]
    fn pk_out_of_range_rejected() {
        assert!(
            TableSchema::new("t", vec![ColumnDef::new("a", ColType::Integer)], Some(3)).is_err()
        );
    }
}
