//! # `reldb` — embedded relational database substrate
//!
//! The paper's COSY prototype stores Apprentice performance data in a
//! relational database (§3) and evaluates ASL property conditions as SQL
//! queries (§5), reporting experiments with Oracle 7, MS Access, MS SQL
//! Server and Postgres over JDBC. None of those 1999 systems is available
//! here, so this crate provides both halves of the substitution
//! (DESIGN.md §2):
//!
//! 1. **A real embedded relational engine**, written from scratch: typed
//!    columns, row storage, hash and ordered indexes, a hand-written SQL
//!    parser, a logical planner with predicate pushdown and index selection,
//!    and an executor supporting joins, grouping, aggregates, ordering and
//!    DML ([`sql`], [`plan`], [`exec`], [`db`]).
//! 2. **A virtual-clock cost model** ([`remote`]) reproducing the *economics*
//!    of the paper's client/server setups: per-statement parse cost,
//!    per-row server cost, network round trips, and API-binding overhead
//!    (JDBC-like vs native C-like). The paper's measured ratios — Oracle ≈2×
//!    slower than MS SQL/Postgres on insertion, local MS Access ≈20× faster
//!    than Oracle, JDBC 2–4× slower than C, ~1 ms per record fetch — emerge
//!    from these per-operation microcosts.
//!
//! ```
//! use reldb::db::Database;
//!
//! let mut db = Database::new();
//! db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, name TEXT, x REAL)").unwrap();
//! db.execute("INSERT INTO t (id, name, x) VALUES (1, 'a', 1.5), (2, 'b', 2.5)").unwrap();
//! let r = db.execute("SELECT name, x * 2 AS d FROM t WHERE id = 2").unwrap();
//! assert_eq!(r.rows.len(), 1);
//! assert_eq!(r.rows[0][0], reldb::value::Value::Text("b".into()));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod db;
pub mod error;
pub mod exec;
pub mod plan;
pub mod remote;
pub mod schema;
pub mod sql;
pub mod table;
pub mod value;

pub use db::{Database, QueryResult};
pub use error::DbError;
pub use value::Value;
