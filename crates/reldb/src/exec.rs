//! Query execution: expression evaluation, scans, joins, grouping,
//! ordering and projection.
//!
//! ## Dialect notes (documented simplifications)
//!
//! * `/` always produces a float (ASL severities are ratios; the generated
//!   SQL relies on this).
//! * Comparisons involving NULL are **false** (no three-valued logic); use
//!   `IS NULL`. NULL in a boolean context is false.
//! * Aggregates skip NULLs; `COUNT(*)` counts rows; `SUM`/`MIN`/`MAX` of an
//!   empty set are NULL, `COUNT` is 0.
//! * In grouped queries, a plain column reference resolves against the
//!   first row of the group (valid for group keys, which is what the
//!   generated queries use).
//! * Correlated scalar subqueries are re-evaluated per outer row (no
//!   memoization) — the honest cost model for the paper's client-vs-SQL
//!   work-distribution experiment.

use crate::db::Database;
use crate::error::{DbError, DbResult};
use crate::plan::{plan_from, Layout, LayoutCol, ScanPlan};
use crate::sql::ast::*;
use crate::value::{Row, Value};
use std::cmp::Ordering;
use std::collections::HashMap;

/// Execution statistics, accumulated across subqueries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Rows read from storage (after index narrowing).
    pub rows_scanned: u64,
    /// Rows produced by the top-level statement.
    pub rows_output: u64,
    /// Number of index point lookups performed.
    pub index_lookups: u64,
}

/// Outer-row context stack for correlated subqueries.
#[derive(Default)]
pub struct Frames<'a> {
    stack: Vec<(&'a Layout, &'a [Value])>,
}

impl<'a> Frames<'a> {
    /// Empty context (top-level statement).
    pub fn new() -> Self {
        Frames { stack: Vec::new() }
    }

    fn with(&self, layout: &'a Layout, row: &'a [Value]) -> Frames<'a> {
        let mut stack = self.stack.clone();
        stack.push((layout, row));
        Frames { stack }
    }

    fn resolve(&self, table: Option<&str>, column: &str) -> Option<Value> {
        for (layout, row) in self.stack.iter().rev() {
            if let Some(slot) = layout.try_resolve(table, column) {
                return Some(row[slot].clone());
            }
        }
        None
    }
}

impl<'a> Clone for Frames<'a> {
    fn clone(&self) -> Self {
        Frames {
            stack: self.stack.clone(),
        }
    }
}

/// Truthiness in a boolean context: NULL is false, non-boolean is an error.
fn truthy(v: &Value) -> DbResult<bool> {
    match v {
        Value::Bool(b) => Ok(*b),
        Value::Null => Ok(false),
        other => Err(DbError::Eval(format!(
            "expected a boolean condition, found {other}"
        ))),
    }
}

fn numeric_binop(op: SqlBinOp, a: &Value, b: &Value) -> DbResult<Value> {
    if a.is_null() || b.is_null() {
        return Ok(Value::Null);
    }
    let (x, y) = match (a.as_f64(), b.as_f64()) {
        (Some(x), Some(y)) => (x, y),
        _ => {
            return Err(DbError::Eval(format!(
                "arithmetic on non-numeric values {a} and {b}"
            )))
        }
    };
    let both_int = matches!((a, b), (Value::Int(_), Value::Int(_)));
    Ok(match op {
        SqlBinOp::Add => {
            if both_int {
                Value::Int(a.as_i64().unwrap() + b.as_i64().unwrap())
            } else {
                Value::Float(x + y)
            }
        }
        SqlBinOp::Sub => {
            if both_int {
                Value::Int(a.as_i64().unwrap() - b.as_i64().unwrap())
            } else {
                Value::Float(x - y)
            }
        }
        SqlBinOp::Mul => {
            if both_int {
                Value::Int(a.as_i64().unwrap() * b.as_i64().unwrap())
            } else {
                Value::Float(x * y)
            }
        }
        // Dialect: division always yields float.
        SqlBinOp::Div => {
            if y == 0.0 {
                return Err(DbError::Eval("division by zero".into()));
            }
            Value::Float(x / y)
        }
        SqlBinOp::Mod => {
            let (xi, yi) = match (a.as_i64(), b.as_i64()) {
                (Some(xi), Some(yi)) => (xi, yi),
                _ => return Err(DbError::Eval("`%` requires integers".into())),
            };
            if yi == 0 {
                return Err(DbError::Eval("modulo by zero".into()));
            }
            Value::Int(xi % yi)
        }
        _ => unreachable!("comparison handled elsewhere"),
    })
}

fn scalar_function(name: &str, args: &[Value]) -> DbResult<Value> {
    match (name, args) {
        ("ABS", [v]) => match v {
            Value::Null => Ok(Value::Null),
            Value::Int(i) => Ok(Value::Int(i.abs())),
            Value::Float(f) => Ok(Value::Float(f.abs())),
            other => Err(DbError::Eval(format!("ABS of non-number {other}"))),
        },
        ("COALESCE", vs) => Ok(vs
            .iter()
            .find(|v| !v.is_null())
            .cloned()
            .unwrap_or(Value::Null)),
        ("LENGTH", [Value::Text(s)]) => Ok(Value::Int(s.len() as i64)),
        ("LENGTH", [Value::Null]) => Ok(Value::Null),
        ("UPPER", [Value::Text(s)]) => Ok(Value::Text(s.to_uppercase())),
        ("LOWER", [Value::Text(s)]) => Ok(Value::Text(s.to_lowercase())),
        ("ROUND", [v]) => match v {
            Value::Float(f) => Ok(Value::Float(f.round())),
            Value::Int(i) => Ok(Value::Int(*i)),
            Value::Null => Ok(Value::Null),
            other => Err(DbError::Eval(format!("ROUND of non-number {other}"))),
        },
        ("ROUND", [v, Value::Int(d)]) => match v {
            Value::Float(f) => {
                let m = 10f64.powi(*d as i32);
                Ok(Value::Float((f * m).round() / m))
            }
            Value::Int(i) => Ok(Value::Int(*i)),
            Value::Null => Ok(Value::Null),
            other => Err(DbError::Eval(format!("ROUND of non-number {other}"))),
        },
        ("GREATEST" | "LEAST", vs) if !vs.is_empty() => {
            let want_greater = name == "GREATEST";
            let mut best: Option<&Value> = None;
            for v in vs {
                if v.is_null() {
                    return Ok(Value::Null);
                }
                best = Some(match best {
                    None => v,
                    Some(b) => match v.compare(b) {
                        Some(Ordering::Greater) if want_greater => v,
                        Some(Ordering::Less) if !want_greater => v,
                        None => {
                            return Err(DbError::Eval(
                                "GREATEST/LEAST over incomparable values".into(),
                            ))
                        }
                        _ => b,
                    },
                });
            }
            Ok(best.expect("non-empty").clone())
        }
        (name, args) => Err(DbError::Eval(format!(
            "unknown function {name}/{}",
            args.len()
        ))),
    }
}

/// Evaluate a scalar expression against one row.
pub fn eval_expr(
    db: &Database,
    e: &SqlExpr,
    layout: &Layout,
    row: &[Value],
    frames: &Frames<'_>,
    stats: &mut ExecStats,
) -> DbResult<Value> {
    match e {
        SqlExpr::Lit(v) => Ok(v.clone()),
        SqlExpr::Col { table, column } => match layout.resolution(table.as_deref(), column) {
            crate::plan::Resolution::Slot(slot) => Ok(row[slot].clone()),
            crate::plan::Resolution::Ambiguous => Err(DbError::Semantic(format!(
                "ambiguous column `{column}`; qualify it"
            ))),
            crate::plan::Resolution::Absent => {
                if let Some(v) = frames.resolve(table.as_deref(), column) {
                    Ok(v)
                } else {
                    Err(DbError::Semantic(format!(
                        "unknown column `{}{column}`",
                        table
                            .as_deref()
                            .map(|t| format!("{t}."))
                            .unwrap_or_default()
                    )))
                }
            }
        },
        SqlExpr::Neg(inner) => {
            let v = eval_expr(db, inner, layout, row, frames, stats)?;
            match v {
                Value::Null => Ok(Value::Null),
                Value::Int(i) => Ok(Value::Int(-i)),
                Value::Float(f) => Ok(Value::Float(-f)),
                other => Err(DbError::Eval(format!("cannot negate {other}"))),
            }
        }
        SqlExpr::Not(inner) => {
            let v = eval_expr(db, inner, layout, row, frames, stats)?;
            Ok(Value::Bool(!truthy(&v)?))
        }
        SqlExpr::Binary(op, a, b) => match op {
            SqlBinOp::And => {
                let va = eval_expr(db, a, layout, row, frames, stats)?;
                if !truthy(&va)? {
                    return Ok(Value::Bool(false));
                }
                let vb = eval_expr(db, b, layout, row, frames, stats)?;
                Ok(Value::Bool(truthy(&vb)?))
            }
            SqlBinOp::Or => {
                let va = eval_expr(db, a, layout, row, frames, stats)?;
                if truthy(&va)? {
                    return Ok(Value::Bool(true));
                }
                let vb = eval_expr(db, b, layout, row, frames, stats)?;
                Ok(Value::Bool(truthy(&vb)?))
            }
            SqlBinOp::Eq
            | SqlBinOp::Neq
            | SqlBinOp::Lt
            | SqlBinOp::Le
            | SqlBinOp::Gt
            | SqlBinOp::Ge => {
                let va = eval_expr(db, a, layout, row, frames, stats)?;
                let vb = eval_expr(db, b, layout, row, frames, stats)?;
                let r = match va.compare(&vb) {
                    None => false, // dialect: unknown is false
                    Some(ord) => match op {
                        SqlBinOp::Eq => ord == Ordering::Equal,
                        SqlBinOp::Neq => ord != Ordering::Equal,
                        SqlBinOp::Lt => ord == Ordering::Less,
                        SqlBinOp::Le => ord != Ordering::Greater,
                        SqlBinOp::Gt => ord == Ordering::Greater,
                        SqlBinOp::Ge => ord != Ordering::Less,
                        _ => unreachable!(),
                    },
                };
                Ok(Value::Bool(r))
            }
            _ => {
                let va = eval_expr(db, a, layout, row, frames, stats)?;
                let vb = eval_expr(db, b, layout, row, frames, stats)?;
                numeric_binop(*op, &va, &vb)
            }
        },
        SqlExpr::IsNull(inner, negated) => {
            let v = eval_expr(db, inner, layout, row, frames, stats)?;
            Ok(Value::Bool(v.is_null() != *negated))
        }
        SqlExpr::InList(x, list, negated) => {
            let vx = eval_expr(db, x, layout, row, frames, stats)?;
            let mut found = false;
            for item in list {
                let vi = eval_expr(db, item, layout, row, frames, stats)?;
                if vx.compare(&vi) == Some(Ordering::Equal) {
                    found = true;
                    break;
                }
            }
            Ok(Value::Bool(found != *negated))
        }
        SqlExpr::Agg { .. } => Err(DbError::Semantic(
            "aggregate used outside a grouped query".into(),
        )),
        SqlExpr::Func { name, args } => {
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(eval_expr(db, a, layout, row, frames, stats)?);
            }
            scalar_function(name, &vals)
        }
        SqlExpr::Subquery(sub) => {
            let inner_frames = frames.with(layout, row);
            let (_, rows) = run_select(db, sub, &inner_frames, stats)?;
            match rows.len() {
                0 => Ok(Value::Null),
                1 => {
                    if rows[0].len() != 1 {
                        Err(DbError::Semantic(
                            "scalar subquery must return one column".into(),
                        ))
                    } else {
                        Ok(rows[0][0].clone())
                    }
                }
                n => Err(DbError::Eval(format!("scalar subquery returned {n} rows"))),
            }
        }
        SqlExpr::Exists(sub) => {
            let inner_frames = frames.with(layout, row);
            let (_, rows) = run_select(db, sub, &inner_frames, stats)?;
            Ok(Value::Bool(!rows.is_empty()))
        }
    }
}

/// Evaluate an expression in a *group* context: aggregate nodes combine over
/// the group's rows, plain columns resolve against the group's first row.
fn eval_group_expr(
    db: &Database,
    e: &SqlExpr,
    layout: &Layout,
    group: &[Row],
    frames: &Frames<'_>,
    stats: &mut ExecStats,
) -> DbResult<Value> {
    match e {
        SqlExpr::Agg {
            func,
            arg,
            distinct,
        } => {
            // COUNT(*)
            let Some(arg) = arg else {
                return Ok(Value::Int(group.len() as i64));
            };
            let mut vals = Vec::with_capacity(group.len());
            for row in group {
                let v = eval_expr(db, arg, layout, row, frames, stats)?;
                if !v.is_null() {
                    vals.push(v);
                }
            }
            if *distinct {
                let mut seen = std::collections::HashSet::new();
                vals.retain(|v| seen.insert(v.clone()));
            }
            match func {
                AggFunc::Count => Ok(Value::Int(vals.len() as i64)),
                AggFunc::Sum => {
                    if vals.is_empty() {
                        return Ok(Value::Null);
                    }
                    if vals.iter().all(|v| matches!(v, Value::Int(_))) {
                        Ok(Value::Int(vals.iter().map(|v| v.as_i64().unwrap()).sum()))
                    } else {
                        let mut acc = 0.0;
                        for v in &vals {
                            acc += v
                                .as_f64()
                                .ok_or_else(|| DbError::Eval(format!("SUM of non-numeric {v}")))?;
                        }
                        Ok(Value::Float(acc))
                    }
                }
                AggFunc::Avg => {
                    if vals.is_empty() {
                        return Ok(Value::Null);
                    }
                    let mut acc = 0.0;
                    for v in &vals {
                        acc += v
                            .as_f64()
                            .ok_or_else(|| DbError::Eval(format!("AVG of non-numeric {v}")))?;
                    }
                    Ok(Value::Float(acc / vals.len() as f64))
                }
                AggFunc::Min | AggFunc::Max => {
                    let mut best: Option<Value> = None;
                    for v in vals {
                        best = Some(match best {
                            None => v,
                            Some(b) => match v.compare(&b) {
                                Some(Ordering::Less) if *func == AggFunc::Min => v,
                                Some(Ordering::Greater) if *func == AggFunc::Max => v,
                                None => {
                                    return Err(DbError::Eval(
                                        "MIN/MAX over incomparable values".into(),
                                    ))
                                }
                                _ => b,
                            },
                        });
                    }
                    Ok(best.unwrap_or(Value::Null))
                }
            }
        }
        // Recurse structurally so aggregates nested in arithmetic work
        // (e.g. `SUM(t.Time) / 4`).
        SqlExpr::Neg(i) => {
            let v = eval_group_expr(db, i, layout, group, frames, stats)?;
            match v {
                Value::Null => Ok(Value::Null),
                Value::Int(x) => Ok(Value::Int(-x)),
                Value::Float(x) => Ok(Value::Float(-x)),
                other => Err(DbError::Eval(format!("cannot negate {other}"))),
            }
        }
        SqlExpr::Not(i) => {
            let v = eval_group_expr(db, i, layout, group, frames, stats)?;
            Ok(Value::Bool(!truthy(&v)?))
        }
        SqlExpr::Binary(op, a, b) => match op {
            SqlBinOp::And
            | SqlBinOp::Or
            | SqlBinOp::Eq
            | SqlBinOp::Neq
            | SqlBinOp::Lt
            | SqlBinOp::Le
            | SqlBinOp::Gt
            | SqlBinOp::Ge => {
                let va = eval_group_expr(db, a, layout, group, frames, stats)?;
                let vb = eval_group_expr(db, b, layout, group, frames, stats)?;
                match op {
                    SqlBinOp::And => Ok(Value::Bool(truthy(&va)? && truthy(&vb)?)),
                    SqlBinOp::Or => Ok(Value::Bool(truthy(&va)? || truthy(&vb)?)),
                    _ => {
                        let r = match va.compare(&vb) {
                            None => false,
                            Some(ord) => match op {
                                SqlBinOp::Eq => ord == Ordering::Equal,
                                SqlBinOp::Neq => ord != Ordering::Equal,
                                SqlBinOp::Lt => ord == Ordering::Less,
                                SqlBinOp::Le => ord != Ordering::Greater,
                                SqlBinOp::Gt => ord == Ordering::Greater,
                                SqlBinOp::Ge => ord != Ordering::Less,
                                _ => unreachable!(),
                            },
                        };
                        Ok(Value::Bool(r))
                    }
                }
            }
            _ => {
                let va = eval_group_expr(db, a, layout, group, frames, stats)?;
                let vb = eval_group_expr(db, b, layout, group, frames, stats)?;
                numeric_binop(*op, &va, &vb)
            }
        },
        SqlExpr::Func { name, args } => {
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(eval_group_expr(db, a, layout, group, frames, stats)?);
            }
            scalar_function(name, &vals)
        }
        SqlExpr::IsNull(i, neg) => {
            let v = eval_group_expr(db, i, layout, group, frames, stats)?;
            Ok(Value::Bool(v.is_null() != *neg))
        }
        SqlExpr::InList(x, list, neg) => {
            let vx = eval_group_expr(db, x, layout, group, frames, stats)?;
            let mut found = false;
            for item in list {
                let vi = eval_group_expr(db, item, layout, group, frames, stats)?;
                if vx.compare(&vi) == Some(Ordering::Equal) {
                    found = true;
                    break;
                }
            }
            Ok(Value::Bool(found != *neg))
        }
        // Non-aggregate leaf: resolve against the group's representative row.
        other => {
            let rep: &[Value] = group.first().map(|r| r.as_slice()).unwrap_or(&[]);
            eval_expr(db, other, layout, rep, frames, stats)
        }
    }
}

/// Scan one table according to its plan, producing rows (cloned values).
fn scan_table(
    db: &Database,
    real_table: &str,
    visible: &str,
    scan: &ScanPlan,
    frames: &Frames<'_>,
    stats: &mut ExecStats,
) -> DbResult<Vec<Row>> {
    let table = db
        .table(real_table)
        .ok_or_else(|| DbError::Catalog(format!("unknown table `{real_table}`")))?;
    // Single-table layout for filter evaluation.
    let layout = Layout {
        cols: table
            .schema
            .columns
            .iter()
            .map(|c| LayoutCol {
                table: visible.to_string(),
                column: c.name.clone(),
            })
            .collect(),
        tables: vec![(
            visible.to_string(),
            real_table.to_string(),
            0,
            table.schema.arity(),
        )],
    };

    let candidates: Vec<&Row> = if let Some(lookup) = &scan.index {
        stats.index_lookups += 1;
        // The key expression references no columns of this table: evaluate
        // it once against the outer frames (correlated point lookup).
        let key = eval_expr(db, &lookup.key, &layout, &[], frames, stats)?;
        if key.is_null() {
            Vec::new() // x = NULL matches nothing
        } else {
            // Coerce to the column's storage type so Int keys find Float
            // columns and vice versa.
            let ty = table.schema.columns[lookup.column].ty;
            match key.coerce(ty) {
                Ok(key) => {
                    let ix = table
                        .index_on(lookup.column)
                        .expect("planner verified index");
                    ix.get(&key)
                        .iter()
                        .filter_map(|id| table.get(*id))
                        .collect()
                }
                // Incomparable type (e.g. text key on an integer column):
                // equality can never hold.
                Err(_) => Vec::new(),
            }
        }
    } else {
        table.iter().map(|(_, r)| r).collect()
    };
    stats.rows_scanned += candidates.len() as u64;

    let mut out = Vec::new();
    'rows: for row in candidates {
        for f in &scan.filters {
            let v = eval_expr(db, f, &layout, row, frames, stats)?;
            if !truthy(&v)? {
                continue 'rows;
            }
        }
        out.push(row.clone());
    }
    Ok(out)
}

/// Run a SELECT statement. Returns `(column_names, rows)`.
pub fn run_select(
    db: &Database,
    sel: &SelectStmt,
    frames: &Frames<'_>,
    stats: &mut ExecStats,
) -> DbResult<(Vec<String>, Vec<Row>)> {
    // ---- FROM / WHERE ----------------------------------------------------
    let plan = plan_from(db, sel)?;
    let layout = &plan.layout;

    let mut rows: Vec<Row> = if sel.from.is_none() {
        vec![Vec::new()] // one empty row for table-less SELECT
    } else {
        let (visible, real, _, _) = &layout.tables[0];
        scan_table(db, real, visible, &plan.scans[0], frames, stats)?
    };

    for (k, jp) in plan.joins.iter().enumerate() {
        let right_idx = k + 1;
        let (visible, real, start, _) = &layout.tables[right_idx];
        let right_rows = scan_table(db, real, visible, &plan.scans[right_idx], frames, stats)?;
        // Layout covering tables 0..=right for predicate evaluation.
        let accum_layout = Layout {
            cols: layout.cols[..layout.tables[right_idx].3].to_vec(),
            tables: layout.tables[..=right_idx].to_vec(),
        };
        let right_layout = Layout {
            cols: layout.cols[*start..layout.tables[right_idx].3].to_vec(),
            tables: vec![(
                visible.clone(),
                real.clone(),
                0,
                layout.tables[right_idx].3 - start,
            )],
        };

        let mut combined = Vec::new();
        if let Some((lkey, rkey)) = &jp.hash_key {
            // Build on the right side.
            let mut hash: HashMap<Value, Vec<usize>> = HashMap::new();
            for (i, r) in right_rows.iter().enumerate() {
                let v = eval_expr(db, rkey, &right_layout, r, frames, stats)?;
                if !v.is_null() {
                    hash.entry(v).or_default().push(i);
                }
            }
            // Probe with the left side. The left layout is a prefix of the
            // accumulated layout.
            let left_layout = Layout {
                cols: layout.cols[..*start].to_vec(),
                tables: layout.tables[..right_idx].to_vec(),
            };
            for lrow in rows {
                let v = eval_expr(db, lkey, &left_layout, &lrow, frames, stats)?;
                if v.is_null() {
                    continue;
                }
                if let Some(matches) = hash.get(&v) {
                    'matches: for &ri in matches {
                        let mut row = lrow.clone();
                        row.extend(right_rows[ri].iter().cloned());
                        for p in &jp.predicates {
                            let pv = eval_expr(db, p, &accum_layout, &row, frames, stats)?;
                            if !truthy(&pv)? {
                                continue 'matches;
                            }
                        }
                        combined.push(row);
                    }
                }
            }
        } else {
            for lrow in &rows {
                'right: for rrow in &right_rows {
                    let mut row = lrow.clone();
                    row.extend(rrow.iter().cloned());
                    for p in &jp.predicates {
                        let pv = eval_expr(db, p, &accum_layout, &row, frames, stats)?;
                        if !truthy(&pv)? {
                            continue 'right;
                        }
                    }
                    combined.push(row);
                }
            }
        }
        rows = combined;
    }

    // Residual predicates (subqueries, multi-table non-join conjuncts).
    if !plan.residual.is_empty() {
        let mut filtered = Vec::with_capacity(rows.len());
        'res: for row in rows {
            for p in &plan.residual {
                let v = eval_expr(db, p, layout, &row, frames, stats)?;
                if !truthy(&v)? {
                    continue 'res;
                }
            }
            filtered.push(row);
        }
        rows = filtered;
    }

    // ---- projection set-up -------------------------------------------------
    // Expand stars and derive output names.
    let mut out_items: Vec<(SqlExpr, String)> = Vec::new();
    for (i, item) in sel.items.iter().enumerate() {
        match item {
            SelectItem::Star => {
                for c in &layout.cols {
                    out_items.push((
                        SqlExpr::Col {
                            table: Some(c.table.clone()),
                            column: c.column.clone(),
                        },
                        c.column.clone(),
                    ));
                }
            }
            SelectItem::Expr { expr, alias } => {
                let name = alias.clone().unwrap_or_else(|| match expr {
                    SqlExpr::Col { column, .. } => column.clone(),
                    SqlExpr::Agg { func, .. } => func.name().to_string(),
                    _ => format!("col{}", i + 1),
                });
                out_items.push((expr.clone(), name));
            }
        }
    }
    let columns: Vec<String> = out_items.iter().map(|(_, n)| n.clone()).collect();

    let has_agg = !sel.group_by.is_empty()
        || out_items.iter().any(|(e, _)| e.contains_aggregate())
        || sel.having.as_ref().is_some_and(SqlExpr::contains_aggregate);

    // Resolve an ORDER BY expression: an alias of an output column wins,
    // otherwise the expression is evaluated in the row/group context.
    let order_slot = |e: &SqlExpr| -> Option<usize> {
        if let SqlExpr::Col {
            table: None,
            column,
        } = e
        {
            columns.iter().position(|c| c.eq_ignore_ascii_case(column))
        } else {
            None
        }
    };

    // ---- aggregation or plain projection -----------------------------------
    // Produce (output_row, sort_keys).
    let mut produced: Vec<(Row, Vec<Value>)> = Vec::new();
    if has_agg {
        // Group rows.
        let mut order: Vec<Vec<Value>> = Vec::new(); // key per group
        let mut groups: Vec<Vec<Row>> = Vec::new();
        let mut index: HashMap<Vec<Value>, usize> = HashMap::new();
        if sel.group_by.is_empty() {
            order.push(Vec::new());
            groups.push(rows);
        } else {
            for row in rows {
                let mut key = Vec::with_capacity(sel.group_by.len());
                for g in &sel.group_by {
                    key.push(eval_expr(db, g, layout, &row, frames, stats)?);
                }
                let gi = *index.entry(key.clone()).or_insert_with(|| {
                    order.push(key);
                    groups.push(Vec::new());
                    groups.len() - 1
                });
                groups[gi].push(row);
            }
        }
        for group in &groups {
            if let Some(h) = &sel.having {
                let hv = eval_group_expr(db, h, layout, group, frames, stats)?;
                if !truthy(&hv)? {
                    continue;
                }
            }
            let mut out = Vec::with_capacity(out_items.len());
            for (e, _) in &out_items {
                out.push(eval_group_expr(db, e, layout, group, frames, stats)?);
            }
            let mut keys = Vec::with_capacity(sel.order_by.len());
            for (oe, _) in &sel.order_by {
                match order_slot(oe) {
                    Some(slot) => keys.push(out[slot].clone()),
                    None => keys.push(eval_group_expr(db, oe, layout, group, frames, stats)?),
                }
            }
            produced.push((out, keys));
        }
    } else {
        for row in &rows {
            let mut out = Vec::with_capacity(out_items.len());
            for (e, _) in &out_items {
                out.push(eval_expr(db, e, layout, row, frames, stats)?);
            }
            let mut keys = Vec::with_capacity(sel.order_by.len());
            for (oe, _) in &sel.order_by {
                match order_slot(oe) {
                    Some(slot) => keys.push(out[slot].clone()),
                    None => keys.push(eval_expr(db, oe, layout, row, frames, stats)?),
                }
            }
            produced.push((out, keys));
        }
    }

    // ---- DISTINCT / ORDER BY / LIMIT ---------------------------------------
    if sel.distinct {
        let mut seen = std::collections::HashSet::new();
        produced.retain(|(row, _)| seen.insert(row.clone()));
    }
    if !sel.order_by.is_empty() {
        let descs: Vec<bool> = sel.order_by.iter().map(|(_, d)| *d).collect();
        produced.sort_by(|(_, ka), (_, kb)| {
            for (i, desc) in descs.iter().enumerate() {
                let ord = ka[i].sort_cmp(&kb[i]);
                let ord = if *desc { ord.reverse() } else { ord };
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            Ordering::Equal
        });
    }
    if let Some(limit) = sel.limit {
        produced.truncate(limit as usize);
    }

    let rows: Vec<Row> = produced.into_iter().map(|(r, _)| r).collect();
    stats.rows_output += rows.len() as u64;
    Ok((columns, rows))
}
