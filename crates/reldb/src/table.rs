//! Row storage with hash indexes.

use crate::error::{DbError, DbResult};
use crate::schema::TableSchema;
use crate::value::{Row, Value};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A secondary (or primary) hash index over one column.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct HashIndex {
    /// Indexed column.
    pub column: usize,
    /// Enforce uniqueness (primary keys).
    pub unique: bool,
    /// Value → row indexes. Deleted rows are pruned eagerly.
    map: HashMap<Value, Vec<usize>>,
}

impl HashIndex {
    /// New empty index on a column.
    pub fn new(column: usize, unique: bool) -> Self {
        HashIndex {
            column,
            unique,
            map: HashMap::new(),
        }
    }

    fn insert(&mut self, key: Value, row: usize) -> DbResult<()> {
        let display = if self.unique {
            key.to_string()
        } else {
            String::new()
        };
        let slot = self.map.entry(key).or_default();
        if self.unique && !slot.is_empty() {
            return Err(DbError::Constraint(format!(
                "duplicate key {display} for unique index"
            )));
        }
        slot.push(row);
        Ok(())
    }

    /// Row indexes matching `key`.
    pub fn get(&self, key: &Value) -> &[usize] {
        self.map.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }
}

/// A table: schema, rows and indexes. Deletions use tombstones so row
/// indexes remain stable; vacuuming rebuilds indexes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    /// The table schema.
    pub schema: TableSchema,
    rows: Vec<Option<Row>>,
    live: usize,
    indexes: Vec<HashIndex>,
}

impl Table {
    /// Create an empty table; a unique index is created for the primary key.
    pub fn new(schema: TableSchema) -> Self {
        let mut indexes = Vec::new();
        if let Some(pk) = schema.primary_key {
            indexes.push(HashIndex::new(pk, true));
        }
        Table {
            schema,
            rows: Vec::new(),
            live: 0,
            indexes,
        }
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no live rows.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Add a secondary index on a column (backfills existing rows).
    pub fn create_index(&mut self, column: usize) -> DbResult<()> {
        if column >= self.schema.arity() {
            return Err(DbError::Catalog(format!(
                "index column {column} out of range for `{}`",
                self.schema.name
            )));
        }
        if self.indexes.iter().any(|ix| ix.column == column) {
            return Ok(()); // idempotent
        }
        let mut ix = HashIndex::new(column, false);
        for (i, row) in self.rows.iter().enumerate() {
            if let Some(r) = row {
                ix.insert(r[column].clone(), i)?;
            }
        }
        self.indexes.push(ix);
        Ok(())
    }

    /// Find an index on `column`.
    pub fn index_on(&self, column: usize) -> Option<&HashIndex> {
        self.indexes.iter().find(|ix| ix.column == column)
    }

    /// Validate and insert a row; returns its stable row id.
    pub fn insert(&mut self, row: Row) -> DbResult<usize> {
        if row.len() != self.schema.arity() {
            return Err(DbError::Semantic(format!(
                "table `{}` expects {} values, got {}",
                self.schema.name,
                self.schema.arity(),
                row.len()
            )));
        }
        let mut coerced = Vec::with_capacity(row.len());
        for (v, c) in row.into_iter().zip(self.schema.columns.iter()) {
            if v.is_null() && !c.nullable {
                return Err(DbError::Constraint(format!(
                    "column `{}` of `{}` is NOT NULL",
                    c.name, self.schema.name
                )));
            }
            coerced.push(v.coerce(c.ty)?);
        }
        if let Some(pk) = self.schema.primary_key {
            if coerced[pk].is_null() {
                return Err(DbError::Constraint(format!(
                    "primary key of `{}` cannot be NULL",
                    self.schema.name
                )));
            }
            if let Some(ix) = self.index_on(pk) {
                if !ix.get(&coerced[pk]).is_empty() {
                    return Err(DbError::Constraint(format!(
                        "duplicate primary key {} in `{}`",
                        coerced[pk], self.schema.name
                    )));
                }
            }
        }
        let id = self.rows.len();
        for ix in &mut self.indexes {
            ix.insert(coerced[ix.column].clone(), id)?;
        }
        self.rows.push(Some(coerced));
        self.live += 1;
        Ok(id)
    }

    /// Fetch a row by id (None if deleted).
    pub fn get(&self, id: usize) -> Option<&Row> {
        self.rows.get(id).and_then(|r| r.as_ref())
    }

    /// Iterate over `(row_id, row)` pairs of live rows.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &Row)> {
        self.rows
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.as_ref().map(|row| (i, row)))
    }

    /// Delete a row by id; returns whether it was live.
    pub fn delete(&mut self, id: usize) -> bool {
        if let Some(slot) = self.rows.get_mut(id) {
            if let Some(row) = slot.take() {
                self.live -= 1;
                for ix in &mut self.indexes {
                    if let Some(v) = ix.map.get_mut(&row[ix.column]) {
                        v.retain(|r| *r != id);
                    }
                }
                return true;
            }
        }
        false
    }

    /// Replace a row in place (used by UPDATE); re-validates and re-indexes.
    pub fn update(&mut self, id: usize, new_row: Row) -> DbResult<()> {
        if self.get(id).is_none() {
            return Err(DbError::Semantic(format!("row {id} does not exist")));
        }
        // Remove + insert preserves constraint checks; keep the same id by
        // manual bookkeeping.
        let old = self.rows[id].take().expect("checked live");
        self.live -= 1;
        for ix in &mut self.indexes {
            if let Some(v) = ix.map.get_mut(&old[ix.column]) {
                v.retain(|r| *r != id);
            }
        }
        // Validate like insert but reuse slot `id`.
        let result = (|| -> DbResult<Row> {
            if new_row.len() != self.schema.arity() {
                return Err(DbError::Semantic("arity mismatch in UPDATE".into()));
            }
            let mut coerced = Vec::with_capacity(new_row.len());
            for (v, c) in new_row.into_iter().zip(self.schema.columns.iter()) {
                if v.is_null() && !c.nullable {
                    return Err(DbError::Constraint(format!(
                        "column `{}` is NOT NULL",
                        c.name
                    )));
                }
                coerced.push(v.coerce(c.ty)?);
            }
            if let Some(pk) = self.schema.primary_key {
                if let Some(ix) = self.index_on(pk) {
                    if !ix.get(&coerced[pk]).is_empty() {
                        return Err(DbError::Constraint(format!(
                            "duplicate primary key {} in `{}`",
                            coerced[pk], self.schema.name
                        )));
                    }
                }
            }
            Ok(coerced)
        })();
        match result {
            Ok(coerced) => {
                for ix in &mut self.indexes {
                    ix.insert(coerced[ix.column].clone(), id)?;
                }
                self.rows[id] = Some(coerced);
                self.live += 1;
                Ok(())
            }
            Err(e) => {
                // Restore the old row on failure.
                for ix in &mut self.indexes {
                    ix.insert(old[ix.column].clone(), id).ok();
                }
                self.rows[id] = Some(old);
                self.live += 1;
                Err(e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;
    use crate::value::ColType;

    fn table() -> Table {
        Table::new(
            TableSchema::new(
                "t",
                vec![
                    ColumnDef::not_null("id", ColType::Integer),
                    ColumnDef::new("name", ColType::Text),
                    ColumnDef::new("x", ColType::Real),
                ],
                Some(0),
            )
            .unwrap(),
        )
    }

    #[test]
    fn insert_and_get() {
        let mut t = table();
        let id = t
            .insert(vec![Value::Int(1), Value::Text("a".into()), Value::Int(3)])
            .unwrap();
        // Int widened to Float in a REAL column.
        assert_eq!(t.get(id).unwrap()[2], Value::Float(3.0));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn duplicate_pk_rejected() {
        let mut t = table();
        t.insert(vec![Value::Int(1), Value::Null, Value::Null])
            .unwrap();
        let err = t
            .insert(vec![Value::Int(1), Value::Null, Value::Null])
            .unwrap_err();
        assert!(matches!(err, DbError::Constraint(_)));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn not_null_enforced() {
        let mut t = table();
        let err = t
            .insert(vec![Value::Null, Value::Null, Value::Null])
            .unwrap_err();
        assert!(matches!(err, DbError::Constraint(_)));
    }

    #[test]
    fn arity_checked() {
        let mut t = table();
        assert!(t.insert(vec![Value::Int(1)]).is_err());
    }

    #[test]
    fn pk_index_lookup() {
        let mut t = table();
        for i in 0..100 {
            t.insert(vec![Value::Int(i), Value::Null, Value::Null])
                .unwrap();
        }
        let ix = t.index_on(0).unwrap();
        assert_eq!(ix.get(&Value::Int(42)).len(), 1);
        assert_eq!(ix.get(&Value::Int(1000)).len(), 0);
        assert_eq!(ix.distinct_keys(), 100);
    }

    #[test]
    fn secondary_index_backfills() {
        let mut t = table();
        t.insert(vec![Value::Int(1), Value::Text("a".into()), Value::Null])
            .unwrap();
        t.insert(vec![Value::Int(2), Value::Text("a".into()), Value::Null])
            .unwrap();
        t.create_index(1).unwrap();
        assert_eq!(
            t.index_on(1).unwrap().get(&Value::Text("a".into())).len(),
            2
        );
    }

    #[test]
    fn delete_removes_from_index() {
        let mut t = table();
        let id = t
            .insert(vec![Value::Int(5), Value::Null, Value::Null])
            .unwrap();
        assert!(t.delete(id));
        assert!(!t.delete(id));
        assert_eq!(t.len(), 0);
        assert!(t.index_on(0).unwrap().get(&Value::Int(5)).is_empty());
        // PK can be reused after deletion.
        t.insert(vec![Value::Int(5), Value::Null, Value::Null])
            .unwrap();
    }

    #[test]
    fn update_revalidates() {
        let mut t = table();
        let a = t
            .insert(vec![Value::Int(1), Value::Null, Value::Null])
            .unwrap();
        t.insert(vec![Value::Int(2), Value::Null, Value::Null])
            .unwrap();
        // Updating a's pk to 2 must fail and restore the old row.
        let err = t.update(a, vec![Value::Int(2), Value::Null, Value::Null]);
        assert!(err.is_err());
        assert_eq!(t.get(a).unwrap()[0], Value::Int(1));
        // A valid update succeeds.
        t.update(a, vec![Value::Int(3), Value::Text("z".into()), Value::Null])
            .unwrap();
        assert_eq!(t.get(a).unwrap()[0], Value::Int(3));
        assert_eq!(t.index_on(0).unwrap().get(&Value::Int(3)).len(), 1);
        assert!(t.index_on(0).unwrap().get(&Value::Int(1)).is_empty());
    }

    #[test]
    fn iter_skips_tombstones() {
        let mut t = table();
        let a = t
            .insert(vec![Value::Int(1), Value::Null, Value::Null])
            .unwrap();
        t.insert(vec![Value::Int(2), Value::Null, Value::Null])
            .unwrap();
        t.delete(a);
        let ids: Vec<usize> = t.iter().map(|(i, _)| i).collect();
        assert_eq!(ids, vec![1]);
    }
}
