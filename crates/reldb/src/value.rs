//! SQL values and column types.

use crate::error::{DbError, DbResult};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// Column data types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ColType {
    /// 64-bit signed integer (`INTEGER`).
    Integer,
    /// 64-bit float (`REAL`, `FLOAT`, `DOUBLE`).
    Real,
    /// UTF-8 string (`TEXT`, `VARCHAR`).
    Text,
    /// Boolean (`BOOLEAN`).
    Boolean,
}

impl ColType {
    /// SQL name of the type.
    pub fn sql_name(self) -> &'static str {
        match self {
            ColType::Integer => "INTEGER",
            ColType::Real => "REAL",
            ColType::Text => "TEXT",
            ColType::Boolean => "BOOLEAN",
        }
    }
}

impl fmt::Display for ColType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.sql_name())
    }
}

/// A SQL value.
///
/// NULL semantics are simplified and documented: comparisons involving
/// `Null` are false (use `IS NULL`), aggregates skip NULLs, and for
/// grouping/index purposes NULLs compare equal to each other. Floats hash
/// and group by their bit pattern.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// Absent value.
    Null,
    /// Integer.
    Int(i64),
    /// Floating point.
    Float(f64),
    /// String.
    Text(String),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// Does this value inhabit the given column type? `Null` fits any type;
    /// `Int` fits `Real` columns (widening).
    pub fn fits(&self, ty: ColType) -> bool {
        matches!(
            (self, ty),
            (Value::Null, _)
                | (Value::Int(_), ColType::Integer)
                | (Value::Int(_), ColType::Real)
                | (Value::Float(_), ColType::Real)
                | (Value::Text(_), ColType::Text)
                | (Value::Bool(_), ColType::Boolean)
        )
    }

    /// Coerce for storage in a column of the given type (widens ints into
    /// real columns so all stored reals are `Float`).
    pub fn coerce(self, ty: ColType) -> DbResult<Value> {
        match (self, ty) {
            (Value::Null, _) => Ok(Value::Null),
            (Value::Int(v), ColType::Integer) => Ok(Value::Int(v)),
            (Value::Int(v), ColType::Real) => Ok(Value::Float(v as f64)),
            (Value::Float(v), ColType::Real) => Ok(Value::Float(v)),
            (Value::Text(s), ColType::Text) => Ok(Value::Text(s)),
            (Value::Bool(b), ColType::Boolean) => Ok(Value::Bool(b)),
            (v, ty) => Err(DbError::Semantic(format!(
                "value {v} does not fit column type {ty}"
            ))),
        }
    }

    /// True if this is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view (ints widen to f64); `None` for non-numeric values.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// Integer view; `None` for non-integers.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// SQL comparison. Returns `None` when either side is NULL or the types
    /// are incomparable (the caller treats that as "unknown" = false).
    pub fn compare(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Float(a), Value::Float(b)) => a.partial_cmp(b),
            (Value::Int(a), Value::Float(b)) => (*a as f64).partial_cmp(b),
            (Value::Float(a), Value::Int(b)) => a.partial_cmp(&(*b as f64)),
            (Value::Text(a), Value::Text(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// Total order used by ORDER BY: NULLs first, then by value; used only
    /// for sorting, where a deterministic order is required.
    pub fn sort_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        fn rank(v: &Value) -> u8 {
            match v {
                Null => 0,
                Bool(_) => 1,
                Int(_) | Float(_) => 2,
                Text(_) => 3,
            }
        }
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Text(a), Text(b)) => a.cmp(b),
            (Bool(a), Bool(b)) => a.cmp(b),
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }

    /// Approximate wire size in bytes (used by the network cost model).
    pub fn wire_size(&self) -> usize {
        match self {
            Value::Null => 1,
            Value::Int(_) => 8,
            Value::Float(_) => 8,
            Value::Bool(_) => 1,
            Value::Text(s) => 4 + s.len(),
        }
    }
}

/// Equality for grouping, hashing and index keys: NULL == NULL and floats
/// compare by bits. (Filter comparisons go through [`Value::compare`]
/// instead, which returns `None` for NULL.)
impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a.to_bits() == b.to_bits(),
            (Value::Text(a), Value::Text(b)) => a == b,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Int(v) => {
                1u8.hash(state);
                v.hash(state);
            }
            Value::Float(v) => {
                2u8.hash(state);
                v.to_bits().hash(state);
            }
            Value::Text(s) => {
                3u8.hash(state);
                s.hash(state);
            }
            Value::Bool(b) => {
                4u8.hash(state);
                b.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Text(s) => write!(f, "'{s}'"),
            Value::Bool(b) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// A stored row.
pub type Row = Vec<Value>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_and_coerce() {
        assert!(Value::Int(1).fits(ColType::Real));
        assert!(!Value::Float(1.0).fits(ColType::Integer));
        assert_eq!(
            Value::Int(2).coerce(ColType::Real).unwrap(),
            Value::Float(2.0)
        );
        assert!(Value::Text("x".into()).coerce(ColType::Integer).is_err());
        assert_eq!(Value::Null.coerce(ColType::Text).unwrap(), Value::Null);
    }

    #[test]
    fn compare_null_is_unknown() {
        assert_eq!(Value::Null.compare(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).compare(&Value::Null), None);
    }

    #[test]
    fn compare_mixed_numerics() {
        assert_eq!(
            Value::Int(2).compare(&Value::Float(2.5)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Float(3.0).compare(&Value::Int(3)),
            Some(Ordering::Equal)
        );
    }

    #[test]
    fn grouping_equality_treats_null_equal() {
        assert_eq!(Value::Null, Value::Null);
        assert_ne!(Value::Null, Value::Int(0));
    }

    #[test]
    fn sort_cmp_is_total() {
        let mut vals = [
            Value::Text("b".into()),
            Value::Null,
            Value::Int(5),
            Value::Float(2.5),
            Value::Bool(true),
            Value::Int(1),
        ];
        vals.sort_by(|a, b| a.sort_cmp(b));
        assert_eq!(vals[0], Value::Null);
        assert_eq!(vals[1], Value::Bool(true));
        assert_eq!(vals[2], Value::Int(1));
        assert_eq!(vals[3], Value::Float(2.5));
        assert_eq!(vals[4], Value::Int(5));
        assert_eq!(vals[5], Value::Text("b".into()));
    }

    #[test]
    fn wire_size_counts_text_length() {
        assert_eq!(Value::Text("abcd".into()).wire_size(), 8);
        assert_eq!(Value::Int(1).wire_size(), 8);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Text("a".into()).to_string(), "'a'");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Bool(false).to_string(), "FALSE");
    }
}
