//! Backend and API-binding cost profiles.
//!
//! All values are *modeled 1999-era microcosts* in seconds. They were
//! chosen from period-plausible magnitudes (switched 10/100 Mbit LAN round
//! trips of a few hundred microseconds; heavyweight redo logging in Oracle
//! 7; an in-process Jet engine for MS Access; interpretive JDBC drivers
//! marshalling every value through JNI) — see DESIGN.md §2. The paper's
//! reported ratios are *outputs* of these inputs, reproduced by experiment
//! E2/E3 (`kojak-bench`).

use serde::{Deserialize, Serialize};

/// Per-operation server + network cost model of one database backend.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BackendProfile {
    /// Display name.
    pub name: &'static str,
    /// One network round trip, in seconds. Zero for in-process engines.
    pub network_rtt: f64,
    /// Server-side statement parse/optimize cost per statement.
    pub stmt_parse: f64,
    /// Server-side cost per inserted row (execution + logging share).
    pub insert_exec: f64,
    /// Fixed server-side cost per query (plan setup, cursor open).
    pub query_base: f64,
    /// Server-side cost per row *scanned* during query execution.
    pub row_scan: f64,
    /// Server-side cost per row *materialized* for the client.
    pub row_fetch: f64,
    /// Network transfer cost per byte of result data.
    pub byte_transfer: f64,
}

impl BackendProfile {
    /// Oracle 7 over the network.
    ///
    /// Rationale: client/server over a switched LAN (250 µs RTT); Oracle 7
    /// parses every literal-bearing statement (no cursor sharing as used by
    /// the tool, 450 µs); synchronous redo logging makes row inserts
    /// expensive (1 ms); mature executor scans fast (3 µs/row).
    pub fn oracle7() -> Self {
        BackendProfile {
            name: "Oracle 7",
            network_rtt: 0.25e-3,
            stmt_parse: 0.45e-3,
            insert_exec: 1.0e-3,
            query_base: 0.9e-3,
            row_scan: 3.0e-6,
            row_fetch: 0.10e-3,
            byte_transfer: 8.0e-8, // ~12.5 MB/s effective LAN bandwidth
        }
    }

    /// MS SQL Server 7 over the network.
    ///
    /// Rationale: TDS protocol with cheaper statement handling (120 µs
    /// parse) and lighter row logging (300 µs/insert).
    pub fn mssql7() -> Self {
        BackendProfile {
            name: "MS SQL Server 7",
            network_rtt: 0.20e-3,
            stmt_parse: 0.12e-3,
            insert_exec: 0.30e-3,
            query_base: 0.6e-3,
            row_scan: 3.5e-6,
            row_fetch: 0.08e-3,
            byte_transfer: 8.0e-8,
        }
    }

    /// PostgreSQL (6.x era) over the network.
    ///
    /// Rationale: similar LAN setup; per-statement parse slightly above MS
    /// SQL, insert cost with fsync-light configuration 350 µs.
    pub fn postgres() -> Self {
        BackendProfile {
            name: "Postgres",
            network_rtt: 0.22e-3,
            stmt_parse: 0.15e-3,
            insert_exec: 0.35e-3,
            query_base: 0.7e-3,
            row_scan: 4.0e-6,
            row_fetch: 0.09e-3,
            byte_transfer: 8.0e-8,
        }
    }

    /// MS Access (Jet) in-process on the client machine.
    ///
    /// Rationale: no network, no client/server protocol; file-based engine
    /// with tiny per-statement overhead (15 µs) and cheap row appends
    /// (35 µs). §5 of the paper: "For all those databases, except MS
    /// Access, the setup was in a distributed fashion."
    pub fn msaccess() -> Self {
        BackendProfile {
            name: "MS Access",
            network_rtt: 0.0,
            stmt_parse: 0.015e-3,
            insert_exec: 0.035e-3,
            query_base: 0.05e-3,
            row_scan: 6.0e-6, // slower scans: file-based, no server cache
            row_fetch: 0.02e-3,
            byte_transfer: 0.0,
        }
    }

    /// All four backends of the paper's §5 experiment, in reporting order.
    pub fn all() -> Vec<BackendProfile> {
        vec![
            Self::oracle7(),
            Self::msaccess(),
            Self::mssql7(),
            Self::postgres(),
        ]
    }
}

/// Client-side API binding cost model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ApiBinding {
    /// Display name.
    pub name: &'static str,
    /// Fixed client-side cost per API call (statement execute, row fetch).
    pub per_call: f64,
    /// Client-side marshalling cost per value crossing the API.
    pub per_value: f64,
}

impl ApiBinding {
    /// A 1999-era JDBC driver: interpreted driver layers, per-value object
    /// wrapping, JNI crossings.
    pub fn jdbc() -> Self {
        ApiBinding {
            name: "JDBC",
            per_call: 0.30e-3,
            per_value: 0.06e-3,
        }
    }

    /// A native C binding (OCI/DB-Library): thin stubs, values delivered
    /// into preallocated buffers.
    pub fn native_c() -> Self {
        ApiBinding {
            name: "native C",
            per_call: 0.05e-3,
            per_value: 0.005e-3,
        }
    }

    /// Cost of one API call transferring `values` scalar values.
    pub fn call_cost(&self, values: usize) -> f64 {
        self.per_call + self.per_value * values as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Row-at-a-time insert cost used by the paper-shape assertions below.
    fn insert_cost(p: &BackendProfile, b: &ApiBinding, cols: usize) -> f64 {
        p.network_rtt + p.stmt_parse + p.insert_exec + b.call_cost(cols)
    }

    fn fetch_cost(p: &BackendProfile, b: &ApiBinding, cols: usize) -> f64 {
        p.network_rtt + p.row_fetch + b.call_cost(cols)
    }

    #[test]
    fn oracle_is_about_2x_mssql_and_postgres_on_insert() {
        let jdbc = ApiBinding::jdbc();
        let o = insert_cost(&BackendProfile::oracle7(), &jdbc, 6);
        let m = insert_cost(&BackendProfile::mssql7(), &jdbc, 6);
        let p = insert_cost(&BackendProfile::postgres(), &jdbc, 6);
        assert!(o / m > 1.6 && o / m < 2.4, "oracle/mssql = {}", o / m);
        assert!(o / p > 1.5 && o / p < 2.3, "oracle/postgres = {}", o / p);
    }

    #[test]
    fn access_is_about_20x_faster_than_oracle_on_insert() {
        // Oracle via JDBC over the network vs Access in-process (native).
        let o = insert_cost(&BackendProfile::oracle7(), &ApiBinding::jdbc(), 6);
        let a = insert_cost(&BackendProfile::msaccess(), &ApiBinding::native_c(), 6);
        let ratio = o / a;
        assert!((14.0..28.0).contains(&ratio), "oracle/access = {ratio}");
    }

    #[test]
    fn oracle_jdbc_fetch_is_about_1ms() {
        let f = fetch_cost(&BackendProfile::oracle7(), &ApiBinding::jdbc(), 6);
        assert!((0.8e-3..1.3e-3).contains(&f), "fetch = {f}");
    }

    #[test]
    fn jdbc_is_2_to_4x_slower_than_native() {
        for p in [
            BackendProfile::oracle7(),
            BackendProfile::mssql7(),
            BackendProfile::postgres(),
        ] {
            let j = fetch_cost(&p, &ApiBinding::jdbc(), 6);
            let n = fetch_cost(&p, &ApiBinding::native_c(), 6);
            let ratio = j / n;
            assert!(
                (2.0..4.0).contains(&ratio),
                "{}: jdbc/native = {ratio}",
                p.name
            );
        }
    }

    #[test]
    fn call_cost_scales_with_values() {
        let b = ApiBinding::jdbc();
        assert!(b.call_cost(10) > b.call_cost(1));
    }
}
