//! A cost-charging connection to a shared database.

use crate::db::{Database, QueryResult};
use crate::error::{DbError, DbResult};
use crate::remote::clock::VirtualClock;
use crate::remote::profiles::{ApiBinding, BackendProfile};
use crate::sql::ast::Stmt;
use crate::sql::parser::parse_statement;
use crate::value::Row;
use parking_lot::RwLock;
use std::sync::Arc;

/// A database shared by several connections (the paper's COSY clients all
/// talk to one server).
pub type SharedDb = Arc<RwLock<Database>>;

/// Wrap a database for sharing.
pub fn share(db: Database) -> SharedDb {
    Arc::new(RwLock::new(db))
}

/// A client connection with a backend profile, an API binding and a virtual
/// clock. Every statement charges the clock with the modeled cost of the
/// 1999-era system; see [`super::profiles`].
pub struct Connection {
    db: SharedDb,
    /// The backend cost profile.
    pub profile: BackendProfile,
    /// The client API binding.
    pub binding: ApiBinding,
    clock: VirtualClock,
}

impl Connection {
    /// Open a connection.
    pub fn connect(db: SharedDb, profile: BackendProfile, binding: ApiBinding) -> Self {
        Connection {
            db,
            profile,
            binding,
            clock: VirtualClock::new(),
        }
    }

    /// Simulated seconds spent so far on this connection.
    pub fn elapsed(&self) -> f64 {
        self.clock.elapsed()
    }

    /// Reset the virtual clock.
    pub fn reset_clock(&mut self) {
        self.clock.reset();
    }

    /// Access the underlying shared database (tests, loaders).
    pub fn database(&self) -> SharedDb {
        Arc::clone(&self.db)
    }

    /// Execute any statement, charging modeled costs.
    ///
    /// * DDL: one round trip + parse.
    /// * INSERT: round trip + parse + per-row server execution + one API
    ///   call marshalling all inserted values.
    /// * UPDATE/DELETE: round trip + parse + per-affected-row cost.
    /// * SELECT: round trip + parse + query base + per-scanned-row cost +
    ///   batched result transfer (bytes + per-value marshalling).
    pub fn execute(&mut self, sql: &str) -> DbResult<QueryResult> {
        let stmt = parse_statement(sql)?;
        let p = &self.profile;
        match &stmt {
            Stmt::Select(_) => {
                let result = self.db.read().execute_ro(stmt)?;
                let values = result.rows.len() * result.columns.len().max(1);
                let cost = p.network_rtt
                    + p.stmt_parse
                    + p.query_base
                    + p.row_scan * result.stats.rows_scanned as f64
                    + p.row_fetch * result.rows.len() as f64
                    + p.byte_transfer * result.wire_size() as f64
                    + self.binding.call_cost(values);
                self.clock.advance(cost);
                Ok(result)
            }
            Stmt::Insert { values, .. } => {
                let inserted_values: usize = values.iter().map(Vec::len).sum();
                let result = self.db.write().execute_stmt(stmt.clone())?;
                let cost = p.network_rtt
                    + p.stmt_parse
                    + p.insert_exec * result.affected as f64
                    + self.binding.call_cost(inserted_values);
                self.clock.advance(cost);
                Ok(result)
            }
            Stmt::Update { .. } | Stmt::Delete { .. } => {
                let result = self.db.write().execute_stmt(stmt.clone())?;
                let cost = p.network_rtt
                    + p.stmt_parse
                    + p.insert_exec * result.affected as f64
                    + p.row_scan * result.stats.rows_scanned as f64
                    + self.binding.call_cost(1);
                self.clock.advance(cost);
                Ok(result)
            }
            _ => {
                let result = self.db.write().execute_stmt(stmt.clone())?;
                self.clock
                    .advance(p.network_rtt + p.stmt_parse + self.binding.call_cost(0));
                Ok(result)
            }
        }
    }

    /// Execute a SELECT and return a **record-at-a-time cursor**: the query
    /// runs server-side now (round trip + parse + base + scan cost); each
    /// [`Cursor::fetch`] then pays one round trip, the server row
    /// materialization, and the API marshalling for that row — the access
    /// pattern behind the paper's "fetching a record from the Oracle server
    /// takes about 1 ms".
    pub fn open_cursor(&mut self, sql: &str) -> DbResult<Cursor<'_>> {
        let stmt = parse_statement(sql)?;
        if !matches!(stmt, Stmt::Select(_)) {
            return Err(DbError::Semantic("cursors require a SELECT".into()));
        }
        let result = self.db.read().execute_ro(stmt)?;
        let p = &self.profile;
        self.clock.advance(
            p.network_rtt
                + p.stmt_parse
                + p.query_base
                + p.row_scan * result.stats.rows_scanned as f64
                + self.binding.call_cost(0),
        );
        let columns = result.columns.clone();
        Ok(Cursor {
            conn: self,
            columns,
            rows: result.rows.into_iter(),
        })
    }
}

/// Helper so `Connection` can run SELECTs through an immutable borrow.
trait ReadOnlyExec {
    fn execute_ro(&self, stmt: Stmt) -> DbResult<QueryResult>;
}

impl ReadOnlyExec for Database {
    fn execute_ro(&self, stmt: Stmt) -> DbResult<QueryResult> {
        match stmt {
            Stmt::Select(sel) => {
                let mut stats = crate::exec::ExecStats::default();
                let (columns, rows) =
                    crate::exec::run_select(self, &sel, &crate::exec::Frames::new(), &mut stats)?;
                Ok(QueryResult {
                    columns,
                    rows,
                    affected: 0,
                    stats,
                })
            }
            _ => Err(DbError::Semantic(
                "read-only execution requires SELECT".into(),
            )),
        }
    }
}

/// A record-at-a-time cursor over a completed server-side query.
pub struct Cursor<'a> {
    conn: &'a mut Connection,
    /// Result column names.
    pub columns: Vec<String>,
    rows: std::vec::IntoIter<Row>,
}

impl Cursor<'_> {
    /// Fetch the next record, paying the per-record round-trip and
    /// marshalling cost.
    pub fn fetch(&mut self) -> Option<Row> {
        let row = self.rows.next()?;
        let p = &self.conn.profile;
        let cost = p.network_rtt
            + p.row_fetch
            + p.byte_transfer
                * row
                    .iter()
                    .map(crate::value::Value::wire_size)
                    .sum::<usize>() as f64
            + self.conn.binding.call_cost(row.len());
        self.conn.clock.advance(cost);
        Some(row)
    }

    /// Remaining (unfetched) record count.
    pub fn remaining(&self) -> usize {
        self.rows.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn test_db() -> SharedDb {
        let mut db = Database::new();
        db.execute(
            "CREATE TABLE t (id INTEGER PRIMARY KEY, a INTEGER, b REAL, c TEXT, d REAL, e REAL)",
        )
        .unwrap();
        for i in 0..200 {
            db.execute(&format!(
                "INSERT INTO t (id, a, b, c, d, e) VALUES ({i}, {}, 1.5, 'x', 2.5, 3.5)",
                i % 10
            ))
            .unwrap();
        }
        share(db)
    }

    #[test]
    fn insert_charges_profile_costs() {
        let db = share(Database::new());
        db.write()
            .execute("CREATE TABLE t (id INTEGER PRIMARY KEY, x REAL)")
            .unwrap();
        let mut conn = Connection::connect(db, BackendProfile::oracle7(), ApiBinding::jdbc());
        conn.execute("INSERT INTO t (id, x) VALUES (1, 2.0)")
            .unwrap();
        let one = conn.elapsed();
        assert!(
            one > 1.5e-3,
            "oracle insert should cost > 1.5 ms, got {one}"
        );
        conn.execute("INSERT INTO t (id, x) VALUES (2, 2.0)")
            .unwrap();
        assert!((conn.elapsed() - 2.0 * one).abs() < 1e-9);
    }

    #[test]
    fn access_inserts_are_much_cheaper() {
        let mk = |profile, binding| {
            let db = share(Database::new());
            db.write()
                .execute("CREATE TABLE t (id INTEGER PRIMARY KEY, x REAL)")
                .unwrap();
            let mut conn = Connection::connect(db, profile, binding);
            for i in 0..100 {
                conn.execute(&format!("INSERT INTO t (id, x) VALUES ({i}, 1.0)"))
                    .unwrap();
            }
            conn.elapsed()
        };
        let oracle = mk(BackendProfile::oracle7(), ApiBinding::jdbc());
        let access = mk(BackendProfile::msaccess(), ApiBinding::native_c());
        let ratio = oracle / access;
        assert!((12.0..30.0).contains(&ratio), "oracle/access = {ratio}");
    }

    #[test]
    fn cursor_fetch_costs_about_1ms_on_oracle_jdbc() {
        let db = test_db();
        let mut conn = Connection::connect(db, BackendProfile::oracle7(), ApiBinding::jdbc());
        let mut cur = conn.open_cursor("SELECT a, b, c, d, e FROM t").unwrap();
        let before_rows = cur.remaining();
        assert_eq!(before_rows, 200);
        // Fetch 100 records and check the per-record cost.
        let t0 = cur.conn.elapsed();
        for _ in 0..100 {
            cur.fetch().unwrap();
        }
        let per_fetch = (cur.conn.elapsed() - t0) / 100.0;
        assert!(
            (0.7e-3..1.3e-3).contains(&per_fetch),
            "per fetch = {per_fetch}"
        );
    }

    #[test]
    fn jdbc_vs_native_on_bulk_select() {
        let run = |binding: ApiBinding| {
            let db = test_db();
            let mut conn = Connection::connect(db, BackendProfile::oracle7(), binding);
            let mut cur = conn.open_cursor("SELECT a, b, c, d, e FROM t").unwrap();
            while cur.fetch().is_some() {}
            conn.elapsed()
        };
        let jdbc = run(ApiBinding::jdbc());
        let native = run(ApiBinding::native_c());
        let ratio = jdbc / native;
        assert!((2.0..4.0).contains(&ratio), "jdbc/native = {ratio}");
    }

    #[test]
    fn select_batched_is_cheaper_than_cursor() {
        let db = test_db();
        let mut c1 = Connection::connect(db.clone(), BackendProfile::oracle7(), ApiBinding::jdbc());
        c1.execute("SELECT a, b, c, d, e FROM t").unwrap();
        let batched = c1.elapsed();
        let mut c2 = Connection::connect(db, BackendProfile::oracle7(), ApiBinding::jdbc());
        let mut cur = c2.open_cursor("SELECT a, b, c, d, e FROM t").unwrap();
        while cur.fetch().is_some() {}
        let row_at_a_time = c2.elapsed();
        assert!(
            row_at_a_time > batched * 2.0,
            "cursor {row_at_a_time} vs batched {batched}"
        );
    }

    #[test]
    fn shared_database_sees_writes_from_other_connection() {
        let db = share(Database::new());
        let mut a = Connection::connect(db.clone(), BackendProfile::mssql7(), ApiBinding::jdbc());
        let mut b = Connection::connect(db, BackendProfile::mssql7(), ApiBinding::jdbc());
        a.execute("CREATE TABLE s (x INTEGER)").unwrap();
        a.execute("INSERT INTO s (x) VALUES (42)").unwrap();
        let r = b.execute("SELECT x FROM s").unwrap();
        assert_eq!(r.rows[0][0], Value::Int(42));
    }

    #[test]
    fn in_db_aggregate_is_cheaper_than_client_side_fetch() {
        // The §5 claim: translating conditions into SQL beats fetching the
        // data and evaluating in the tool.
        let db = test_db();
        // SQL-side: one aggregate query returning one row.
        let mut sqlside =
            Connection::connect(db.clone(), BackendProfile::oracle7(), ApiBinding::jdbc());
        sqlside.execute("SELECT SUM(b) FROM t WHERE a = 3").unwrap();
        let sql_cost = sqlside.elapsed();
        // Client-side: fetch every row, evaluate locally.
        let mut client = Connection::connect(db, BackendProfile::oracle7(), ApiBinding::jdbc());
        let mut cur = client.open_cursor("SELECT a, b FROM t").unwrap();
        let mut sum = 0.0;
        while let Some(row) = cur.fetch() {
            if row[0] == Value::Int(3) {
                sum += row[1].as_f64().unwrap();
            }
        }
        assert!(sum > 0.0);
        let client_cost = client.elapsed();
        assert!(
            client_cost > sql_cost * 10.0,
            "client {client_cost} vs sql {sql_cost}"
        );
    }
}
