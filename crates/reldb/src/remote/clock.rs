//! A virtual clock measuring modeled (not wall-clock) seconds.

/// Accumulates simulated seconds. All backend-profile costs are charged
/// here; real compute time of the embedded engine is deliberately *not*
/// included (the paper's numbers describe 1999 systems, not this host).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct VirtualClock {
    seconds: f64,
}

impl VirtualClock {
    /// A clock at zero.
    pub fn new() -> Self {
        VirtualClock::default()
    }

    /// Advance by `dt` seconds (negative advances are ignored).
    pub fn advance(&mut self, dt: f64) {
        if dt > 0.0 {
            self.seconds += dt;
        }
    }

    /// Total simulated seconds elapsed.
    pub fn elapsed(&self) -> f64 {
        self.seconds
    }

    /// Reset to zero.
    pub fn reset(&mut self) {
        self.seconds = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances_and_resets() {
        let mut c = VirtualClock::new();
        c.advance(1.5);
        c.advance(0.5);
        assert_eq!(c.elapsed(), 2.0);
        c.reset();
        assert_eq!(c.elapsed(), 0.0);
    }

    #[test]
    fn negative_advance_ignored() {
        let mut c = VirtualClock::new();
        c.advance(-1.0);
        assert_eq!(c.elapsed(), 0.0);
    }
}
