//! Client/server cost model: virtual-clock simulation of 1999-era database
//! backends and API bindings.
//!
//! §5 of the paper reports end-to-end observations from four databases
//! (Oracle 7, MS Access, MS SQL Server, Postgres) accessed from a Java tool
//! via JDBC. Those observations are artifacts of per-operation microcosts —
//! network round trips, statement parsing, per-row execution and fetch
//! costs, and API marshalling overhead. This module recreates the
//! *mechanism*: a [`Connection`] wraps the embedded engine and charges a
//! [`VirtualClock`] for every operation according to a
//! [`BackendProfile`] and an [`ApiBinding`]. The paper's ratios then emerge
//! from workloads rather than being asserted:
//!
//! * row-at-a-time insertion: Oracle ≈ 2× slower than MS SQL/Postgres,
//!   in-process MS Access ≈ 20× faster than Oracle;
//! * record fetch from Oracle via JDBC ≈ 1 ms;
//! * JDBC ≈ 2–4× slower than a native C binding;
//! * evaluating conditions in SQL beats fetching records to the client.
//!
//! The microcost values and their rationale are documented on each profile
//! constructor in [`profiles`].

pub mod clock;
pub mod connection;
pub mod profiles;

pub use clock::VirtualClock;
pub use connection::{Connection, Cursor, SharedDb};
pub use profiles::{ApiBinding, BackendProfile};
