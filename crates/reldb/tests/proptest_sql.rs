//! Property-based tests: the SQL engine against a naive Rust reference
//! implementation, on randomized tables.

use proptest::prelude::*;
use reldb::value::Value;
use reldb::Database;

/// One generated row: (pk, a, b, flag).
type RowSpec = (i64, i64, f64, bool);

fn rows_strategy() -> impl Strategy<Value = Vec<RowSpec>> {
    prop::collection::vec(
        (
            0i64..1000,
            -50i64..50,
            (-100.0f64..100.0).prop_map(|v| (v * 100.0).round() / 100.0),
            any::<bool>(),
        ),
        0..60,
    )
    .prop_map(|mut rows| {
        // Unique primary keys.
        rows.sort_by_key(|r| r.0);
        rows.dedup_by_key(|r| r.0);
        rows
    })
}

fn build_db(rows: &[RowSpec]) -> Database {
    let mut db = Database::new();
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, a INTEGER, b REAL, f BOOLEAN)")
        .unwrap();
    db.execute("CREATE INDEX t_a ON t (a)").unwrap();
    for (id, a, b, f) in rows {
        db.execute(&format!(
            "INSERT INTO t (id, a, b, f) VALUES ({id}, {a}, {b:e}, {})",
            if *f { "TRUE" } else { "FALSE" }
        ))
        .unwrap();
    }
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn filter_matches_reference(rows in rows_strategy(), k in -60i64..60) {
        let db = build_db(&rows);
        let r = db.query(&format!("SELECT id FROM t WHERE a > {k} ORDER BY id")).unwrap();
        let expected: Vec<i64> = rows.iter().filter(|x| x.1 > k).map(|x| x.0).collect();
        let got: Vec<i64> = r.rows.iter().map(|x| x[0].as_i64().unwrap()).collect();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn indexed_point_lookup_matches_scan(rows in rows_strategy(), k in -60i64..60) {
        let db = build_db(&rows);
        // Same query via index (a = k uses the index) and a full scan
        // variant that defeats index selection.
        let fast = db.query(&format!("SELECT COUNT(*) FROM t WHERE a = {k}")).unwrap();
        let slow = db.query(&format!("SELECT COUNT(*) FROM t WHERE a + 0 = {k}")).unwrap();
        prop_assert_eq!(fast.rows[0][0].clone(), slow.rows[0][0].clone());
        let expected = rows.iter().filter(|x| x.1 == k).count() as i64;
        prop_assert_eq!(fast.rows[0][0].as_i64().unwrap(), expected);
    }

    #[test]
    fn aggregates_match_reference(rows in rows_strategy()) {
        let db = build_db(&rows);
        let r = db.query("SELECT COUNT(*), SUM(b), MIN(a), MAX(a) FROM t WHERE f").unwrap();
        let filtered: Vec<&RowSpec> = rows.iter().filter(|x| x.3).collect();
        prop_assert_eq!(r.rows[0][0].as_i64().unwrap(), filtered.len() as i64);
        if filtered.is_empty() {
            prop_assert_eq!(r.rows[0][1].clone(), Value::Null);
            prop_assert_eq!(r.rows[0][2].clone(), Value::Null);
        } else {
            let sum: f64 = filtered.iter().map(|x| x.2).sum();
            prop_assert!((r.rows[0][1].as_f64().unwrap() - sum).abs() < 1e-9);
            prop_assert_eq!(
                r.rows[0][2].as_i64().unwrap(),
                filtered.iter().map(|x| x.1).min().unwrap()
            );
            prop_assert_eq!(
                r.rows[0][3].as_i64().unwrap(),
                filtered.iter().map(|x| x.1).max().unwrap()
            );
        }
    }

    #[test]
    fn group_by_matches_reference(rows in rows_strategy()) {
        let db = build_db(&rows);
        let r = db
            .query("SELECT a, COUNT(*), SUM(b) FROM t GROUP BY a ORDER BY a")
            .unwrap();
        use std::collections::BTreeMap;
        let mut expected: BTreeMap<i64, (i64, f64)> = BTreeMap::new();
        for (_, a, b, _) in &rows {
            let e = expected.entry(*a).or_insert((0, 0.0));
            e.0 += 1;
            e.1 += *b;
        }
        prop_assert_eq!(r.rows.len(), expected.len());
        for (row, (a, (n, sum))) in r.rows.iter().zip(expected.iter()) {
            prop_assert_eq!(row[0].as_i64().unwrap(), *a);
            prop_assert_eq!(row[1].as_i64().unwrap(), *n);
            prop_assert!((row[2].as_f64().unwrap() - sum).abs() < 1e-9);
        }
    }

    #[test]
    fn order_by_limit_matches_reference(rows in rows_strategy(), limit in 0usize..10) {
        let db = build_db(&rows);
        let r = db
            .query(&format!("SELECT id FROM t ORDER BY b DESC, id LIMIT {limit}"))
            .unwrap();
        let mut expected: Vec<(f64, i64)> = rows.iter().map(|x| (x.2, x.0)).collect();
        expected.sort_by(|p, q| q.0.total_cmp(&p.0).then(p.1.cmp(&q.1)));
        expected.truncate(limit);
        let got: Vec<i64> = r.rows.iter().map(|x| x[0].as_i64().unwrap()).collect();
        let want: Vec<i64> = expected.iter().map(|x| x.1).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn correlated_subquery_matches_join_free_reference(rows in rows_strategy()) {
        let db = build_db(&rows);
        // For each row: the max b among rows with the same a.
        let r = db
            .query(
                "SELECT id, (SELECT MAX(u.b) FROM t u WHERE u.a = t.a) FROM t ORDER BY id",
            )
            .unwrap();
        for row in &r.rows {
            let id = row[0].as_i64().unwrap();
            let a = rows.iter().find(|x| x.0 == id).unwrap().1;
            let expected = rows
                .iter()
                .filter(|x| x.1 == a)
                .map(|x| x.2)
                .fold(f64::NEG_INFINITY, f64::max);
            prop_assert!((row[1].as_f64().unwrap() - expected).abs() < 1e-9);
        }
    }

    #[test]
    fn self_join_count_matches_reference(rows in rows_strategy()) {
        let db = build_db(&rows);
        let r = db
            .query("SELECT COUNT(*) FROM t x JOIN t y ON x.a = y.a")
            .unwrap();
        let mut count = 0i64;
        for p in &rows {
            for q in &rows {
                if p.1 == q.1 {
                    count += 1;
                }
            }
        }
        prop_assert_eq!(r.rows[0][0].as_i64().unwrap(), count);
    }

    #[test]
    fn delete_then_count_is_consistent(rows in rows_strategy(), k in -60i64..60) {
        let mut db = build_db(&rows);
        let deleted = db.execute(&format!("DELETE FROM t WHERE a < {k}")).unwrap().affected;
        let remaining = db.query("SELECT COUNT(*) FROM t").unwrap().rows[0][0]
            .as_i64()
            .unwrap();
        prop_assert_eq!(deleted as usize + remaining as usize, rows.len());
        let expected_deleted = rows.iter().filter(|x| x.1 < k).count() as u64;
        prop_assert_eq!(deleted, expected_deleted);
    }
}
