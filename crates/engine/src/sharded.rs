//! The sharded session: N independent engine shards, one WAL + snapshot
//! pair per shard.
//!
//! ```text
//!                      ┌─ shard-000 ─ engine ─ wal.log + snapshot.bin
//!  events ─▶ router ───┼─ shard-001 ─ engine ─ wal.log + snapshot.bin
//!            (affine   ├─ …
//!             by run)  └─ shard-N-1 ─ engine ─ wal.log + snapshot.bin
//!                             │
//!                 reports() = merge of per-shard maps
//! ```
//!
//! ## Routing: run affinity, version locality
//!
//! Every event is routed by its [`RunKey`] — a run's whole stream lands in
//! exactly one shard, so per-shard WALs need no cross-shard ordering and
//! recover independently. The *shard choice* for a new run hashes its
//! [`online::VersionTag`] with the same splitmix64 finalizer the in-process
//! [`online::IngestPipeline`] uses ([`online::pipeline::shard_of`]): all
//! runs of one program version co-locate. That version affinity is what
//! makes shard-local analysis **globally exact** — the §4.2 data
//! dependencies of the standard suite (min-PE reference run, ranking
//! basis, `SublinearSpeedup`'s cross-run comparison) never cross a version
//! boundary, so each shard's reports are bit-identical to what an
//! unsharded session over the same events would produce (enforced by the
//! equivalence proptest in `tests/sharded.rs`).
//!
//! ## Recovery
//!
//! Opening a sharded durable session recovers every shard **in parallel**
//! from its own WAL + snapshot pair, then rebuilds the run→shard affinity
//! map from the recovered shard stores. A torn tail in one shard's log is
//! that shard's problem alone: the other shards recover their full
//! history untouched.

use crate::error::EngineError;
use crate::{AnalysisEngine, RecoverableState};
use cosy::AnalysisReport;
use online::pipeline::shard_of;
use online::{
    DurableConfig, DurableSession, IncrementalStats, OnlineSession, RecoveryError, RecoveryStats,
    RunKey, SessionConfig, SessionStats, TraceEvent,
};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Configuration of a sharded durable session.
#[derive(Debug, Clone)]
pub struct ShardedConfig {
    /// Number of independent shards (≥ 1), each with its own WAL +
    /// snapshot pair.
    pub shards: usize,
    /// The per-shard durable configuration (session, fsync policy,
    /// checkpoint cadence).
    pub durable: DurableConfig,
}

impl Default for ShardedConfig {
    fn default() -> Self {
        ShardedConfig {
            shards: 4,
            durable: DurableConfig::default(),
        }
    }
}

/// The directory of shard `index` inside a sharded session directory.
pub fn shard_dir(dir: &Path, index: usize) -> PathBuf {
    dir.join(format!("shard-{index:03}"))
}

/// N independent engine shards behind one [`AnalysisEngine`] surface.
///
/// Generic over the shard engine: `ShardedSession<DurableSession>` is the
/// shard-per-WAL deployment shape; `ShardedSession<OnlineSession>` shards
/// a purely in-memory session (useful for scaling ingest on one node
/// without durability).
pub struct ShardedSession<E> {
    shards: Vec<E>,
    /// Run → shard affinity. The shard of a run is *chosen* by hashing its
    /// version tag at `RunStarted` (version locality, see module docs) and
    /// is *sticky* for the run's remaining events. Rebuilt from the shard
    /// stores on recovery.
    routes: Mutex<HashMap<RunKey, usize>>,
}

impl<E> ShardedSession<E> {
    /// Assemble a sharded session from pre-built shards (the builder and
    /// the `open_*` constructors are the usual entry points).
    pub fn from_shards(shards: Vec<E>) -> Self {
        assert!(!shards.is_empty(), "a sharded session needs >= 1 shard");
        ShardedSession {
            shards,
            routes: Mutex::new(HashMap::new()),
        }
    }

    /// The shard engines, in shard order.
    pub fn shards(&self) -> &[E] {
        &self.shards
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard the run's events are (or would be) handled by.
    pub fn shard_of_run(&self, run: RunKey) -> Option<usize> {
        self.routes
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&run)
            .copied()
    }

    /// Partition a batch into per-shard sub-batches, preserving relative
    /// order, updating run affinity as `RunStarted` events appear.
    fn partition(&self, events: &[TraceEvent]) -> Vec<Vec<TraceEvent>> {
        let mut routes = self.routes.lock().unwrap_or_else(|e| e.into_inner());
        let n = self.shards.len();
        let mut groups: Vec<Vec<TraceEvent>> = vec![Vec::new(); n];
        for event in events {
            let run = event.run_key();
            let shard = match routes.get(&run) {
                Some(s) => *s,
                None => {
                    let s = match event {
                        // Version affinity: all runs of one version land
                        // on one shard, keeping shard-local analysis
                        // globally exact.
                        TraceEvent::RunStarted { version, .. } => shard_of(version.0, n),
                        // An event for a run nobody started: route by the
                        // run key — the shard rejects it (UnknownRun)
                        // exactly like an unsharded session would.
                        _ => shard_of(run.0, n),
                    };
                    if matches!(event, TraceEvent::RunStarted { .. }) {
                        routes.insert(run, s);
                    }
                    s
                }
            };
            groups[shard].push(event.clone());
        }
        groups
    }

    /// Run `f` for each listed shard index — the one fan-out/fan-in used
    /// by ingest, flush and checkpoint. A single listed index runs inline
    /// (no thread spawn); more fan out over scoped threads. Unlisted
    /// shards get `None`.
    fn par_map_at<T, F>(&self, indices: &[usize], f: F) -> Vec<Option<T>>
    where
        E: Sync,
        T: Send,
        F: Fn(usize, &E) -> T + Sync,
    {
        let mut results: Vec<Option<T>> = (0..self.shards.len()).map(|_| None).collect();
        match indices {
            [] => {}
            &[i] => results[i] = Some(f(i, &self.shards[i])),
            _ => {
                std::thread::scope(|scope| {
                    for (i, slot) in results.iter_mut().enumerate() {
                        if !indices.contains(&i) {
                            continue;
                        }
                        let f = &f;
                        let shard = &self.shards[i];
                        scope.spawn(move || *slot = Some(f(i, shard)));
                    }
                });
            }
        }
        results
    }

    /// [`Self::par_map_at`] over every shard.
    fn par_map<T, F>(&self, f: F) -> Vec<T>
    where
        E: Sync,
        T: Send,
        F: Fn(usize, &E) -> T + Sync,
    {
        let all: Vec<usize> = (0..self.shards.len()).collect();
        self.par_map_at(&all, f)
            .into_iter()
            .map(|slot| slot.expect("shard task ran"))
            .collect()
    }
}

impl ShardedSession<OnlineSession> {
    /// A purely in-memory sharded session: N [`OnlineSession`]s sharing
    /// one configuration.
    pub fn in_memory(shards: usize, config: SessionConfig) -> Self {
        let shards = (0..shards.max(1))
            .map(|_| OnlineSession::new(config.clone()))
            .collect();
        ShardedSession::from_shards(shards)
    }
}

impl ShardedSession<DurableSession> {
    /// Open (or create) a sharded durable session under `dir`: shard `i`
    /// lives in `dir/shard-00i` with its own WAL + snapshot pair. Every
    /// shard recovers **in parallel**; the per-shard [`RecoveryStats`] are
    /// returned in shard order.
    ///
    /// The shard layout is part of the session's identity: reopening an
    /// existing directory with a different shard count — or a directory
    /// holding *unsharded* durable state — would strand runs on shards
    /// the router no longer picks, so both are refused as
    /// [`RecoveryError::Incompatible`].
    pub fn open(
        dir: impl Into<PathBuf>,
        config: ShardedConfig,
    ) -> Result<(Self, Vec<RecoveryStats>), RecoveryError> {
        let dir = dir.into();
        let shards = config.shards.max(1);
        std::fs::create_dir_all(&dir)?;
        // Refuse a layout change on existing state: an unsharded session's
        // files directly in `dir`, or a different shard count.
        if dir.join(online::durable::WAL_FILE).exists()
            || dir.join(online::durable::SNAPSHOT_FILE).exists()
        {
            return Err(RecoveryError::Incompatible {
                path: dir,
                detail: "directory holds an unsharded durable session — \
                         opening it sharded would ignore its history"
                    .to_string(),
            });
        }
        let existing: Vec<PathBuf> = (0..)
            .map(|i| shard_dir(&dir, i))
            .take_while(|d| d.exists())
            .collect();
        if !existing.is_empty() && existing.len() != shards {
            return Err(RecoveryError::Incompatible {
                path: dir,
                detail: format!(
                    "directory holds {} shard(s) but {} were requested — \
                     resharding an existing session is not supported",
                    existing.len(),
                    shards
                ),
            });
        }

        // Recover every shard in parallel: each reads only its own WAL +
        // snapshot pair, so there is nothing to coordinate.
        let mut slots: Vec<Option<Result<(DurableSession, RecoveryStats), RecoveryError>>> =
            (0..shards).map(|_| None).collect();
        std::thread::scope(|scope| {
            for (i, slot) in slots.iter_mut().enumerate() {
                let shard_path = shard_dir(&dir, i);
                let config = config.durable.clone();
                scope.spawn(move || {
                    *slot = Some(DurableSession::open(shard_path, config).map(|s| {
                        let recovery = s.recovery().clone();
                        (s, recovery)
                    }));
                });
            }
        });

        let mut engines = Vec::with_capacity(shards);
        let mut stats = Vec::with_capacity(shards);
        for slot in slots {
            let (engine, recovery) = slot.expect("shard recovery ran")?;
            engines.push(engine);
            stats.push(recovery);
        }

        let session = ShardedSession::from_shards(engines);
        // Rebuild run affinity from the recovered shard stores; new runs
        // of already-known versions re-derive the same shard from the
        // deterministic version hash.
        {
            let mut routes = session.routes.lock().unwrap_or_else(|e| e.into_inner());
            for (i, shard) in session.shards.iter().enumerate() {
                for key in shard.session().run_keys() {
                    routes.insert(key, i);
                }
            }
        }
        Ok((session, stats))
    }

    /// Sum of the per-shard WAL lengths (bytes since the last checkpoint).
    pub fn wal_len(&self) -> u64 {
        self.shards.iter().map(|s| s.wal_len()).sum()
    }
}

impl<E: AnalysisEngine> AnalysisEngine for ShardedSession<E> {
    /// Partition the batch by run affinity and apply every non-empty
    /// sub-batch **in parallel** (per-shard WAL appends and store updates
    /// proceed concurrently); a batch that lands on one shard runs inline
    /// with no thread spawn.
    ///
    /// Contract nuance vs an unsharded session: on multiple rejections
    /// the error returned is the first failing shard's first rejection
    /// *in shard order* — which rejection that is can differ from the
    /// unsharded session's stream-order pick. The rejected-event *count*
    /// (`stats().events_rejected`) is identical either way.
    fn ingest_batch(&self, events: &[TraceEvent]) -> Result<usize, EngineError> {
        let groups = self.partition(events);
        let active: Vec<usize> = groups
            .iter()
            .enumerate()
            .filter(|(_, g)| !g.is_empty())
            .map(|(i, _)| i)
            .collect();
        let results = self.par_map_at(&active, |i, shard| shard.ingest_batch(&groups[i]));
        let mut applied = 0usize;
        let mut failure = None;
        for result in results.into_iter().flatten() {
            match result {
                Ok(n) => applied += n,
                Err(e) => {
                    failure.get_or_insert(e);
                }
            }
        }
        match failure {
            Some(e) => Err(e),
            None => Ok(applied),
        }
    }

    /// Flush every shard in parallel; the merged update set is sorted by
    /// run key.
    fn flush(&self) -> Result<Vec<RunKey>, EngineError> {
        let mut updated = Vec::new();
        for result in self.par_map(|_, shard| shard.flush()) {
            updated.extend(result?);
        }
        updated.sort();
        Ok(updated)
    }

    fn report(&self, run: RunKey) -> Option<AnalysisReport> {
        match self.shard_of_run(run) {
            Some(i) => self.shards[i].report(run),
            None => self.shards.iter().find_map(|s| s.report(run)),
        }
    }

    fn reports(&self) -> HashMap<RunKey, AnalysisReport> {
        // Run keys are disjoint across shards (affine routing): a plain
        // merge is exact.
        let mut out = HashMap::new();
        for shard in &self.shards {
            out.extend(shard.reports());
        }
        out
    }

    fn stats(&self) -> SessionStats {
        let mut total = SessionStats::default();
        for shard in &self.shards {
            // Exhaustive destructuring (no `..`): adding a counter to
            // either stats struct must fail to compile here rather than
            // silently report 0 for sharded engines.
            let SessionStats {
                events_applied,
                events_rejected,
                events_replayed,
                flushes,
                runs_finished,
                incremental:
                    IncrementalStats {
                        flushes: incremental_flushes,
                        runs_reevaluated,
                        full_reevaluations,
                        instances_evaluated,
                    },
            } = shard.stats();
            total.events_applied += events_applied;
            total.events_rejected += events_rejected;
            total.events_replayed += events_replayed;
            total.flushes += flushes;
            total.runs_finished += runs_finished;
            total.incremental.flushes += incremental_flushes;
            total.incremental.runs_reevaluated += runs_reevaluated;
            total.incremental.full_reevaluations += full_reevaluations;
            total.incremental.instances_evaluated += instances_evaluated;
        }
        total
    }

    /// Merge every shard's snapshot (counters and histogram buckets add,
    /// associatively — see `obs::MetricsSnapshot::merge`) and record the
    /// fan-in width as `kojak_engine_shards`.
    fn metrics(&self) -> obs::MetricsSnapshot {
        let mut out = obs::MetricsSnapshot::default();
        for shard in &self.shards {
            out.merge(&shard.metrics());
        }
        out.push_gauge("kojak_engine_shards", self.shards.len() as u64);
        out
    }

    fn recoverable_state(&self) -> RecoverableState {
        let mut dirs = Vec::new();
        for shard in &self.shards {
            match shard.recoverable_state() {
                RecoverableState::Durable { dir } => dirs.push(dir),
                RecoverableState::Sharded { mut shard_dirs } => dirs.append(&mut shard_dirs),
                RecoverableState::Ephemeral => {}
            }
        }
        if dirs.is_empty() {
            RecoverableState::Ephemeral
        } else {
            RecoverableState::Sharded { shard_dirs: dirs }
        }
    }

    fn checkpoint(&self) -> Result<(), EngineError> {
        for result in self.par_map(|_, shard| shard.checkpoint()) {
            result?;
        }
        Ok(())
    }
}
