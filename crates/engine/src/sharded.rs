//! The sharded session: N independent engine shards, one WAL + snapshot
//! pair per shard.
//!
//! ```text
//!                      ┌─ shard-000 ─ engine ─ wal.log + snapshot.bin
//!  events ─▶ router ───┼─ shard-001 ─ engine ─ wal.log + snapshot.bin
//!            (affine   ├─ …
//!             by run)  └─ shard-N-1 ─ engine ─ wal.log + snapshot.bin
//!                             │
//!                 reports() = merge of per-shard maps
//! ```
//!
//! ## Routing: run affinity, version locality
//!
//! Every event is routed by its [`RunKey`] — a run's whole stream lands in
//! exactly one shard, so per-shard WALs need no cross-shard ordering and
//! recover independently. The *shard choice* for a new run hashes its
//! [`online::VersionTag`] with the same splitmix64 finalizer the in-process
//! [`online::IngestPipeline`] uses ([`online::pipeline::shard_of`]): all
//! runs of one program version co-locate. That version affinity is what
//! makes shard-local analysis **globally exact** — the §4.2 data
//! dependencies of the standard suite (min-PE reference run, ranking
//! basis, `SublinearSpeedup`'s cross-run comparison) never cross a version
//! boundary, so each shard's reports are bit-identical to what an
//! unsharded session over the same events would produce (enforced by the
//! equivalence proptest in `tests/sharded.rs`).
//!
//! ## Recovery
//!
//! Opening a sharded durable session recovers every shard **in parallel**
//! from its own WAL + snapshot pair, then rebuilds the run→shard affinity
//! map from the recovered shard stores. A torn tail in one shard's log is
//! that shard's problem alone: the other shards recover their full
//! history untouched.
//!
//! ## Quarantine: graceful degradation instead of poisoning
//!
//! A shard whose recovery, ingest or flush fails **wholesale** does not
//! poison the session. It is *quarantined* with a typed
//! [`QuarantineReason`]; events routed to it while quarantined are
//! *parked* in arrival order (accepted, held in memory, volatile until
//! reintegration), and the merged `reports()`/`stats()`/`metrics()`
//! surfaces return the healthy shards' partial results —
//! [`ShardedSession::degraded_state`] says exactly which shards are out,
//! why, and how many events are parked.
//!
//! [`ShardedSession::reintegrate`] drives a quarantined shard back to
//! consistency: reopen from its WAL + snapshot if the engine was lost at
//! recovery, replay the parked backlog, flush, and restore the shard's
//! run routes. Exactly-once across the quarantine boundary rests on the
//! WAL's append atomicity (a failed `append_batch` leaves *no frame* of
//! the batch in the log), so a parked batch can always be replayed
//! without double-logging.
//!
//! Two recovery failures stay **hard errors** at open, never quarantine:
//! [`RecoveryError::CorruptSnapshot`] (the snapshot's history exists
//! nowhere else) and [`RecoveryError::Incompatible`] (layout or format
//! refusal — resharding and binary downgrades must stay loud).

use crate::error::EngineError;
use crate::{AnalysisEngine, RecoverableState};
use cosy::AnalysisReport;
use online::pipeline::shard_of;
use online::{
    DurableConfig, DurableSession, IncrementalStats, OnlineSession, RecoveryError, RecoveryStats,
    RunKey, SessionConfig, SessionStats, TraceEvent,
};
use std::collections::HashMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard};

/// Configuration of a sharded durable session.
#[derive(Debug, Clone)]
pub struct ShardedConfig {
    /// Number of independent shards (≥ 1), each with its own WAL +
    /// snapshot pair.
    pub shards: usize,
    /// The per-shard durable configuration (session, fsync policy,
    /// checkpoint cadence).
    pub durable: DurableConfig,
}

impl Default for ShardedConfig {
    fn default() -> Self {
        ShardedConfig {
            shards: 4,
            durable: DurableConfig::default(),
        }
    }
}

/// The directory of shard `index` inside a sharded session directory.
pub fn shard_dir(dir: &Path, index: usize) -> PathBuf {
    dir.join(format!("shard-{index:03}"))
}

/// Why a shard is quarantined (cheap to clone: the underlying typed
/// errors are shared, not copied).
#[derive(Debug, Clone)]
pub enum QuarantineReason {
    /// The shard's recovery at open failed (I/O or recovery-flush error);
    /// the shard has no engine until [`ShardedSession::reintegrate`]
    /// reopens it from disk.
    Recovery(Arc<RecoveryError>),
    /// An ingest into the shard failed wholesale (e.g. a WAL append
    /// error): nothing of the failing batch reached the shard, and the
    /// batch was parked instead.
    Ingest(Arc<EngineError>),
    /// The shard's flush or checkpoint failed.
    Flush(Arc<EngineError>),
}

impl fmt::Display for QuarantineReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuarantineReason::Recovery(e) => write!(f, "recovery failed: {e}"),
            QuarantineReason::Ingest(e) => write!(f, "wholesale ingest failure: {e}"),
            QuarantineReason::Flush(e) => write!(f, "flush failed: {e}"),
        }
    }
}

/// One quarantined shard, as reported by
/// [`ShardedSession::degraded_state`].
#[derive(Debug, Clone)]
pub struct QuarantinedShard {
    /// The shard index.
    pub shard: usize,
    /// Why it was quarantined.
    pub reason: QuarantineReason,
    /// Events parked for this shard since quarantine (volatile — held in
    /// memory until reintegration replays them).
    pub parked_events: usize,
}

/// Which shards are quarantined, why, and how much is parked — the tag
/// qualifying every partial `reports()`/`stats()`/`metrics()` answer.
/// Empty means the session is whole.
#[derive(Debug, Clone, Default)]
pub struct DegradedState {
    /// The quarantined shards, in shard order.
    pub quarantined: Vec<QuarantinedShard>,
}

impl DegradedState {
    /// True when at least one shard is quarantined.
    pub fn is_degraded(&self) -> bool {
        !self.quarantined.is_empty()
    }

    /// Total events parked across all quarantined shards.
    pub fn parked_events(&self) -> usize {
        self.quarantined.iter().map(|q| q.parked_events).sum()
    }
}

impl fmt::Display for DegradedState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.quarantined.is_empty() {
            return write!(f, "healthy");
        }
        write!(f, "degraded:")?;
        for q in &self.quarantined {
            write!(
                f,
                " [shard {} — {} ({} parked)]",
                q.shard, q.reason, q.parked_events
            )?;
        }
        Ok(())
    }
}

/// A quarantined shard's book-keeping.
struct Quarantine<E> {
    /// The shard engine, when it survived quarantine (ingest/flush
    /// failures keep it; a failed recovery never produced one).
    engine: Option<E>,
    reason: QuarantineReason,
    /// Events routed here since quarantine, in arrival order.
    parked: Vec<TraceEvent>,
}

enum ShardState<E> {
    Healthy(E),
    Quarantined(Quarantine<E>),
}

/// Swap a healthy shard into quarantine, keeping its engine.
fn quarantine_in_place<E>(
    state: &mut ShardState<E>,
    reason: QuarantineReason,
    parked: Vec<TraceEvent>,
) {
    let prev = std::mem::replace(
        state,
        ShardState::Quarantined(Quarantine {
            engine: None,
            reason,
            parked,
        }),
    );
    if let (ShardState::Healthy(engine), ShardState::Quarantined(q)) = (prev, &mut *state) {
        q.engine = Some(engine);
    }
}

/// How a batch splits over the shards (see `ShardedSession::partition`).
enum Partitioned<'a> {
    /// Every event routed to one shard: the caller's slice is passed
    /// through untouched — the zero-copy hot path.
    Single(usize, &'a [TraceEvent]),
    /// A mixed batch, cloned into per-shard groups (idle shards empty).
    Groups(Vec<Vec<TraceEvent>>),
}

/// N independent engine shards behind one [`AnalysisEngine`] surface.
///
/// Generic over the shard engine: `ShardedSession<DurableSession>` is the
/// shard-per-WAL deployment shape; `ShardedSession<OnlineSession>` shards
/// a purely in-memory session (useful for scaling ingest on one node
/// without durability).
pub struct ShardedSession<E> {
    shards: Vec<Mutex<ShardState<E>>>,
    /// Run → shard affinity. The shard of a run is *chosen* by hashing its
    /// version tag at `RunStarted` (version locality, see module docs) and
    /// is *sticky* for the run's remaining events. Rebuilt from the shard
    /// stores on recovery.
    routes: Mutex<HashMap<RunKey, usize>>,
    /// Where and how the shards were opened — what
    /// [`ShardedSession::reintegrate`] needs to reopen a shard whose
    /// recovery failed. `None` for in-memory and `from_shards` sessions.
    durable_ctx: Option<(PathBuf, DurableConfig)>,
}

impl<E> ShardedSession<E> {
    /// Assemble a sharded session from pre-built shards (the builder and
    /// the `open_*` constructors are the usual entry points).
    pub fn from_shards(shards: Vec<E>) -> Self {
        assert!(!shards.is_empty(), "a sharded session needs >= 1 shard");
        ShardedSession {
            shards: shards
                .into_iter()
                .map(|e| Mutex::new(ShardState::Healthy(e)))
                .collect(),
            routes: Mutex::new(HashMap::new()),
            durable_ctx: None,
        }
    }

    fn state(&self, index: usize) -> MutexGuard<'_, ShardState<E>> {
        self.shards[index].lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Run `f` against shard `index`'s engine. `None` when the index is
    /// out of range or the shard is quarantined (its engine, if any, is
    /// behind on parked events — partial answers come from healthy shards
    /// only).
    pub fn with_shard<T>(&self, index: usize, f: impl FnOnce(&E) -> T) -> Option<T> {
        let guard = self
            .shards
            .get(index)?
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        match &*guard {
            ShardState::Healthy(engine) => Some(f(engine)),
            ShardState::Quarantined(_) => None,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard the run's events are (or would be) handled by.
    pub fn shard_of_run(&self, run: RunKey) -> Option<usize> {
        self.routes
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&run)
            .copied()
    }

    /// Which shards are quarantined, why, and how many events each has
    /// parked. Empty (`!is_degraded()`) when the session is whole.
    pub fn degraded_state(&self) -> DegradedState {
        let mut out = DegradedState::default();
        for i in 0..self.shards.len() {
            if let ShardState::Quarantined(q) = &*self.state(i) {
                out.quarantined.push(QuarantinedShard {
                    shard: i,
                    reason: q.reason.clone(),
                    parked_events: q.parked.len(),
                });
            }
        }
        out
    }

    /// Partition a batch into per-shard sub-batches, preserving relative
    /// order, updating run affinity as `RunStarted` events appear.
    ///
    /// The hot path is allocation-conscious: one pass resolves every
    /// event's route (a single `routes` lock for the whole batch) into a
    /// flat shard-index array; a batch that lands entirely on one shard —
    /// always at one shard, and common for run-affine producer batches —
    /// is returned as a zero-copy borrow of the caller's slice, and only
    /// genuinely mixed batches clone, into groups allocated at their
    /// exact final size.
    fn partition<'a>(&self, events: &'a [TraceEvent]) -> Partitioned<'a> {
        let n = self.shards.len();
        let mut routes = self.routes.lock().unwrap_or_else(|e| e.into_inner());
        let mut shard_ids: Vec<u32> = Vec::with_capacity(events.len());
        let mut counts = vec![0usize; n];
        for event in events {
            let run = event.run_key();
            let shard = match routes.get(&run) {
                Some(s) => *s,
                None => {
                    let s = match event {
                        // Version affinity: all runs of one version land
                        // on one shard, keeping shard-local analysis
                        // globally exact.
                        TraceEvent::RunStarted { version, .. } => shard_of(version.0, n),
                        // An event for a run nobody started: route by the
                        // run key — the shard rejects it (UnknownRun)
                        // exactly like an unsharded session would.
                        _ => shard_of(run.0, n),
                    };
                    if matches!(event, TraceEvent::RunStarted { .. }) {
                        routes.insert(run, s);
                    }
                    s
                }
            };
            shard_ids.push(shard as u32);
            counts[shard] += 1;
        }
        drop(routes);

        if let Some(shard) = counts.iter().position(|&c| c == events.len()) {
            if !events.is_empty() {
                return Partitioned::Single(shard, events);
            }
        }
        let mut groups: Vec<Vec<TraceEvent>> =
            counts.iter().map(|&c| Vec::with_capacity(c)).collect();
        for (event, &shard) in events.iter().zip(&shard_ids) {
            groups[shard as usize].push(event.clone());
        }
        Partitioned::Groups(groups)
    }

    /// Run `f` for each listed shard index — the one fan-out/fan-in used
    /// by ingest, flush and checkpoint. A single listed index runs inline
    /// (no thread spawn); more fan out over scoped threads. Unlisted
    /// shards get `None`.
    fn fan_out<T, F>(&self, indices: &[usize], f: F) -> Vec<Option<T>>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
        E: Send,
    {
        let mut results: Vec<Option<T>> = (0..self.shards.len()).map(|_| None).collect();
        match indices {
            [] => {}
            &[i] => results[i] = Some(f(i)),
            _ => {
                std::thread::scope(|scope| {
                    for (i, slot) in results.iter_mut().enumerate() {
                        if !indices.contains(&i) {
                            continue;
                        }
                        let f = &f;
                        scope.spawn(move || *slot = Some(f(i)));
                    }
                });
            }
        }
        results
    }
}

impl ShardedSession<OnlineSession> {
    /// A purely in-memory sharded session: N [`OnlineSession`]s sharing
    /// one configuration.
    pub fn in_memory(shards: usize, config: SessionConfig) -> Self {
        let shards = (0..shards.max(1))
            .map(|_| OnlineSession::new(config.clone()))
            .collect();
        ShardedSession::from_shards(shards)
    }
}

impl ShardedSession<DurableSession> {
    /// Open (or create) a sharded durable session under `dir`: shard `i`
    /// lives in `dir/shard-00i` with its own WAL + snapshot pair. Every
    /// shard recovers **in parallel**; the per-shard [`RecoveryStats`] are
    /// returned in shard order.
    ///
    /// The shard layout is part of the session's identity: reopening an
    /// existing directory with a different shard count — or a directory
    /// holding *unsharded* durable state — would strand runs on shards
    /// the router no longer picks, so both are refused as
    /// [`RecoveryError::Incompatible`]. A shard whose snapshot is corrupt
    /// refuses too ([`RecoveryError::CorruptSnapshot`] — its history
    /// exists nowhere else). Any *other* per-shard recovery failure
    /// (I/O, recovery flush) **quarantines that shard** instead of
    /// failing the open: the session comes up degraded (its
    /// [`RecoveryStats`] entry is empty, check
    /// [`ShardedSession::degraded_state`]) and
    /// [`ShardedSession::reintegrate`] retries the recovery later.
    pub fn open(
        dir: impl Into<PathBuf>,
        config: ShardedConfig,
    ) -> Result<(Self, Vec<RecoveryStats>), RecoveryError> {
        let dir = dir.into();
        let shards = config.shards.max(1);
        std::fs::create_dir_all(&dir)?;
        // Refuse a layout change on existing state: an unsharded session's
        // files directly in `dir`, or a different shard count.
        if dir.join(online::durable::WAL_FILE).exists()
            || dir.join(online::durable::SNAPSHOT_FILE).exists()
        {
            return Err(RecoveryError::Incompatible {
                path: dir,
                detail: "directory holds an unsharded durable session — \
                         opening it sharded would ignore its history"
                    .to_string(),
            });
        }
        let existing: Vec<PathBuf> = (0..)
            .map(|i| shard_dir(&dir, i))
            .take_while(|d| d.exists())
            .collect();
        if !existing.is_empty() && existing.len() != shards {
            return Err(RecoveryError::Incompatible {
                path: dir,
                detail: format!(
                    "directory holds {} shard(s) but {} were requested — \
                     resharding an existing session is not supported",
                    existing.len(),
                    shards
                ),
            });
        }

        // Recover every shard in parallel: each reads only its own WAL +
        // snapshot pair, so there is nothing to coordinate.
        let mut slots: Vec<Option<Result<(DurableSession, RecoveryStats), RecoveryError>>> =
            (0..shards).map(|_| None).collect();
        std::thread::scope(|scope| {
            for (i, slot) in slots.iter_mut().enumerate() {
                let shard_path = shard_dir(&dir, i);
                let config = config.durable.clone();
                scope.spawn(move || {
                    *slot = Some(DurableSession::open(shard_path, config).map(|s| {
                        let recovery = s.recovery().clone();
                        (s, recovery)
                    }));
                });
            }
        });

        let mut states = Vec::with_capacity(shards);
        let mut stats = Vec::with_capacity(shards);
        for slot in slots {
            match slot.expect("shard recovery ran") {
                Ok((engine, recovery)) => {
                    states.push(ShardState::Healthy(engine));
                    stats.push(recovery);
                }
                // The two refusals stay hard: a corrupt snapshot's history
                // exists nowhere else, and incompatible state means a
                // layout/format decision the operator must make.
                Err(e @ RecoveryError::CorruptSnapshot { .. })
                | Err(e @ RecoveryError::Incompatible { .. }) => return Err(e),
                // Everything else (I/O, recovery flush) degrades: the
                // shard opens quarantined and `reintegrate` retries.
                Err(e) => {
                    states.push(ShardState::Quarantined(Quarantine {
                        engine: None,
                        reason: QuarantineReason::Recovery(Arc::new(e)),
                        parked: Vec::new(),
                    }));
                    stats.push(RecoveryStats::default());
                }
            }
        }

        let session = ShardedSession {
            shards: states.into_iter().map(Mutex::new).collect(),
            routes: Mutex::new(HashMap::new()),
            durable_ctx: Some((dir, config.durable)),
        };
        // Rebuild run affinity from the recovered shard stores; new runs
        // of already-known versions re-derive the same shard from the
        // deterministic version hash. A quarantined shard contributes no
        // routes until it reintegrates — its *new* runs still reach it
        // (the version hash is deterministic) and are parked, but
        // continuation events of its pre-crash runs are unroutable and
        // reject as `UnknownRun` until reintegration restores the routes.
        {
            let mut routes = session.routes.lock().unwrap_or_else(|e| e.into_inner());
            for i in 0..session.shards.len() {
                if let ShardState::Healthy(shard) = &*session.state(i) {
                    for key in shard.session().run_keys() {
                        routes.insert(key, i);
                    }
                }
            }
        }
        Ok((session, stats))
    }

    /// Sum of the per-shard WAL lengths (bytes since the last checkpoint).
    /// Quarantined shards whose engine survived are included; a shard
    /// lost at recovery contributes 0.
    pub fn wal_len(&self) -> u64 {
        (0..self.shards.len())
            .map(|i| match &*self.state(i) {
                ShardState::Healthy(e) => e.wal_len(),
                ShardState::Quarantined(q) => q.engine.as_ref().map_or(0, |e| e.wal_len()),
            })
            .sum()
    }

    /// Per-shard recovery statistics, in shard order. A shard quarantined
    /// at open (recovery failed) reports the empty stats; after a
    /// successful [`Self::reintegrate`] its entry reflects the reopened
    /// recovery.
    pub fn shard_recoveries(&self) -> Vec<RecoveryStats> {
        (0..self.shards.len())
            .map(|i| match &*self.state(i) {
                ShardState::Healthy(e) => e.recovery().clone(),
                ShardState::Quarantined(q) => q
                    .engine
                    .as_ref()
                    .map(|e| e.recovery().clone())
                    .unwrap_or_default(),
            })
            .collect()
    }

    /// Drive a quarantined shard back to consistency; healthy shards are
    /// a no-op (`Ok(0)`). Returns the number of parked events replayed.
    ///
    /// The shard's WAL is the source of truth: if the engine was lost at
    /// open, the shard is reopened from its WAL + snapshot pair first
    /// (replaying everything it had durably accepted). The parked backlog
    /// is then ingested in arrival order — exactly-once, because a
    /// wholesale ingest failure is only ever raised after the WAL rolled
    /// the failed batch out of the log, so nothing parked was ever
    /// applied. A final flush folds the replay into live reports and the
    /// shard's run routes are restored.
    ///
    /// On error the shard **stays quarantined** with its original reason
    /// and nothing is lost: a failed reopen keeps the backlog parked, a
    /// wholesale replay failure re-parks the backlog, and a failed final
    /// flush leaves the (already WAL-durable) replayed events awaiting the
    /// next attempt. `reintegrate` may simply be called again.
    pub fn reintegrate(&self, shard: usize) -> Result<usize, EngineError> {
        if shard >= self.shards.len() {
            return Err(EngineError::Config {
                detail: format!("shard {shard} out of range ({} shards)", self.shards.len()),
            });
        }
        let mut state = self.state(shard);
        let q = match &mut *state {
            ShardState::Healthy(_) => return Ok(0),
            ShardState::Quarantined(q) => q,
        };

        if q.engine.is_none() {
            let (dir, config) = self
                .durable_ctx
                .as_ref()
                .ok_or_else(|| EngineError::Config {
                    detail: format!(
                        "shard {shard} has no engine and the session was not \
                     opened from a directory — cannot reopen it"
                    ),
                })?;
            match DurableSession::open(shard_dir(dir, shard), config.clone()) {
                Ok(engine) => q.engine = Some(engine),
                Err(e) => return Err(EngineError::Recovery(e)),
            }
        }
        let engine = q.engine.as_ref().expect("engine ensured above");

        let parked = std::mem::take(&mut q.parked);
        let drained = parked.len();
        if !parked.is_empty() {
            match AnalysisEngine::ingest_batch(engine, &parked) {
                Ok(_) => {}
                Err(e) if e.failed_wholesale() => {
                    // Nothing of the backlog reached the shard (WAL append
                    // atomicity): re-park it and stay quarantined.
                    q.parked = parked;
                    return Err(e);
                }
                // Per-event rejections are final and deterministic — the
                // rest of the backlog applied, exactly as it would have
                // without the quarantine detour.
                Err(_) => {}
            }
        }
        AnalysisEngine::flush(engine)?;

        let engine = q.engine.take().expect("engine ensured above");
        let keys = engine.session().run_keys();
        *state = ShardState::Healthy(engine);
        drop(state);

        let mut routes = self.routes.lock().unwrap_or_else(|e| e.into_inner());
        for key in keys {
            routes.insert(key, shard);
        }
        Ok(drained)
    }

    /// [`Self::reintegrate`] every quarantined shard, stopping at the
    /// first failure. Returns the total parked events replayed.
    pub fn reintegrate_all(&self) -> Result<usize, EngineError> {
        let mut drained = 0;
        for i in 0..self.shards.len() {
            drained += self.reintegrate(i)?;
        }
        Ok(drained)
    }
}

impl<E: AnalysisEngine> ShardedSession<E> {
    /// Ingest one shard's sub-batch under its lock, parking on (or
    /// entering) quarantine. `Ok` counts events the shard took
    /// responsibility for — applied, or parked for reintegration.
    fn ingest_shard(&self, index: usize, group: &[TraceEvent]) -> Result<usize, EngineError> {
        let mut state = self.state(index);
        let result = match &mut *state {
            ShardState::Quarantined(q) => {
                q.parked.extend_from_slice(group);
                return Ok(group.len());
            }
            ShardState::Healthy(engine) => engine.ingest_batch(group),
        };
        match result {
            Ok(n) => Ok(n),
            Err(e) if e.failed_wholesale() => {
                // The shard applied nothing of this group (a failed WAL
                // append rolls the whole batch out of the log), so parking
                // the group and degrading keeps exactly-once intact.
                quarantine_in_place(
                    &mut state,
                    QuarantineReason::Ingest(Arc::new(e)),
                    group.to_vec(),
                );
                Ok(group.len())
            }
            // A per-event rejection is final: the engine counted and
            // skipped it, the rest of the group applied.
            Err(e) => Err(e),
        }
    }
}

impl<E: AnalysisEngine> AnalysisEngine for ShardedSession<E> {
    /// Partition the batch by run affinity and apply every non-empty
    /// sub-batch **in parallel** (per-shard WAL appends and store updates
    /// proceed concurrently); a batch that lands on one shard runs inline
    /// with no thread spawn.
    ///
    /// Contract nuance vs an unsharded session: on multiple rejections
    /// the error returned is the first failing shard's first rejection
    /// *in shard order* — which rejection that is can differ from the
    /// unsharded session's stream-order pick. The rejected-event *count*
    /// (`stats().events_rejected`) is identical either way.
    ///
    /// Degradation nuance: a sub-batch whose shard fails **wholesale** is
    /// parked (the shard quarantines, see module docs) and counts as
    /// accepted here — the error surfaces through
    /// [`ShardedSession::degraded_state`] instead of poisoning the batch.
    fn ingest_batch(&self, events: &[TraceEvent]) -> Result<usize, EngineError> {
        let groups = match self.partition(events) {
            // Whole batch, one shard: feed the caller's slice straight
            // through — no clone, no per-shard Vec, no thread spawn.
            Partitioned::Single(shard, slice) => {
                return self.ingest_shard(shard, slice);
            }
            Partitioned::Groups(groups) => groups,
        };
        let active: Vec<usize> = groups
            .iter()
            .enumerate()
            .filter(|(_, g)| !g.is_empty())
            .map(|(i, _)| i)
            .collect();
        let results = self.fan_out(&active, |i| self.ingest_shard(i, &groups[i]));
        let mut accepted = 0usize;
        let mut failure = None;
        for result in results.into_iter().flatten() {
            match result {
                Ok(n) => accepted += n,
                Err(e) => {
                    failure.get_or_insert(e);
                }
            }
        }
        match failure {
            Some(e) => Err(e),
            None => Ok(accepted),
        }
    }

    /// Flush every shard in parallel; the merged update set is sorted by
    /// run key. A shard whose flush fails is **quarantined** (typed
    /// reason, see [`ShardedSession::degraded_state`]) rather than
    /// failing the whole flush — the healthy shards' updates are still
    /// returned.
    fn flush(&self) -> Result<Vec<RunKey>, EngineError> {
        let all: Vec<usize> = (0..self.shards.len()).collect();
        let results = self.fan_out(&all, |i| {
            let mut state = self.state(i);
            let result = match &mut *state {
                ShardState::Quarantined(_) => return Vec::new(),
                ShardState::Healthy(engine) => engine.flush(),
            };
            match result {
                Ok(updated) => updated,
                Err(e) => {
                    quarantine_in_place(
                        &mut state,
                        QuarantineReason::Flush(Arc::new(e)),
                        Vec::new(),
                    );
                    Vec::new()
                }
            }
        });
        let mut updated = Vec::new();
        for result in results.into_iter().flatten() {
            updated.extend(result);
        }
        updated.sort();
        Ok(updated)
    }

    fn report(&self, run: RunKey) -> Option<AnalysisReport> {
        match self.shard_of_run(run) {
            Some(i) => self.with_shard(i, |s| s.report(run)).flatten(),
            None => {
                (0..self.shards.len()).find_map(|i| self.with_shard(i, |s| s.report(run)).flatten())
            }
        }
    }

    /// Merged reports of the **healthy** shards (run keys are disjoint
    /// across shards, so the merge is exact). When shards are
    /// quarantined this is a partial answer — tag it with
    /// [`ShardedSession::degraded_state`].
    fn reports(&self) -> HashMap<RunKey, AnalysisReport> {
        let mut out = HashMap::new();
        for i in 0..self.shards.len() {
            if let Some(shard_reports) = self.with_shard(i, |s| s.reports()) {
                out.extend(shard_reports);
            }
        }
        out
    }

    /// Summed stats of the **healthy** shards (partial while degraded —
    /// see [`ShardedSession::degraded_state`]).
    fn stats(&self) -> SessionStats {
        let mut total = SessionStats::default();
        for i in 0..self.shards.len() {
            let Some(stats) = self.with_shard(i, |s| s.stats()) else {
                continue;
            };
            // Exhaustive destructuring (no `..`): adding a counter to
            // either stats struct must fail to compile here rather than
            // silently report 0 for sharded engines.
            let SessionStats {
                events_applied,
                events_rejected,
                events_replayed,
                flushes,
                runs_finished,
                incremental:
                    IncrementalStats {
                        flushes: incremental_flushes,
                        runs_reevaluated,
                        full_reevaluations,
                        instances_evaluated,
                    },
            } = stats;
            total.events_applied += events_applied;
            total.events_rejected += events_rejected;
            total.events_replayed += events_replayed;
            total.flushes += flushes;
            total.runs_finished += runs_finished;
            total.incremental.flushes += incremental_flushes;
            total.incremental.runs_reevaluated += runs_reevaluated;
            total.incremental.full_reevaluations += full_reevaluations;
            total.incremental.instances_evaluated += instances_evaluated;
        }
        total
    }

    /// Merge every healthy shard's snapshot (counters and histogram
    /// buckets add, associatively — see `obs::MetricsSnapshot::merge`)
    /// and record the fan-in width as `kojak_engine_shards`, plus the
    /// degradation gauges `kojak_engine_shards_quarantined` and
    /// `kojak_engine_events_parked` (both 0 when whole).
    fn metrics(&self) -> obs::MetricsSnapshot {
        let mut out = obs::MetricsSnapshot::default();
        for i in 0..self.shards.len() {
            if let Some(snapshot) = self.with_shard(i, |s| s.metrics()) {
                out.merge(&snapshot);
            }
        }
        let degraded = self.degraded_state();
        out.push_gauge("kojak_engine_shards", self.shards.len() as u64);
        out.push_gauge(
            "kojak_engine_shards_quarantined",
            degraded.quarantined.len() as u64,
        );
        out.push_gauge(
            "kojak_engine_events_parked",
            degraded.parked_events() as u64,
        );
        out
    }

    fn recoverable_state(&self) -> RecoverableState {
        let mut dirs = Vec::new();
        for i in 0..self.shards.len() {
            let state = match &*self.state(i) {
                ShardState::Healthy(e) => Some(e.recoverable_state()),
                ShardState::Quarantined(q) => match &q.engine {
                    Some(e) => Some(e.recoverable_state()),
                    // The engine was lost at recovery, but its durable
                    // state is still on disk where we opened it.
                    None => self
                        .durable_ctx
                        .as_ref()
                        .map(|(dir, _)| RecoverableState::Durable {
                            dir: shard_dir(dir, i),
                        }),
                },
            };
            match state {
                Some(RecoverableState::Durable { dir }) => dirs.push(dir),
                Some(RecoverableState::Sharded { mut shard_dirs }) => dirs.append(&mut shard_dirs),
                Some(RecoverableState::Ephemeral) | None => {}
            }
        }
        if dirs.is_empty() {
            RecoverableState::Ephemeral
        } else {
            RecoverableState::Sharded { shard_dirs: dirs }
        }
    }

    /// Checkpoint every shard in parallel; like [`Self::flush`], a shard
    /// whose checkpoint fails quarantines instead of failing the call.
    fn checkpoint(&self) -> Result<(), EngineError> {
        let all: Vec<usize> = (0..self.shards.len()).collect();
        self.fan_out(&all, |i| {
            let mut state = self.state(i);
            let result = match &mut *state {
                ShardState::Quarantined(_) => return,
                ShardState::Healthy(engine) => engine.checkpoint(),
            };
            if let Err(e) = result {
                quarantine_in_place(&mut state, QuarantineReason::Flush(Arc::new(e)), Vec::new());
            }
        });
        Ok(())
    }
}
