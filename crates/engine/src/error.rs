//! The unified engine error hierarchy.
//!
//! Every [`crate::AnalysisEngine`] operation fails with one
//! [`EngineError`], whose variants wrap the precise typed error of the
//! layer that failed — construction ([`SpecError`]), ingestion
//! ([`IngestError`]), evaluation/checkpointing ([`FlushError`]) or
//! restart ([`RecoveryError`]). `From` impls exist for all four, so code
//! written against one concrete engine lifts to the trait with `?` alone.

use cosy::{AnalysisError, SpecError};
use online::{FlushError, IngestError, RecoveryError};
use std::fmt;

/// Any failure of an [`crate::AnalysisEngine`].
#[derive(Debug)]
pub enum EngineError {
    /// The [`crate::EngineBuilder`] was asked for an impossible
    /// configuration (e.g. a durable batch engine).
    Config {
        /// What was wrong with the requested configuration.
        detail: String,
    },
    /// The builder's [`lint::LintGate::Deny`] gate rejected the suite:
    /// the static-analysis pass reported findings the configuration does
    /// not tolerate. The rejection carries the findings and their full
    /// caret-snippet rendering.
    Lint(lint::GateRejection),
    /// Constructing the engine (or binding its suite to a store) failed.
    Spec(SpecError),
    /// An event was rejected at ingestion.
    Ingest(IngestError),
    /// A flush — property evaluation, pipeline drain, or the checkpoint
    /// riding on it — failed.
    Flush(FlushError),
    /// Recovering durable state at open failed.
    Recovery(RecoveryError),
}

impl EngineError {
    /// True when an ingest error means the batch (from the failing event
    /// on) did not reach the engine at all — retrying it later could
    /// succeed, so it must not be acknowledged or dropped. Per-event
    /// rejections, by contrast, are final: the engine counted and skipped
    /// them, the rest of the batch applied, and a resend would only
    /// reject again. The sharded session quarantines a shard on a
    /// wholesale failure; the net server refuses to acknowledge one.
    pub fn failed_wholesale(&self) -> bool {
        !matches!(
            self,
            EngineError::Ingest(
                IngestError::UnknownRun(_)
                    | IngestError::DuplicateRun(_)
                    | IngestError::UnknownFunction { .. }
                    | IngestError::UnknownRegion { .. }
                    | IngestError::UnknownParent { .. }
            )
        )
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Config { detail } => write!(f, "invalid engine configuration: {detail}"),
            EngineError::Lint(e) => write!(f, "{e}"),
            EngineError::Spec(e) => write!(f, "spec error: {e}"),
            EngineError::Ingest(e) => write!(f, "ingest error: {e}"),
            EngineError::Flush(e) => write!(f, "flush error: {e}"),
            EngineError::Recovery(e) => write!(f, "recovery error: {e}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Config { .. } => None,
            EngineError::Lint(e) => Some(e),
            EngineError::Spec(e) => Some(e),
            EngineError::Ingest(e) => Some(e),
            EngineError::Flush(e) => Some(e),
            EngineError::Recovery(e) => Some(e),
        }
    }
}

impl From<SpecError> for EngineError {
    fn from(e: SpecError) -> Self {
        EngineError::Spec(e)
    }
}

impl From<lint::GateRejection> for EngineError {
    fn from(e: lint::GateRejection) -> Self {
        EngineError::Lint(e)
    }
}

impl From<AnalysisError> for EngineError {
    fn from(e: AnalysisError) -> Self {
        EngineError::Flush(FlushError::from(e))
    }
}

impl From<IngestError> for EngineError {
    fn from(e: IngestError) -> Self {
        EngineError::Ingest(e)
    }
}

impl From<FlushError> for EngineError {
    fn from(e: FlushError) -> Self {
        EngineError::Flush(e)
    }
}

impl From<RecoveryError> for EngineError {
    fn from(e: RecoveryError) -> Self {
        EngineError::Recovery(e)
    }
}
