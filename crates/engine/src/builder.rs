//! The one construction path: spec → backend → durability → sharding.
//!
//! ```
//! use engine::{AnalysisEngine, EngineBuilder};
//!
//! // In-memory incremental session (the default):
//! let session = EngineBuilder::new().build_online();
//!
//! // Sharded durable deployment — one WAL + snapshot pair per shard:
//! let dir = std::env::temp_dir().join(format!("kojak-doc-{}", std::process::id()));
//! let engine = EngineBuilder::new()
//!     .durable(&dir)
//!     .shards(4)
//!     .snapshot_every_flushes(8)
//!     .build()
//!     .unwrap();
//! assert!(!engine.recoverable_state().is_ephemeral());
//! # drop(engine);
//! # std::fs::remove_dir_all(&dir).ok();
//! ```

use crate::batch::BatchEngine;
use crate::error::EngineError;
use crate::sharded::{ShardedConfig, ShardedSession};
use crate::{AnalysisEngine, RecoverableState};
use asl_core::check::CheckedSpec;
use cosy::{AnalysisReport, Backend, ProblemThreshold};
use online::{
    DurableConfig, DurableSession, FsyncPolicy, OnlineSession, RecoveryStats, RunKey,
    SessionConfig, SessionStats, TraceEvent,
};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

/// Fluent configuration of any [`AnalysisEngine`].
///
/// The stages mirror the decisions an operator makes, in order: *what* to
/// evaluate ([`spec`](EngineBuilder::spec),
/// [`threshold`](EngineBuilder::threshold)), *how*
/// ([`backend`](EngineBuilder::backend), [`batch`](EngineBuilder::batch)
/// vs incremental), *what survives a kill*
/// ([`durable`](EngineBuilder::durable),
/// [`fsync`](EngineBuilder::fsync),
/// [`snapshot_every_flushes`](EngineBuilder::snapshot_every_flushes)),
/// and *how wide* ([`shards`](EngineBuilder::shards)).
#[derive(Debug, Clone, Default)]
pub struct EngineBuilder {
    spec: Option<Arc<CheckedSpec>>,
    threshold: ProblemThreshold,
    backend: Backend,
    auto_flush_events: usize,
    batch: bool,
    durable_dir: Option<PathBuf>,
    fsync: FsyncPolicy,
    snapshot_every_flushes: Option<u32>,
    shards: usize,
    faults: faults::Faults,
    lint_gate: lint::LintGate,
}

impl EngineBuilder {
    /// Start from the defaults: standard suite, compiled backend, 5%
    /// problem threshold, incremental evaluation, in-memory, unsharded.
    pub fn new() -> Self {
        EngineBuilder::default()
    }

    /// Evaluate a custom pre-checked suite instead of the standard one.
    pub fn spec(mut self, spec: Arc<CheckedSpec>) -> Self {
        self.spec = Some(spec);
        self
    }

    /// Severity threshold above which a property is a performance problem.
    pub fn threshold(mut self, threshold: ProblemThreshold) -> Self {
        self.threshold = threshold;
        self
    }

    /// Evaluation backend (compiled IR by default; the interpreter and the
    /// SQL translations remain available as cross-checking oracles).
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Flush automatically once this many events are pending (0 — the
    /// default — leaves flushing to the caller/pipeline).
    pub fn auto_flush_events(mut self, events: usize) -> Self {
        self.auto_flush_events = events;
        self
    }

    /// Use the batch engine: every flush re-runs the full analyzer pass
    /// instead of incremental re-evaluation. Incompatible with
    /// [`durable`](EngineBuilder::durable) and
    /// [`shards`](EngineBuilder::shards).
    pub fn batch(mut self) -> Self {
        self.batch = true;
        self
    }

    /// Persist the engine in `dir`: write-ahead log + snapshots, recovered
    /// on reopen. With [`shards`](EngineBuilder::shards), each shard gets
    /// its own WAL + snapshot pair under `dir/shard-00i`.
    pub fn durable(mut self, dir: impl Into<PathBuf>) -> Self {
        self.durable_dir = Some(dir.into());
        self
    }

    /// When WAL appends reach stable storage (durable engines only).
    pub fn fsync(mut self, fsync: FsyncPolicy) -> Self {
        self.fsync = fsync;
        self
    }

    /// Checkpoint cadence: write a snapshot (truncating the log) every
    /// this many successful flushes; 0 disables automatic checkpoints
    /// (durable engines only).
    pub fn snapshot_every_flushes(mut self, flushes: u32) -> Self {
        self.snapshot_every_flushes = Some(flushes);
        self
    }

    /// Spread the engine over `n` independent shards routed by the
    /// run-key/version hash; `reports()` merges the per-shard maps.
    pub fn shards(mut self, n: usize) -> Self {
        self.shards = n;
        self
    }

    /// Gate every file operation of the built engine through a fault
    /// seam (durable engines only). The default handle is inert; chaos
    /// tests pass one built from a seeded [`faults::FaultPlan`].
    pub fn fault_seam(mut self, faults: faults::Faults) -> Self {
        self.faults = faults;
        self
    }

    /// Static-analysis strictness applied when the engine is built (the
    /// default is [`lint::LintGate::Warn`]): `Deny` makes
    /// [`build`](EngineBuilder::build) fail with [`EngineError::Lint`]
    /// when the suite has any active lint finding, `Warn` accepts the
    /// suite (inspect findings via
    /// [`lint_check`](EngineBuilder::lint_check)), `Off` skips the pass.
    pub fn lint(mut self, gate: lint::LintGate) -> Self {
        self.lint_gate = gate;
        self
    }

    /// Run the configured lint gate over the suite this builder would
    /// load and return the full report, or the gate rejection as an
    /// [`EngineError::Lint`].
    ///
    /// A custom [`spec`](EngineBuilder::spec) is rendered through the
    /// canonical pretty-printer for directive scanning and snippet
    /// rendering; comments — including `cosy-lint: allow(...)`
    /// directives — do not survive that round trip, so callers that rely
    /// on allow directives in a custom suite should lint the original
    /// source themselves (`lint::lint`) and set
    /// [`lint`](EngineBuilder::lint) to `Off`.
    pub fn lint_check(&self) -> Result<lint::LintReport, EngineError> {
        let (spec, source) = match &self.spec {
            Some(s) => (s.clone(), asl_core::pretty::print_spec(&s.spec)),
            None => (
                Arc::new(cosy::suite::standard_suite()),
                cosy::suite::standard_suite_source(),
            ),
        };
        let report = lint::lint(&spec, &source);
        self.lint_gate.evaluate(&report, &source)?;
        Ok(report)
    }

    fn session_config(&self) -> SessionConfig {
        SessionConfig {
            threshold: self.threshold,
            auto_flush_events: self.auto_flush_events,
            backend: self.backend,
            spec: self.spec.clone(),
        }
    }

    fn durable_config(&self) -> DurableConfig {
        let defaults = DurableConfig::default();
        DurableConfig {
            session: self.session_config(),
            fsync: self.fsync,
            snapshot_every_flushes: self
                .snapshot_every_flushes
                .unwrap_or(defaults.snapshot_every_flushes),
            faults: self.faults.clone(),
        }
    }

    /// Shortcut for the common case: an in-memory incremental session.
    pub fn build_online(&self) -> OnlineSession {
        OnlineSession::new(self.session_config())
    }

    /// Build the configured engine.
    pub fn build(self) -> Result<Engine, EngineError> {
        if self.lint_gate != lint::LintGate::Off {
            self.lint_check()?;
        }
        let config = |detail: &str| EngineError::Config {
            detail: detail.to_string(),
        };
        if self.batch {
            if self.durable_dir.is_some() {
                return Err(config(
                    "the batch engine cannot be durable (it rebuilds \
                                   its analysis from the store; stream into a durable \
                                   incremental engine instead)",
                ));
            }
            if self.shards > 1 {
                return Err(config("the batch engine cannot be sharded"));
            }
            let spec = self
                .spec
                .unwrap_or_else(|| Arc::new(cosy::suite::standard_suite()));
            return Ok(Engine::Batch(BatchEngine::with_config(
                spec,
                self.backend,
                self.threshold,
            )));
        }
        match (self.durable_dir.clone(), self.shards > 1) {
            (None, false) => Ok(Engine::Online(self.build_online())),
            (None, true) => Ok(Engine::ShardedOnline(ShardedSession::in_memory(
                self.shards,
                self.session_config(),
            ))),
            (Some(dir), false) => {
                // The mirror of `ShardedSession::open`'s layout check:
                // opening sharded state unsharded would silently ignore
                // every shard's history.
                if crate::sharded::shard_dir(&dir, 0).exists() {
                    return Err(EngineError::Recovery(online::RecoveryError::Incompatible {
                        path: dir,
                        detail: "directory holds a sharded durable session — \
                                 reopen it with .shards(n) matching its layout"
                            .to_string(),
                    }));
                }
                Ok(Engine::Durable(DurableSession::open(
                    dir,
                    self.durable_config(),
                )?))
            }
            (Some(dir), true) => {
                let (session, _recovery) = ShardedSession::open(
                    dir,
                    ShardedConfig {
                        shards: self.shards,
                        durable: self.durable_config(),
                    },
                )?;
                Ok(Engine::ShardedDurable(session))
            }
        }
    }
}

/// An engine built by [`EngineBuilder::build`]: one concrete type per
/// configuration corner, all behind the same [`AnalysisEngine`] surface.
pub enum Engine {
    /// Full re-analysis per flush.
    Batch(BatchEngine),
    /// In-memory incremental session.
    Online(OnlineSession),
    /// Incremental session with one WAL + snapshot pair.
    Durable(DurableSession),
    /// N in-memory shards.
    ShardedOnline(ShardedSession<OnlineSession>),
    /// N durable shards, one WAL + snapshot pair each.
    ShardedDurable(ShardedSession<DurableSession>),
}

impl Engine {
    fn as_engine(&self) -> &dyn AnalysisEngine {
        match self {
            Engine::Batch(e) => e,
            Engine::Online(e) => e,
            Engine::Durable(e) => e,
            Engine::ShardedOnline(e) => e,
            Engine::ShardedDurable(e) => e,
        }
    }

    /// Per-shard recovery statistics, when this engine recovered durable
    /// state at open (`None` for ephemeral engines; one entry per shard,
    /// a single entry for an unsharded durable session). A shard
    /// quarantined at open reports empty stats — see
    /// [`ShardedSession::degraded_state`].
    pub fn recovery(&self) -> Option<Vec<RecoveryStats>> {
        match self {
            Engine::Durable(e) => Some(vec![e.recovery().clone()]),
            Engine::ShardedDurable(e) => Some(e.shard_recoveries()),
            _ => None,
        }
    }
}

impl AnalysisEngine for Engine {
    fn ingest_batch(&self, events: &[TraceEvent]) -> Result<usize, EngineError> {
        self.as_engine().ingest_batch(events)
    }

    fn flush(&self) -> Result<Vec<RunKey>, EngineError> {
        self.as_engine().flush()
    }

    fn report(&self, run: RunKey) -> Option<AnalysisReport> {
        self.as_engine().report(run)
    }

    fn reports(&self) -> HashMap<RunKey, AnalysisReport> {
        self.as_engine().reports()
    }

    fn stats(&self) -> SessionStats {
        self.as_engine().stats()
    }

    fn metrics(&self) -> obs::MetricsSnapshot {
        self.as_engine().metrics()
    }

    fn recoverable_state(&self) -> RecoverableState {
        self.as_engine().recoverable_state()
    }

    fn checkpoint(&self) -> Result<(), EngineError> {
        self.as_engine().checkpoint()
    }
}
