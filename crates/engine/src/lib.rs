//! # `engine` — one typed API over every analysis engine
//!
//! The paper's pitch is that one declarative COSY/ASL specification
//! drives *every* analysis tool uniformly. This crate makes the
//! reproduction honor that: the [`AnalysisEngine`] trait is the single
//! typed surface — ingest, flush, report, stats, recoverable state —
//! implemented by every way of running the suite:
//!
//! | engine | evaluation | survives a kill |
//! |---|---|---|
//! | [`BatchEngine`] | full re-analysis per flush ([`cosy::Analyzer`]) | no |
//! | [`online::OnlineSession`] | incremental (dirty contexts only) | no |
//! | [`online::DurableSession`] | incremental | one WAL + snapshot pair |
//! | [`ShardedSession`] | incremental, N shards in parallel | one WAL + snapshot pair **per shard** |
//!
//! [`EngineBuilder`] is the one construction path (spec → backend →
//! durability → sharding), and [`EngineError`] the one failure hierarchy
//! ([`cosy::SpecError`] / [`online::IngestError`] / [`online::FlushError`]
//! / [`online::RecoveryError`]) — no stringly-typed result anywhere on
//! the public surface (CI-enforced by `scripts/deny_stringly_errors.sh`).
//!
//! ```
//! use engine::{AnalysisEngine, EngineBuilder};
//! use apprentice_sim::{archetypes, simulate_program, MachineModel};
//! use online::replay::{replay_run_key, replay_store};
//!
//! let mut store = perfdata::Store::new();
//! let version = simulate_program(
//!     &mut store,
//!     &archetypes::particle_mc(7),
//!     &MachineModel::t3e_900(),
//!     &[1, 4, 16],
//! );
//!
//! let session = EngineBuilder::new().build_online();
//! session.ingest_batch(&replay_store(&store)).unwrap();
//! session.flush().unwrap();
//!
//! let run = store.versions[version.index()].runs[2];
//! let report = session.report(replay_run_key(run)).unwrap();
//! assert!(report.bottleneck().is_some());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod batch;
pub mod builder;
pub mod error;
pub mod sharded;

use cosy::AnalysisReport;
use online::{DurableSession, OnlineSession, RunKey, SessionStats, TraceEvent};
use std::collections::HashMap;
use std::path::PathBuf;

pub use batch::BatchEngine;
pub use builder::{Engine, EngineBuilder};
pub use error::EngineError;
pub use lint::{GateRejection, LintGate, LintReport};
pub use sharded::{
    DegradedState, QuarantineReason, QuarantinedShard, ShardedConfig, ShardedSession,
};

/// Where an engine's state would come back from after a process kill.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoverableState {
    /// Purely in-memory: nothing survives the process.
    Ephemeral,
    /// One write-ahead log + snapshot pair in this session directory.
    Durable {
        /// The session directory holding `wal.log` + `snapshot.bin`.
        dir: PathBuf,
    },
    /// One WAL + snapshot pair per shard, recovered independently (and in
    /// parallel) at open.
    Sharded {
        /// The per-shard session directories, in shard order.
        shard_dirs: Vec<PathBuf>,
    },
}

impl RecoverableState {
    /// True when a kill would lose state.
    pub fn is_ephemeral(&self) -> bool {
        matches!(self, RecoverableState::Ephemeral)
    }
}

/// The one typed surface of every analysis engine.
///
/// All engines share the same contract: events go in
/// ([`ingest_batch`](AnalysisEngine::ingest_batch)), a
/// [`flush`](AnalysisEngine::flush) turns everything pending into
/// refreshed, rank-stable [`AnalysisReport`]s, and
/// [`reports`](AnalysisEngine::reports) serves them keyed by the
/// producer's [`RunKey`]. Engines differ only in *how* they evaluate
/// (batch vs incremental) and *what survives a kill*
/// ([`recoverable_state`](AnalysisEngine::recoverable_state)).
pub trait AnalysisEngine: Send + Sync {
    /// Ingest a batch of events. Events are isolated: a rejected event is
    /// counted and skipped, the rest of the batch still applies. Returns
    /// the number of applied events, or the first rejection (after the
    /// whole batch was attempted). When several events are rejected,
    /// which one is "first" is engine-defined — stream order for single
    /// sessions, shard order for sharded ones; the rejected *count*
    /// ([`SessionStats::events_rejected`]) is exact everywhere.
    fn ingest_batch(&self, events: &[TraceEvent]) -> Result<usize, EngineError>;

    /// Ingest one event.
    fn ingest(&self, event: &TraceEvent) -> Result<(), EngineError> {
        self.ingest_batch(std::slice::from_ref(event)).map(|_| ())
    }

    /// Analyze everything pending. Returns the producer keys of the runs
    /// whose live report changed, in ascending key order.
    fn flush(&self) -> Result<Vec<RunKey>, EngineError>;

    /// The live report of a run (as of the last flush).
    fn report(&self, run: RunKey) -> Option<AnalysisReport>;

    /// All live reports keyed by producer run key.
    fn reports(&self) -> HashMap<RunKey, AnalysisReport>;

    /// Aggregate observability counters (summed over shards for a sharded
    /// engine).
    fn stats(&self) -> SessionStats;

    /// One composable metric snapshot: the [`stats`](AnalysisEngine::stats)
    /// counters plus whatever stage histograms the engine records
    /// (merged over shards for a sharded engine). The default is the
    /// stats-only view; engines with a live registry override it.
    /// Process-global metrics (the compiled-eval cache) are excluded —
    /// aggregators add them exactly once via `online::eval_cache_metrics`.
    fn metrics(&self) -> obs::MetricsSnapshot {
        use obs::MetricsSource;
        self.stats().metrics()
    }

    /// Where this engine's state would come back from after a kill.
    fn recoverable_state(&self) -> RecoverableState;

    /// Flush, then persist a recovery point (snapshot + truncated WAL).
    /// A no-op beyond the flush for engines whose
    /// [`recoverable_state`](AnalysisEngine::recoverable_state) is
    /// [`RecoverableState::Ephemeral`].
    fn checkpoint(&self) -> Result<(), EngineError>;
}

impl AnalysisEngine for OnlineSession {
    fn ingest_batch(&self, events: &[TraceEvent]) -> Result<usize, EngineError> {
        OnlineSession::ingest_batch(self, events).map_err(EngineError::from)
    }

    fn flush(&self) -> Result<Vec<RunKey>, EngineError> {
        let mut updated = OnlineSession::flush(self)?;
        updated.sort();
        Ok(updated)
    }

    fn report(&self, run: RunKey) -> Option<AnalysisReport> {
        OnlineSession::report(self, run)
    }

    fn reports(&self) -> HashMap<RunKey, AnalysisReport> {
        OnlineSession::reports(self)
    }

    fn stats(&self) -> SessionStats {
        OnlineSession::stats(self)
    }

    fn metrics(&self) -> obs::MetricsSnapshot {
        OnlineSession::metrics(self)
    }

    fn recoverable_state(&self) -> RecoverableState {
        RecoverableState::Ephemeral
    }

    fn checkpoint(&self) -> Result<(), EngineError> {
        OnlineSession::flush(self)?;
        Ok(())
    }
}

impl AnalysisEngine for DurableSession {
    fn ingest_batch(&self, events: &[TraceEvent]) -> Result<usize, EngineError> {
        DurableSession::ingest_batch(self, events).map_err(EngineError::from)
    }

    fn flush(&self) -> Result<Vec<RunKey>, EngineError> {
        let mut updated = DurableSession::flush(self)?;
        updated.sort();
        Ok(updated)
    }

    fn report(&self, run: RunKey) -> Option<AnalysisReport> {
        DurableSession::report(self, run)
    }

    fn reports(&self) -> HashMap<RunKey, AnalysisReport> {
        DurableSession::reports(self)
    }

    fn stats(&self) -> SessionStats {
        DurableSession::stats(self)
    }

    fn metrics(&self) -> obs::MetricsSnapshot {
        DurableSession::metrics(self)
    }

    fn recoverable_state(&self) -> RecoverableState {
        RecoverableState::Durable {
            dir: self.dir().to_path_buf(),
        }
    }

    fn checkpoint(&self) -> Result<(), EngineError> {
        DurableSession::checkpoint(self).map_err(EngineError::from)
    }
}
