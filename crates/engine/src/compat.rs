//! Deprecated construction shims — one PR of grace.
//!
//! Before the engine API redesign each entry point had its own
//! construction dance and stringly-typed failures. The old constructors
//! live on here, `#[deprecated]`, with their original `Result<_, String>`
//! shapes, so downstreams migrate on their own schedule within this
//! release; they are removed in the next PR (see the API-stability note
//! in `ROADMAP.md`). New code goes through [`crate::EngineBuilder`] and
//! the typed [`crate::EngineError`] hierarchy.

#![allow(deprecated)]

use cosy::{AnalysisReport, Backend, ProblemThreshold};
use online::{DurableConfig, DurableSession, OnlineSession, RecoveryError, SessionConfig};
use perfdata::{Store, TestRunId, VersionId};
use std::path::PathBuf;

/// The pre-redesign direct session constructor.
#[deprecated(
    since = "0.1.0",
    note = "construct through engine::EngineBuilder::new().build_online()"
)]
pub fn online_session(config: SessionConfig) -> OnlineSession {
    OnlineSession::new(config)
}

/// The pre-redesign durable-session constructor.
#[deprecated(
    since = "0.1.0",
    note = "construct through engine::EngineBuilder::new().durable(dir).build()"
)]
pub fn durable_session(
    dir: impl Into<PathBuf>,
    config: DurableConfig,
) -> Result<DurableSession, RecoveryError> {
    DurableSession::open(dir, config)
}

/// The pre-redesign one-shot batch analysis with its stringly-typed
/// failure shape (`cosy::Analyzer` now reports typed
/// [`cosy::SpecError`]/[`cosy::AnalysisError`]).
#[deprecated(
    since = "0.1.0",
    note = "use cosy::Analyzer with the typed errors, or stream into \
            engine::EngineBuilder::new().batch().build()"
)]
pub fn analyze_run(
    store: &Store,
    version: VersionId,
    run: TestRunId,
    backend: Backend,
    threshold: ProblemThreshold,
) -> Result<AnalysisReport, String> {
    let analyzer = cosy::Analyzer::new(store, version).map_err(|e| e.to_string())?;
    analyzer
        .analyze(run, backend, threshold)
        .map_err(|e| e.to_string())
}
