//! The batch engine: the paper's one-shot COSY workflow behind the
//! streaming API.
//!
//! [`BatchEngine`] accepts the same [`TraceEvent`] streams as the online
//! sessions (through the same [`StoreBuilder`] ingestion path), but every
//! [`flush`](crate::AnalysisEngine::flush) re-runs the **full**
//! [`cosy::Analyzer`] pass over every run of every version — no dirty
//! tracking, no held-entry cache. It is the reference the incremental
//! engines are equivalent to, and the right choice for one-shot analyses
//! where the store is built once and analyzed once.

use crate::error::EngineError;
use crate::{AnalysisEngine, RecoverableState};
use asl_core::check::CheckedSpec;
use cosy::{AnalysisReport, Analyzer, Backend, ProblemThreshold, SpecError};
use online::{IngestError, RunKey, SessionStats, StoreBuilder, StoreDelta, TraceEvent};
use perfdata::TestRunId;
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex, MutexGuard};

struct BatchInner {
    builder: StoreBuilder,
    pending: StoreDelta,
    finished: HashSet<TestRunId>,
    reports: HashMap<RunKey, AnalysisReport>,
    rejected: u64,
    flushes: u64,
    dirty: bool,
}

/// A batch analysis engine over a streamed-in store.
pub struct BatchEngine {
    spec: Arc<CheckedSpec>,
    backend: Backend,
    threshold: ProblemThreshold,
    inner: Mutex<BatchInner>,
}

impl BatchEngine {
    /// A batch engine with the standard suite and defaults.
    pub fn new() -> Self {
        Self::with_config(
            Arc::new(cosy::suite::standard_suite()),
            Backend::default(),
            ProblemThreshold::default(),
        )
    }

    /// A batch engine with an explicit suite, backend and threshold (the
    /// [`crate::EngineBuilder`] construction path).
    pub fn with_config(
        spec: Arc<CheckedSpec>,
        backend: Backend,
        threshold: ProblemThreshold,
    ) -> Self {
        BatchEngine {
            spec,
            backend,
            threshold,
            inner: Mutex::new(BatchInner {
                builder: StoreBuilder::new(),
                pending: StoreDelta::new(),
                finished: HashSet::new(),
                reports: HashMap::new(),
                rejected: 0,
                flushes: 0,
                dirty: false,
            }),
        }
    }

    fn lock(&self) -> MutexGuard<'_, BatchInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Ingest a batch (the shared [`StoreBuilder::apply_batch`] isolation
    /// contract of every engine).
    pub fn ingest_batch(&self, events: &[TraceEvent]) -> Result<usize, IngestError> {
        let mut inner = self.lock();
        let BatchInner {
            builder, pending, ..
        } = &mut *inner;
        let (applied, failure) = builder.apply_batch(events, pending);
        inner.rejected += (events.len() - applied) as u64;
        if applied > 0 {
            inner.dirty = true;
        }
        match failure {
            Some(e) => Err(e),
            None => Ok(applied),
        }
    }

    /// Re-analyze every run of every version from scratch. Returns the
    /// keys of runs whose report changed (ascending).
    pub fn flush(&self) -> Result<Vec<RunKey>, EngineError> {
        let mut inner = self.lock();
        let pending = std::mem::take(&mut inner.pending);
        inner.finished.extend(pending.finished_runs.iter().copied());
        if !inner.dirty && pending.finished_runs.is_empty() {
            return Ok(Vec::new());
        }

        let mut fresh: HashMap<RunKey, AnalysisReport> = HashMap::new();
        for (_, vid) in inner.builder.version_tags() {
            let analyzer =
                match Analyzer::with_spec(inner.builder.store(), vid, Arc::clone(&self.spec)) {
                    Ok(a) => a,
                    // No analyzable structure yet (no main region): the runs
                    // of this version simply have no report, exactly like an
                    // online session before the structure streams in.
                    Err(SpecError::NoMainRegion) => continue,
                    Err(e) => return Err(e.into()),
                };
            for &run in &inner.builder.store().versions[vid.index()].runs {
                let report = analyzer.analyze(run, self.backend, self.threshold)?;
                if let Some(key) = inner.builder.run_key_of(run) {
                    fresh.insert(key, report);
                }
            }
        }

        let mut updated: Vec<RunKey> = fresh
            .iter()
            .filter(|(k, r)| inner.reports.get(*k) != Some(*r))
            .map(|(k, _)| *k)
            .collect();
        updated.sort();
        inner.reports = fresh;
        inner.dirty = false;
        inner.flushes += 1;
        Ok(updated)
    }

    /// The live report of a run (as of the last flush).
    pub fn report(&self, run: RunKey) -> Option<AnalysisReport> {
        self.lock().reports.get(&run).cloned()
    }

    /// All reports keyed by producer run key.
    pub fn reports(&self) -> HashMap<RunKey, AnalysisReport> {
        self.lock().reports.clone()
    }

    /// Aggregate counters (the incremental block stays zero — this engine
    /// never evaluates incrementally).
    pub fn stats(&self) -> SessionStats {
        let inner = self.lock();
        SessionStats {
            events_applied: inner.builder.events_applied(),
            events_rejected: inner.rejected,
            events_replayed: 0,
            flushes: inner.flushes,
            runs_finished: inner.finished.len() as u64,
            incremental: Default::default(),
        }
    }
}

impl Default for BatchEngine {
    fn default() -> Self {
        BatchEngine::new()
    }
}

impl AnalysisEngine for BatchEngine {
    fn ingest_batch(&self, events: &[TraceEvent]) -> Result<usize, EngineError> {
        BatchEngine::ingest_batch(self, events).map_err(EngineError::from)
    }

    fn flush(&self) -> Result<Vec<RunKey>, EngineError> {
        BatchEngine::flush(self)
    }

    fn report(&self, run: RunKey) -> Option<AnalysisReport> {
        BatchEngine::report(self, run)
    }

    fn reports(&self) -> HashMap<RunKey, AnalysisReport> {
        BatchEngine::reports(self)
    }

    fn stats(&self) -> SessionStats {
        BatchEngine::stats(self)
    }

    fn recoverable_state(&self) -> RecoverableState {
        RecoverableState::Ephemeral
    }

    fn checkpoint(&self) -> Result<(), EngineError> {
        BatchEngine::flush(self).map(|_| ())
    }
}
