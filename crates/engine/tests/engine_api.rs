//! The unified engine surface: every engine the builder can produce
//! answers the same trait identically for the same stream, and errors
//! are typed end to end.

use apprentice_sim::{archetypes, simulate_program, MachineModel};
use engine::{AnalysisEngine, Engine, EngineBuilder, EngineError, RecoverableState};
use online::replay::{replay_run_key, replay_store};
use online::TraceEvent;
use perfdata::{Store, TestRunId};
use std::path::PathBuf;

struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(name: &str) -> ScratchDir {
        let dir = std::env::temp_dir().join(format!("kojak-engapi-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ScratchDir(dir)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn sim() -> (Store, TestRunId) {
    let mut store = Store::new();
    let version = simulate_program(
        &mut store,
        &archetypes::particle_mc(42),
        &MachineModel::t3e_900(),
        &[1, 4, 16],
    );
    let run = store.versions[version.index()].runs[2];
    (store, run)
}

/// One stream, five engines, identical reports (bit for bit: every engine
/// builds the same store arena from the same event order).
#[test]
fn every_engine_shape_agrees_on_the_same_stream() {
    let (store, run) = sim();
    let events = replay_store(&store);
    let durable_dir = ScratchDir::new("agree-durable");
    let sharded_dir = ScratchDir::new("agree-sharded");

    let engines: Vec<(&str, Engine)> = vec![
        ("batch", EngineBuilder::new().batch().build().unwrap()),
        ("online", EngineBuilder::new().build().unwrap()),
        (
            "durable",
            EngineBuilder::new()
                .durable(&durable_dir.0)
                .build()
                .unwrap(),
        ),
        (
            "sharded-online",
            EngineBuilder::new().shards(3).build().unwrap(),
        ),
        (
            "sharded-durable",
            EngineBuilder::new()
                .durable(&sharded_dir.0)
                .shards(3)
                .build()
                .unwrap(),
        ),
    ];

    let mut reports = Vec::new();
    for (name, engine) in &engines {
        let applied = engine
            .ingest_batch(&events)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(applied, events.len(), "{name}");
        engine.flush().unwrap_or_else(|e| panic!("{name}: {e}"));
        let report = engine
            .report(replay_run_key(run))
            .unwrap_or_else(|| panic!("{name}: missing report"));
        assert!(report.bottleneck().is_some(), "{name}");
        assert_eq!(engine.stats().events_applied, events.len() as u64, "{name}");
        reports.push((name, engine.reports()));
    }
    let (first_name, first) = &reports[0];
    for (name, other) in &reports[1..] {
        assert_eq!(first, other, "{first_name} vs {name}");
    }

    // Recoverable-state shapes match the configuration.
    assert!(engines[0].1.recoverable_state().is_ephemeral());
    assert!(engines[1].1.recoverable_state().is_ephemeral());
    assert!(matches!(
        engines[2].1.recoverable_state(),
        RecoverableState::Durable { .. }
    ));
    assert!(engines[3].1.recoverable_state().is_ephemeral());
    assert!(matches!(
        engines[4].1.recoverable_state(),
        RecoverableState::Sharded { ref shard_dirs } if shard_dirs.len() == 3
    ));
    assert!(engines[2].1.recovery().is_some());
    assert_eq!(engines[4].1.recovery().map(|r| r.len()), Some(3));
}

/// The trait is object-safe: heterogeneous engines behind one `dyn`.
#[test]
fn engines_work_as_trait_objects() {
    let (store, run) = sim();
    let events = replay_store(&store);
    let engines: Vec<Box<dyn AnalysisEngine>> = vec![
        Box::new(engine::BatchEngine::new()),
        Box::new(EngineBuilder::new().build_online()),
        Box::new(engine::ShardedSession::in_memory(2, Default::default())),
    ];
    for engine in &engines {
        engine.ingest_batch(&events).expect("ingest");
        engine.flush().expect("flush");
        assert!(engine.report(replay_run_key(run)).is_some());
    }
}

/// Impossible builder configurations fail typed, not stringly.
#[test]
fn impossible_configurations_are_typed_config_errors() {
    let dir = ScratchDir::new("cfg");
    match EngineBuilder::new().batch().durable(&dir.0).build() {
        Err(EngineError::Config { detail }) => assert!(detail.contains("durable")),
        other => panic!("expected Config error, got {:?}", other.err()),
    }
    match EngineBuilder::new().batch().shards(4).build() {
        Err(EngineError::Config { detail }) => assert!(detail.contains("sharded")),
        other => panic!("expected Config error, got {:?}", other.err()),
    }
}

/// Ingestion rejections surface as `EngineError::Ingest` with the precise
/// cause, uniformly across engines.
#[test]
fn rejections_are_typed_uniformly() {
    let orphan = TraceEvent::RunFinished {
        run: online::RunKey(404),
    };
    let engines: Vec<Box<dyn AnalysisEngine>> = vec![
        Box::new(engine::BatchEngine::new()),
        Box::new(EngineBuilder::new().build_online()),
        Box::new(engine::ShardedSession::in_memory(2, Default::default())),
    ];
    for engine in &engines {
        match engine.ingest(&orphan) {
            Err(EngineError::Ingest(online::IngestError::UnknownRun(k))) => {
                assert_eq!(k, online::RunKey(404))
            }
            other => panic!("expected typed UnknownRun, got {other:?}"),
        }
        assert_eq!(engine.stats().events_rejected, 1);
    }
}

/// The standard suite passes the strictest lint gate (its one accepted
/// pattern — the two-key `(Run, Type)` filters — carries an explicit
/// `cosy-lint: allow(...)` directive), while a dirty custom suite is
/// rejected by `Deny` and tolerated by `Warn`.
#[test]
fn lint_gate_denies_dirty_spec_and_passes_standard_suite() {
    // Standard suite: clean under Deny.
    let engine = EngineBuilder::new().lint(engine::LintGate::Deny).build();
    assert!(engine.is_ok(), "standard suite must pass the deny gate");

    // A spec with an unused constant and an isolated class.
    let dirty = asl_core::parse_and_check(
        "class TestRun { int NoPe; }\n\
         class Dead { int X; }\n\
         float Unused = 1.0;\n\
         PROPERTY P(TestRun t) {\n\
             CONDITION: t.NoPe > 0; CONFIDENCE: 1; SEVERITY: 1.0;\n\
         }",
    )
    .unwrap();
    let dirty = std::sync::Arc::new(dirty);

    match EngineBuilder::new()
        .spec(dirty.clone())
        .lint(engine::LintGate::Deny)
        .build()
    {
        Err(EngineError::Lint(rejection)) => {
            assert!(!rejection.findings.is_empty());
            assert!(rejection.rendered.contains("unused-constant"));
            assert!(rejection.rendered.contains("unused-type"));
        }
        other => panic!("expected lint rejection, got {:?}", other.err()),
    }

    // Warn (the default) surfaces the findings but builds the engine.
    let builder = EngineBuilder::new().spec(dirty);
    let report = builder.lint_check().expect("warn gate must pass");
    assert!(!report.is_clean());
    assert!(builder.build().is_ok());
}

/// Flow-proven findings are hard errors under `Deny`: a denominator the
/// abstract interpreter proves identically zero, and a comparison
/// between a time-valued and a count-valued expression.
#[test]
fn lint_gate_denies_flow_proven_findings() {
    let spec = asl_core::parse_and_check(
        "class TestRun { int NoPe; }\n\
         class TotalTiming { float Excl; }\n\
         PROPERTY Bad(TestRun t, TotalTiming tt) {\n\
             CONDITION: tt.Excl > t.NoPe;\n\
             CONFIDENCE: 1;\n\
             SEVERITY: 1.0 / (t.NoPe - t.NoPe);\n\
         }",
    )
    .unwrap();
    match EngineBuilder::new()
        .spec(std::sync::Arc::new(spec))
        .lint(engine::LintGate::Deny)
        .build()
    {
        Err(EngineError::Lint(rejection)) => {
            assert!(rejection.rendered.contains("proven-div-by-zero"));
            assert!(rejection.rendered.contains("unit-mismatch"));
        }
        other => panic!("expected lint rejection, got {:?}", other.err()),
    }
}
