//! Sharded-session correctness.
//!
//! * **Equivalence proptest** — for any event interleaving, chunking and
//!   shard count, the merged reports of a `ShardedSession` are
//!   **bit-identical** (plain `assert_eq!`, ids included) to a
//!   single-shard session over the same stream.
//! * **Partition exactness** — with many program versions spread over the
//!   shards, every shard's state is bit-identical to a plain session fed
//!   exactly that shard's subsequence: sharding is partitioning, nothing
//!   leaks between shards.
//! * **Kill/recovery** — a sharded durable session killed mid-stream
//!   recovers every shard from its own WAL + snapshot pair (in parallel)
//!   and converges to the same end state as a never-killed session; a
//!   torn WAL tail in one shard is that shard's problem alone (reusing
//!   the crash-harness shape of `crates/online/tests/crash_recovery.rs`).

use apprentice_sim::{archetypes, simulate_program, MachineModel, ProgramGenerator};
use cosy::AnalysisReport;
use engine::sharded::shard_dir;
use engine::{AnalysisEngine, RecoverableState, ShardedConfig, ShardedSession};
use online::pipeline::shard_of;
use online::replay::events_for_run;
use online::{DurableConfig, FsyncPolicy, OnlineSession, RunKey, SessionConfig, TraceEvent};
use perfdata::{Store, TestRunId};
use proptest::prelude::*;
use std::collections::HashMap;
use std::path::PathBuf;

/// A fresh scratch directory, removed on drop.
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(name: &str) -> ScratchDir {
        let dir = std::env::temp_dir().join(format!("kojak-sharded-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ScratchDir(dir)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Deterministically interleave per-run event streams (per-run order is
/// preserved — the only ordering producers guarantee).
fn interleave(mut streams: Vec<Vec<TraceEvent>>, seed: u64) -> Vec<TraceEvent> {
    for s in &mut streams {
        s.reverse(); // pop() from the back == front of the stream
    }
    let mut out = Vec::new();
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
    loop {
        let live: Vec<usize> = streams
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.is_empty())
            .map(|(i, _)| i)
            .collect();
        if live.is_empty() {
            return out;
        }
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let pick = live[(state >> 33) as usize % live.len()];
        out.push(streams[pick].pop().unwrap());
    }
}

fn per_run_streams(store: &Store) -> Vec<Vec<TraceEvent>> {
    (0..store.runs.len() as u32)
        .map(|r| events_for_run(store, TestRunId(r)))
        .collect()
}

/// A store with several program versions (so the version hash spreads
/// them over the shards).
fn multi_version_store() -> Store {
    let machine = MachineModel::t3e_900();
    let mut store = Store::new();
    simulate_program(&mut store, &archetypes::particle_mc(3), &machine, &[1, 4]);
    simulate_program(&mut store, &archetypes::stencil3d(5), &machine, &[1, 8]);
    simulate_program(&mut store, &archetypes::particle_mc(11), &machine, &[1, 2]);
    let gen = ProgramGenerator {
        seed: 17,
        functions: 2,
        max_depth: 3,
        max_fanout: 3,
        base_work: 0.01,
        comm_probability: 0.6,
    };
    simulate_program(&mut store, &gen.generate(), &machine, &[1, 4]);
    simulate_program(&mut store, &archetypes::stencil3d(23), &machine, &[2, 8]);
    store
}

/// Mirror of the sharded router: version-affine shard choice per run.
fn expected_partition(events: &[TraceEvent], shards: usize) -> Vec<Vec<TraceEvent>> {
    let mut groups = vec![Vec::new(); shards];
    let mut routes: HashMap<RunKey, usize> = HashMap::new();
    for event in events {
        let run = event.run_key();
        let shard = match routes.get(&run) {
            Some(s) => *s,
            None => match event {
                TraceEvent::RunStarted { version, .. } => {
                    let s = shard_of(version.0, shards);
                    routes.insert(run, s);
                    s
                }
                _ => shard_of(run.0, shards),
            },
        };
        groups[shard].push(event.clone());
    }
    groups
}

fn control_session(events: &[TraceEvent]) -> OnlineSession {
    let session = OnlineSession::new(SessionConfig::default());
    if !events.is_empty() {
        session.ingest_batch(events).expect("control ingest");
    }
    session.flush().expect("control flush");
    session
}

/// Id-free projection of a report (shard-local stores allocate their own
/// arena ids, so cross-sharding comparisons drop the raw context ids and
/// compare everything the ids stand for by name instead).
fn canonical(report: &AnalysisReport) -> impl PartialEq + std::fmt::Debug {
    (
        report.program.clone(),
        report.no_pe,
        report.reference_pe,
        report.basis_duration.to_bits(),
        report.total_cost.to_bits(),
        report.skipped,
        report
            .entries
            .iter()
            .map(|e| {
                (
                    e.rank,
                    e.property.clone(),
                    e.context.label.clone(),
                    e.severity.to_bits(),
                    e.confidence.to_bits(),
                    e.is_problem,
                )
            })
            .collect::<Vec<_>>(),
    )
}

fn configured_cases() -> ProptestConfig {
    let cases = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(6);
    ProptestConfig::with_cases(cases)
}

proptest! {
    #![proptest_config(configured_cases())]

    /// Satellite: batch≡sharded equivalence — for any interleaving of a
    /// version's event streams, any chunking and any shard count, the
    /// sharded session's merged reports are bit-identical to a
    /// single-shard session (ids included: one version's runs co-locate,
    /// so shard-local arenas match the unsharded ones exactly).
    #[test]
    fn sharded_reports_bit_identical_to_single_shard(
        seed in 0u64..10_000,
        functions in 1usize..4,
        pe in prop_oneof![Just(4u32), Just(8), Just(16)],
        shards in prop_oneof![Just(1usize), Just(2), Just(3), Just(8)],
        chunk in prop_oneof![Just(7usize), Just(64), Just(1024)],
    ) {
        let gen = ProgramGenerator {
            seed,
            functions,
            max_depth: 3,
            max_fanout: 3,
            base_work: 0.01,
            comm_probability: 0.6,
        };
        let mut store = Store::new();
        simulate_program(&mut store, &gen.generate(), &MachineModel::t3e_900(), &[1, pe]);
        let events = interleave(per_run_streams(&store), seed ^ 0xabcd);

        let sharded = ShardedSession::in_memory(shards, SessionConfig::default());
        let control = OnlineSession::new(SessionConfig::default());
        for batch in events.chunks(chunk) {
            let applied = AnalysisEngine::ingest_batch(&sharded, batch).expect("sharded ingest");
            prop_assert_eq!(applied, batch.len());
            control.ingest_batch(batch).expect("control ingest");
            // The changed-run sets of every flush agree, not just the end
            // state.
            let mut changed_control = control.flush().expect("control flush");
            changed_control.sort();
            let changed_sharded = AnalysisEngine::flush(&sharded).expect("sharded flush");
            prop_assert_eq!(changed_sharded, changed_control);
        }

        let merged = AnalysisEngine::reports(&sharded);
        let single = control.reports();
        prop_assert_eq!(&merged, &single, "merged reports differ");
        prop_assert_eq!(
            AnalysisEngine::stats(&sharded).events_applied,
            control.stats().events_applied
        );
        prop_assert_eq!(
            AnalysisEngine::stats(&sharded).runs_finished,
            control.stats().runs_finished
        );
    }

    /// Batched path ≡ per-event path: for any chunking, the single-pass
    /// partitioned ingest (including its whole-batch-to-one-shard fast
    /// path) is bit-identical — ids included — to feeding the same
    /// sharded layout one event at a time.
    #[test]
    fn batched_ingest_bit_identical_to_per_event(
        seed in 0u64..10_000,
        shards in prop_oneof![Just(1usize), Just(2), Just(4)],
        chunk in prop_oneof![Just(3usize), Just(64), Just(257), Just(4096)],
    ) {
        let store = multi_version_store();
        let events = interleave(per_run_streams(&store), seed);

        let batched = ShardedSession::in_memory(shards, SessionConfig::default());
        let per_event = ShardedSession::in_memory(shards, SessionConfig::default());
        for batch in events.chunks(chunk) {
            let applied = AnalysisEngine::ingest_batch(&batched, batch).expect("batched ingest");
            prop_assert_eq!(applied, batch.len());
        }
        for event in &events {
            AnalysisEngine::ingest_batch(&per_event, std::slice::from_ref(event))
                .expect("per-event ingest");
        }
        let mut changed_batched = AnalysisEngine::flush(&batched).expect("batched flush");
        let mut changed_per_event = AnalysisEngine::flush(&per_event).expect("per-event flush");
        changed_batched.sort();
        changed_per_event.sort();
        prop_assert_eq!(changed_batched, changed_per_event);

        prop_assert_eq!(
            AnalysisEngine::reports(&batched),
            AnalysisEngine::reports(&per_event),
            "batched reports differ from per-event reports"
        );
        prop_assert_eq!(
            AnalysisEngine::stats(&batched).events_applied,
            AnalysisEngine::stats(&per_event).events_applied
        );
    }
}

/// Sharding is partitioning: with many versions spread over the shards,
/// every shard's session is bit-identical to a plain session fed exactly
/// that shard's subsequence, and the merged reports match an unsharded
/// control modulo arena ids.
#[test]
fn multi_version_shards_partition_exactly() {
    const SHARDS: usize = 4;
    let store = multi_version_store();
    let events = interleave(per_run_streams(&store), 99);

    let sharded = ShardedSession::in_memory(SHARDS, SessionConfig::default());
    for batch in events.chunks(113) {
        AnalysisEngine::ingest_batch(&sharded, batch).expect("ingest");
        AnalysisEngine::flush(&sharded).expect("flush");
    }

    // The version hash must actually spread this workload.
    let used = expected_partition(&events, SHARDS)
        .iter()
        .filter(|g| !g.is_empty())
        .count();
    assert!(
        used >= 2,
        "workload fits one shard — weaken nothing, fix the fixture"
    );

    // Per shard: bit-identical to a plain session over its subsequence.
    for (i, subsequence) in expected_partition(&events, SHARDS).into_iter().enumerate() {
        let control = control_session(&subsequence);
        assert_eq!(
            sharded
                .with_shard(i, |s| s.reports())
                .expect("healthy shard"),
            control.reports(),
            "shard {i} diverged from its own subsequence"
        );
        assert_eq!(
            sharded
                .with_shard(i, |s| s.store_snapshot())
                .expect("healthy shard"),
            control.store_snapshot(),
            "shard {i} store diverged"
        );
    }

    // Merged: canonically identical to the unsharded control (arena ids
    // are shard-local, everything they denote matches by name).
    let control = control_session(&events);
    let merged = AnalysisEngine::reports(&sharded);
    let single = control.reports();
    assert_eq!(merged.len(), single.len());
    for (key, report) in &single {
        let sharded_report = &merged[key];
        assert_eq!(
            canonical(sharded_report),
            canonical(report),
            "canonical report for {key} differs"
        );
    }
}

fn sharded_config(snapshot_every_flushes: u32) -> ShardedConfig {
    ShardedConfig {
        shards: 3,
        durable: DurableConfig {
            session: SessionConfig::default(),
            fsync: FsyncPolicy::Never,
            snapshot_every_flushes,
            faults: Default::default(),
        },
    }
}

/// Acceptance: a sharded durable session killed mid-stream recovers each
/// shard from its own WAL + snapshot pair with reports identical to an
/// uninterrupted run, and resumes to the same end state.
#[test]
fn sharded_kill_resume_converges_to_uninterrupted_state() {
    let store = multi_version_store();
    let events = interleave(per_run_streams(&store), 7);
    let cut = events.len() / 2;

    let dir = ScratchDir::new("kill-resume");
    let (durable, _) = ShardedSession::open(&dir.0, sharded_config(2)).expect("open");
    for batch in events[..cut].chunks(97) {
        AnalysisEngine::ingest_batch(&durable, batch).expect("ingest");
        AnalysisEngine::flush(&durable).expect("flush");
    }
    let reports_at_kill = AnalysisEngine::reports(&durable);
    drop(durable); // killed: no checkpoint, no graceful shutdown

    let (recovered, stats) = ShardedSession::open(&dir.0, sharded_config(2)).expect("recover");
    assert_eq!(stats.len(), 3);
    assert!(
        stats.iter().any(|s| s.used_snapshot),
        "checkpoints must have fired somewhere"
    );
    assert_eq!(
        AnalysisEngine::reports(&recovered),
        reports_at_kill,
        "recovery must restore the exact pre-kill reports"
    );
    // Every shard recovered from its own pair; nothing was lost.
    let restored: u64 = stats
        .iter()
        .map(|s| s.snapshot_events + s.wal_events_replayed)
        .sum();
    assert_eq!(restored, cut as u64);

    // Resume the stream: the end state equals a never-killed sharded
    // session over the full stream.
    for batch in events[cut..].chunks(97) {
        AnalysisEngine::ingest_batch(&recovered, batch).expect("resume ingest");
        AnalysisEngine::flush(&recovered).expect("resume flush");
    }
    let never_killed_dir = ScratchDir::new("never-killed");
    let (never_killed, _) =
        ShardedSession::open(&never_killed_dir.0, sharded_config(2)).expect("open control");
    for batch in events.chunks(97) {
        AnalysisEngine::ingest_batch(&never_killed, batch).expect("control ingest");
        AnalysisEngine::flush(&never_killed).expect("control flush");
    }
    assert_eq!(
        AnalysisEngine::reports(&recovered),
        AnalysisEngine::reports(&never_killed)
    );
    assert_eq!(
        AnalysisEngine::stats(&recovered).events_applied,
        AnalysisEngine::stats(&never_killed).events_applied
    );
}

/// Kill one shard harder than the rest: tear its WAL tail. Only that
/// shard loses (exactly) its torn suffix; every other shard recovers its
/// full history, and the surviving merged state stays exact.
#[test]
fn torn_wal_in_one_shard_is_isolated() {
    const SHARDS: usize = 3;
    let store = multi_version_store();
    let events = interleave(per_run_streams(&store), 13);

    let dir = ScratchDir::new("torn-one");
    // No snapshots: every shard's WAL holds its whole history.
    let config = ShardedConfig {
        shards: SHARDS,
        ..sharded_config(0)
    };
    let (durable, _) = ShardedSession::open(&dir.0, config.clone()).expect("open");
    AnalysisEngine::ingest_batch(&durable, &events).expect("ingest");
    AnalysisEngine::flush(&durable).expect("flush");
    assert!(matches!(
        AnalysisEngine::recoverable_state(&durable),
        RecoverableState::Sharded { ref shard_dirs } if shard_dirs.len() == SHARDS
    ));
    drop(durable); // killed

    // Tear the final frame of the busiest shard's log.
    let partition = expected_partition(&events, SHARDS);
    let victim = (0..SHARDS)
        .max_by_key(|&i| partition[i].len())
        .expect("shards exist");
    let wal_path = shard_dir(&dir.0, victim).join(online::durable::WAL_FILE);
    let bytes = std::fs::read(&wal_path).expect("victim wal");
    std::fs::write(&wal_path, &bytes[..bytes.len() - 5]).expect("tear");

    let (recovered, stats) = ShardedSession::open(&dir.0, config).expect("recover");
    for (i, shard_stats) in stats.iter().enumerate() {
        let expected = if i == victim {
            partition[i].len() as u64 - 1
        } else {
            partition[i].len() as u64
        };
        assert_eq!(
            shard_stats.wal_events_replayed, expected,
            "shard {i} replay count"
        );
        assert_eq!(shard_stats.wal_corruption.is_some(), i == victim);
        // The shard equals a plain session over the subsequence it could
        // still read.
        let survived = &partition[i][..expected as usize];
        let control = control_session(survived);
        assert_eq!(
            recovered
                .with_shard(i, |s| s.reports())
                .expect("healthy shard"),
            control.reports(),
            "shard {i} reports after torn-tail recovery"
        );
    }
}

/// A shard whose recovery fails at open is **quarantined**, not fatal:
/// the session opens degraded, events routed to the quarantined shard
/// park in memory (and count as accepted), partial answers are tagged
/// with a [`engine::DegradedState`], and `reintegrate` replays the
/// parked backlog once the operator repairs the shard — converging to
/// the exact state of a never-degraded session.
#[test]
fn recovery_failure_quarantines_and_reintegrate_converges() {
    use engine::QuarantineReason;
    const SHARDS: usize = 3;
    let store = multi_version_store();
    let events = interleave(per_run_streams(&store), 31);
    let partition = expected_partition(&events, SHARDS);
    let victim = (0..SHARDS)
        .max_by_key(|&i| partition[i].len())
        .expect("shards exist");
    assert!(
        !partition[victim].is_empty(),
        "fixture must load the victim"
    );

    // Create the (empty) layout, then break the victim's WAL: a
    // directory where the log file belongs fails every read with EISDIR.
    let dir = ScratchDir::new("quarantine");
    let config = ShardedConfig {
        shards: SHARDS,
        ..sharded_config(0)
    };
    let (fresh, _) = ShardedSession::open(&dir.0, config.clone()).expect("open fresh");
    drop(fresh);
    let wal_path = shard_dir(&dir.0, victim).join(online::durable::WAL_FILE);
    let _ = std::fs::remove_file(&wal_path);
    std::fs::create_dir(&wal_path).expect("plant bogus wal directory");

    // Open succeeds *degraded* instead of failing wholesale.
    let (degraded, stats) = ShardedSession::open(&dir.0, config.clone()).expect("open degraded");
    assert_eq!(stats.len(), SHARDS);
    let state = degraded.degraded_state();
    assert!(state.is_degraded());
    assert_eq!(state.quarantined.len(), 1);
    assert_eq!(state.quarantined[0].shard, victim);
    assert!(
        matches!(state.quarantined[0].reason, QuarantineReason::Recovery(_)),
        "reason must be typed as a recovery failure: {}",
        state.quarantined[0].reason
    );
    assert_eq!(state.parked_events(), 0);
    assert!(degraded.with_shard(victim, |_| ()).is_none());

    // The full stream is accepted: healthy shards apply their share,
    // the victim's share parks (exactly-once — nothing is dropped).
    let accepted = AnalysisEngine::ingest_batch(&degraded, &events).expect("degraded ingest");
    assert_eq!(accepted, events.len(), "parked events count as accepted");
    AnalysisEngine::flush(&degraded).expect("degraded flush");
    assert_eq!(
        degraded.degraded_state().parked_events(),
        partition[victim].len()
    );

    // Partial answers cover exactly the healthy shards, and the metrics
    // stream carries the degradation (satellite: quarantine gauges).
    let partial = AnalysisEngine::reports(&degraded);
    let mut expected_partial = HashMap::new();
    for (i, subsequence) in partition.iter().enumerate() {
        if i != victim {
            expected_partial.extend(control_session(subsequence).reports());
        }
    }
    assert_eq!(partial.len(), expected_partial.len());
    let metrics = AnalysisEngine::metrics(&degraded);
    assert_eq!(metrics.gauge("kojak_engine_shards_quarantined"), Some(1));
    assert_eq!(
        metrics.gauge("kojak_engine_events_parked"),
        Some(partition[victim].len() as u64)
    );

    // Reintegration is retryable: with the fault still present it fails
    // typed, keeps the quarantine, and loses nothing.
    assert!(degraded.reintegrate(victim).is_err());
    assert_eq!(
        degraded.degraded_state().parked_events(),
        partition[victim].len()
    );

    // Repair the shard, reintegrate: the backlog replays and the session
    // converges to a never-degraded sharded session over the same stream.
    std::fs::remove_dir(&wal_path).expect("remove bogus wal directory");
    let replayed = degraded.reintegrate_all().expect("reintegrate");
    assert_eq!(replayed, partition[victim].len());
    assert!(!degraded.degraded_state().is_degraded());
    let metrics = AnalysisEngine::metrics(&degraded);
    assert_eq!(metrics.gauge("kojak_engine_shards_quarantined"), Some(0));
    assert_eq!(metrics.gauge("kojak_engine_events_parked"), Some(0));

    let control_dir = ScratchDir::new("quarantine-control");
    let (control, _) = ShardedSession::open(&control_dir.0, config).expect("open control");
    AnalysisEngine::ingest_batch(&control, &events).expect("control ingest");
    AnalysisEngine::flush(&control).expect("control flush");
    assert_eq!(
        AnalysisEngine::reports(&degraded),
        AnalysisEngine::reports(&control),
        "reintegrated session must match a never-degraded one"
    );
    assert_eq!(
        AnalysisEngine::stats(&degraded).events_applied,
        AnalysisEngine::stats(&control).events_applied
    );

    // Reintegrating a healthy shard is a no-op; out-of-range is typed.
    assert_eq!(degraded.reintegrate(victim).expect("healthy no-op"), 0);
    assert!(degraded.reintegrate(SHARDS + 7).is_err());
}

/// A checkpoint failure quarantines the failing shard (preserving its
/// live engine) instead of poisoning the session; reintegration promotes
/// it back without replaying anything.
#[test]
fn checkpoint_failure_quarantines_with_engine_preserved() {
    use engine::QuarantineReason;
    const SHARDS: usize = 3;
    let store = multi_version_store();
    let events = interleave(per_run_streams(&store), 57);
    let partition = expected_partition(&events, SHARDS);
    let victim = (0..SHARDS)
        .max_by_key(|&i| partition[i].len())
        .expect("shards exist");

    let dir = ScratchDir::new("checkpoint-quarantine");
    let config = ShardedConfig {
        shards: SHARDS,
        ..sharded_config(0)
    };
    let (durable, _) = ShardedSession::open(&dir.0, config).expect("open");
    AnalysisEngine::ingest_batch(&durable, &events).expect("ingest");
    AnalysisEngine::flush(&durable).expect("flush");
    let whole_reports = AnalysisEngine::reports(&durable);

    // A directory squatting on `snapshot.tmp` makes the victim's next
    // checkpoint fail (File::create → EISDIR) — running as any user.
    let tmp_path = shard_dir(&dir.0, victim).join("snapshot.tmp");
    std::fs::create_dir(&tmp_path).expect("plant bogus snapshot.tmp");

    // checkpoint() degrades instead of erroring: healthy shards
    // checkpointed, the victim is quarantined with its engine intact.
    durable
        .checkpoint()
        .expect("checkpoint always degrades, never fails");
    let state = durable.degraded_state();
    assert_eq!(state.quarantined.len(), 1);
    assert_eq!(state.quarantined[0].shard, victim);
    assert!(matches!(
        state.quarantined[0].reason,
        QuarantineReason::Flush(_)
    ));
    assert_eq!(state.parked_events(), 0);

    // Repair and reintegrate: no parked backlog, the preserved engine is
    // promoted in place, and nothing was lost along the way.
    std::fs::remove_dir(&tmp_path).expect("remove bogus snapshot.tmp");
    assert_eq!(durable.reintegrate(victim).expect("reintegrate"), 0);
    assert!(!durable.degraded_state().is_degraded());
    assert_eq!(AnalysisEngine::reports(&durable), whole_reports);
    durable.checkpoint().expect("repaired checkpoint");
    assert!(!durable.degraded_state().is_degraded());
}

/// A corrupt snapshot stays a **hard** open error (the truncated history
/// exists nowhere else — quarantining it would quietly serve wrong
/// answers), exactly like the unsharded session.
#[test]
fn corrupt_snapshot_is_still_a_hard_open_error() {
    const SHARDS: usize = 3;
    let store = multi_version_store();
    let events = interleave(per_run_streams(&store), 83);
    let partition = expected_partition(&events, SHARDS);
    let victim = (0..SHARDS)
        .max_by_key(|&i| partition[i].len())
        .expect("shards exist");

    let dir = ScratchDir::new("corrupt-snapshot");
    // snapshot_every_flushes = 1: the flush below writes snapshots.
    let (durable, _) = ShardedSession::open(&dir.0, sharded_config(1)).expect("open");
    AnalysisEngine::ingest_batch(&durable, &events).expect("ingest");
    AnalysisEngine::flush(&durable).expect("flush");
    drop(durable);

    let snapshot_path = shard_dir(&dir.0, victim).join(online::durable::SNAPSHOT_FILE);
    assert!(snapshot_path.exists(), "checkpoint must have written one");
    std::fs::write(&snapshot_path, b"KJSN garbage, not a snapshot").expect("corrupt");

    match ShardedSession::open(&dir.0, sharded_config(1)) {
        Err(online::RecoveryError::CorruptSnapshot { .. }) => {}
        other => panic!(
            "expected CorruptSnapshot, got {:?}",
            other.map(|_| ()).err()
        ),
    }
}

/// Reopening an existing directory under a different shard layout —
/// another shard count, sharded state opened unsharded, or unsharded
/// state opened sharded — must refuse instead of silently stranding the
/// existing history.
#[test]
fn relayouting_an_existing_directory_is_refused() {
    use engine::{EngineBuilder, EngineError};

    // Shard-count change.
    let dir = ScratchDir::new("reshard");
    let (durable, _) = ShardedSession::open(&dir.0, sharded_config(0)).expect("open");
    drop(durable);
    match ShardedSession::open(
        &dir.0,
        ShardedConfig {
            shards: 5,
            ..sharded_config(0)
        },
    ) {
        Err(online::RecoveryError::Incompatible { .. }) => {}
        other => panic!("expected Incompatible, got {:?}", other.map(|_| ()).err()),
    }

    // Sharded state reopened unsharded: the builder must refuse rather
    // than hand back a fresh session that ignores every shard's history.
    match EngineBuilder::new().durable(&dir.0).build() {
        Err(EngineError::Recovery(online::RecoveryError::Incompatible { .. })) => {}
        other => panic!("expected Incompatible, got {:?}", other.err()),
    }

    // Unsharded state reopened sharded.
    let plain = ScratchDir::new("plain");
    let engine = EngineBuilder::new()
        .durable(&plain.0)
        .build()
        .expect("open unsharded");
    drop(engine);
    match ShardedSession::open(&plain.0, sharded_config(0)) {
        Err(online::RecoveryError::Incompatible { .. }) => {}
        other => panic!("expected Incompatible, got {:?}", other.map(|_| ()).err()),
    }
    match EngineBuilder::new().durable(&plain.0).shards(3).build() {
        Err(EngineError::Recovery(online::RecoveryError::Incompatible { .. })) => {}
        other => panic!("expected Incompatible, got {:?}", other.err()),
    }
}
