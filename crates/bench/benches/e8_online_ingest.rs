//! E8 — wall-clock cost of absorbing one new test run: incremental online
//! ingestion + flush vs full batch re-analysis of the whole store.

use cosy::{Analyzer, Backend, ProblemThreshold};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use kojak_bench::data;
use online::replay::events_for_run;
use online::{OnlineSession, RunKey, SessionConfig};
use perfdata::TestRunId;
use std::sync::Arc;

const BASE_RUNS: usize = 50;

fn bench_online_ingest(c: &mut Criterion) {
    let threshold = ProblemThreshold::default();
    let mut pe_counts: Vec<u32> = (1..=BASE_RUNS as u32).collect();
    pe_counts.push(64);
    let (store, version) = data::particle_store(&pe_counts);
    let appended = TestRunId(BASE_RUNS as u32);
    let template = events_for_run(&store, appended);

    let mut g = c.benchmark_group("e8_online_ingest");
    g.sample_size(10);
    g.throughput(Throughput::Elements(template.len() as u64));

    // Session pre-loaded with the base runs; each iteration appends the
    // 64-PE run's event stream under a fresh producer key.
    let session = OnlineSession::new(SessionConfig {
        threshold,
        auto_flush_events: 0,
        ..SessionConfig::default()
    });
    for r in 0..BASE_RUNS as u32 {
        session
            .ingest_batch(&events_for_run(&store, TestRunId(r)))
            .expect("base ingest");
    }
    session.flush().expect("base flush");
    let mut next_key = 1_000_000u64;
    g.bench_function("incremental_single_run_append", |b| {
        b.iter(|| {
            let key = RunKey(next_key);
            next_key += 1;
            let events: Vec<_> = template.iter().map(|e| e.clone().with_run(key)).collect();
            session.ingest_batch(&events).expect("append");
            session.flush().expect("flush")
        })
    });

    let spec = Arc::new(cosy::suite::standard_suite());
    g.bench_function("full_batch_reanalysis", |b| {
        b.iter(|| {
            let analyzer =
                Analyzer::with_spec(&store, version, Arc::clone(&spec)).expect("analyzer");
            let mut entries = 0usize;
            for r in 0..store.runs.len() as u32 {
                entries += analyzer
                    .analyze(TestRunId(r), Backend::Compiled, threshold)
                    .expect("analysis")
                    .entries
                    .len();
            }
            entries
        })
    });
    g.finish();
}

criterion_group!(benches, bench_online_ingest);
criterion_main!(benches);
