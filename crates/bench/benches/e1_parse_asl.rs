//! E1 — wall-clock throughput of the ASL front-end (lexer, parser, checker)
//! on the paper's suite and synthetic specifications of growing size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use kojak_bench::experiments::e1_parse::synthetic_spec;

fn bench_parse(c: &mut Criterion) {
    let mut g = c.benchmark_group("e1_parse_asl");
    let suite = cosy::suite::standard_suite_source();
    g.throughput(Throughput::Bytes(suite.len() as u64));
    g.bench_function("paper_suite", |b| {
        b.iter(|| asl_core::parse_and_check(std::hint::black_box(&suite)).unwrap())
    });
    for n in [10usize, 100] {
        let src = synthetic_spec(n);
        g.throughput(Throughput::Bytes(src.len() as u64));
        g.bench_with_input(BenchmarkId::new("synthetic", n), &src, |b, src| {
            b.iter(|| asl_core::parse_and_check(std::hint::black_box(src)).unwrap())
        });
    }
    g.finish();
}

fn bench_parse_only(c: &mut Criterion) {
    let suite = cosy::suite::standard_suite_source();
    c.bench_function("e1_parse_without_check", |b| {
        b.iter(|| asl_core::parse(std::hint::black_box(&suite)).unwrap())
    });
}

criterion_group!(benches, bench_parse, bench_parse_only);
criterion_main!(benches);
