//! E4 — wall-clock cost of the evaluation strategies (interpreter vs
//! per-context SQL vs batched SQL) on a mid-size program.

use criterion::{criterion_group, criterion_main, Criterion};
use kojak_bench::data;
use kojak_bench::experiments::strategies::{client_side, sql_batched, sql_per_context};
use reldb::remote::{connection::share, ApiBinding, BackendProfile, Connection};

fn bench_strategies(c: &mut Criterion) {
    let (store, version) = data::generated_store(4, &[1, 16]);
    let (spec, schema, db) = data::loaded_database(&store);
    let shared = share(db);
    let run = *store.versions[version.index()].runs.last().unwrap();

    let mut g = c.benchmark_group("e4_strategies");
    g.sample_size(20);
    g.bench_function("client_interpreter", |b| {
        b.iter(|| {
            let mut conn = Connection::connect(
                shared.clone(),
                BackendProfile::oracle7(),
                ApiBinding::jdbc(),
            );
            client_side(&mut conn, &store, &spec, version, run)
                .unwrap()
                .held
                .len()
        })
    });
    g.bench_function("sql_per_context", |b| {
        b.iter(|| {
            let mut conn = Connection::connect(
                shared.clone(),
                BackendProfile::oracle7(),
                ApiBinding::jdbc(),
            );
            sql_per_context(&mut conn, &store, &spec, &schema, version, run)
                .unwrap()
                .held
                .len()
        })
    });
    g.bench_function("sql_batched", |b| {
        b.iter(|| {
            let mut conn = Connection::connect(
                shared.clone(),
                BackendProfile::oracle7(),
                ApiBinding::jdbc(),
            );
            sql_batched(&mut conn, &store, &spec, &schema, version, run)
                .unwrap()
                .held
                .len()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_strategies);
criterion_main!(benches);
