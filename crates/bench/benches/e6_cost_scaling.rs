//! E6 — wall-clock cost of the Apprentice simulator across PE counts
//! (the data-generation side of the cost-scaling figure).

use apprentice_sim::{archetypes, simulate_program, MachineModel};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use perfdata::Store;

fn bench_simulation(c: &mut Criterion) {
    let machine = MachineModel::t3e_900();
    let mut g = c.benchmark_group("e6_simulate");
    for pe in [4u32, 64, 1024] {
        g.bench_with_input(BenchmarkId::new("particle_mc", pe), &pe, |b, &pe| {
            let model = archetypes::particle_mc(42);
            b.iter(|| {
                let mut store = Store::new();
                simulate_program(&mut store, &model, &machine, &[pe]);
                store.object_count()
            })
        });
    }
    g.finish();
}

fn bench_generated_size(c: &mut Criterion) {
    let machine = MachineModel::t3e_900();
    let mut g = c.benchmark_group("e6_simulate_generated");
    g.sample_size(20);
    for functions in [4usize, 16] {
        g.bench_with_input(
            BenchmarkId::new("functions", functions),
            &functions,
            |b, &functions| {
                let gen = apprentice_sim::ProgramGenerator {
                    seed: 7,
                    functions,
                    ..Default::default()
                };
                let model = gen.generate();
                b.iter(|| {
                    let mut store = Store::new();
                    simulate_program(&mut store, &model, &machine, &[64]);
                    store.object_count()
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_simulation, bench_generated_size);
criterion_main!(benches);
