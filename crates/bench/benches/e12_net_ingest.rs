//! E12 — wall-clock cost of the wire protocol: message encode/decode of
//! the whole stream (no I/O), and loopback TCP ingestion vs in-process.
//! The sweep with claim checks lives in the harness experiment (`--e12`);
//! these benches track the raw per-operation costs across PRs.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use engine::{AnalysisEngine, EngineBuilder};
use kojak_bench::experiments::e11_sharding::multi_version_stream;
use net::{proto, EngineServer, ProducerConfig, ServerConfig, TraceProducer};
use std::sync::Arc;

fn bench_net(c: &mut Criterion) {
    let (_store, events) = multi_version_stream();

    let mut g = c.benchmark_group("e12_net");
    g.sample_size(10);
    g.throughput(Throughput::Elements(events.len() as u64));

    // Frame + message codec over the whole stream, no sockets.
    g.bench_function("message_encode_decode", |b| {
        b.iter(|| {
            let mut decoded = 0usize;
            for batch in events.chunks(256) {
                let mut payload = Vec::new();
                proto::encode_message(
                    &mut payload,
                    &net::Message::EventBatch {
                        first_seq: 1,
                        events: batch.to_vec(),
                    },
                );
                match proto::decode_message(&payload).expect("decode") {
                    net::Message::EventBatch { events, .. } => decoded += events.len(),
                    _ => unreachable!(),
                }
            }
            assert_eq!(decoded, events.len());
            decoded
        })
    });

    // In-process baseline.
    g.bench_function("ingest_in_process", |b| {
        b.iter(|| {
            let engine = EngineBuilder::new().shards(4).build().expect("engine");
            for batch in events.chunks(256) {
                engine.ingest_batch(batch).expect("ingest");
            }
            engine.stats().events_applied
        })
    });

    // One producer over loopback TCP into the same engine shape.
    g.bench_function("ingest_loopback_tcp", |b| {
        b.iter(|| {
            let engine = Arc::new(EngineBuilder::new().shards(4).build().expect("engine"));
            let server = EngineServer::bind(
                "127.0.0.1:0",
                Arc::clone(&engine) as Arc<dyn AnalysisEngine>,
                ServerConfig::default(),
            )
            .expect("bind");
            let mut producer = TraceProducer::connect(
                server.local_addr().to_string(),
                ProducerConfig {
                    producer_id: 1,
                    batch_events: 256,
                    ..ProducerConfig::default()
                },
            )
            .expect("connect");
            for event in &events {
                producer.send(event).expect("send");
            }
            producer.close().expect("close");
            let applied = engine.stats().events_applied;
            server.shutdown();
            assert_eq!(applied, events.len() as u64);
            applied
        })
    });

    g.finish();
}

criterion_group!(benches, bench_net);
criterion_main!(benches);
