//! E2 — wall-clock cost of the insertion path per backend: statement parse,
//! execution and the cost model. The virtual-clock ratios are printed by
//! the harness; this measures the real engine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use kojak_bench::data;
use reldb::remote::{connection::share, ApiBinding, BackendProfile, Connection};
use reldb::Database;

fn bench_insert(c: &mut Criterion) {
    let (store, _) = data::mixed_store(1, &[1, 8]);
    let spec = cosy::suite::standard_suite();
    let schema = asl_sql::generate_schema(&spec.model).unwrap();
    let cosy_data = asl_eval::CosyData::new(&store);
    let stmts = asl_sql::loader::insert_statements(&schema, &spec.model, &cosy_data).unwrap();

    let mut g = c.benchmark_group("e2_db_insert");
    g.throughput(Throughput::Elements(stmts.len() as u64));
    for (profile, binding) in [
        (BackendProfile::oracle7(), ApiBinding::jdbc()),
        (BackendProfile::msaccess(), ApiBinding::native_c()),
    ] {
        g.bench_with_input(
            BenchmarkId::new("replay", profile.name),
            &stmts,
            |b, stmts| {
                b.iter(|| {
                    let db = share(Database::new());
                    let mut conn = Connection::connect(db, profile.clone(), binding.clone());
                    for ddl in schema.ddl() {
                        conn.execute(&ddl).unwrap();
                    }
                    for s in stmts {
                        conn.execute(s).unwrap();
                    }
                    conn.elapsed()
                })
            },
        );
    }
    g.bench_function("bulk_load_store", |b| {
        b.iter(|| {
            let mut db = Database::new();
            schema.create_all(&mut db).unwrap();
            asl_sql::loader::load_store(&mut db, &schema, &spec.model, &cosy_data).unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_insert);
criterion_main!(benches);
