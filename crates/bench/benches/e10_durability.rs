//! E10 — wall-clock cost of durability: WAL frame encode/decode, durable
//! vs memory-only batch ingestion, and recovery from a full WAL vs from a
//! snapshot. The deeper measurements (overhead ratios, claim checks) live
//! in the harness experiment (`--e10`); these benches track the raw
//! per-operation costs across PRs.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use kojak_bench::data;
use kojak_bench::experiments::e10_durability::refinement_stream;
use online::{
    DurableConfig, DurableSession, FsyncPolicy, OnlineSession, SessionConfig, TraceEvent,
};
use std::path::PathBuf;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("kojak-e10b-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn bench_durability(c: &mut Criterion) {
    let (store, _version) = data::particle_store(&(1..=8).collect::<Vec<_>>());
    let events = refinement_stream(&store);

    let mut g = c.benchmark_group("e10_durability");
    g.sample_size(10);
    g.throughput(Throughput::Elements(events.len() as u64));

    // Raw frame encode + parse of the whole stream (no I/O).
    g.bench_function("wal_frame_encode_decode", |b| {
        b.iter(|| {
            let mut buf = online::wal::wal_header(0);
            for event in &events {
                online::wal::frame_event(&mut buf, event);
            }
            let parsed = online::wal::parse_frames(&buf);
            assert!(parsed.corruption.is_none());
            parsed.events.len()
        })
    });

    // Memory-only vs durable ingestion of the full stream.
    g.bench_function("ingest_memory_only", |b| {
        b.iter(|| {
            let session = OnlineSession::new(SessionConfig::default());
            for batch in events.chunks(256) {
                session.ingest_batch(batch).expect("ingest");
            }
            session.stats().events_applied
        })
    });
    let dir = scratch("ingest");
    let mut generation = 0u64;
    g.bench_function("ingest_durable_no_fsync", |b| {
        b.iter(|| {
            generation += 1;
            let session_dir = dir.join(generation.to_string());
            let session = DurableSession::open(
                &session_dir,
                DurableConfig {
                    session: SessionConfig::default(),
                    fsync: FsyncPolicy::Never,
                    snapshot_every_flushes: 0,
                    faults: Default::default(),
                },
            )
            .expect("open");
            for batch in events.chunks(256) {
                session.ingest_batch(batch).expect("ingest");
            }
            let applied = session.stats().events_applied;
            drop(session);
            let _ = std::fs::remove_dir_all(&session_dir);
            applied
        })
    });
    let _ = std::fs::remove_dir_all(&dir);

    // Recovery paths over one identical history.
    let mk_dir = |checkpoint: bool, name: &str| -> PathBuf {
        let dir = scratch(name);
        let session = DurableSession::open(
            &dir,
            DurableConfig {
                session: SessionConfig::default(),
                fsync: FsyncPolicy::Never,
                snapshot_every_flushes: 0,
                faults: Default::default(),
            },
        )
        .expect("open");
        for batch in events.chunks(256) {
            session.ingest_batch(batch).expect("ingest");
        }
        if checkpoint {
            session.checkpoint().expect("checkpoint");
        } else {
            session.flush().expect("flush");
        }
        dir
    };
    let wal_dir = mk_dir(false, "recover-wal");
    let snap_dir = mk_dir(true, "recover-snap");
    g.bench_function("recover_full_wal_replay", |b| {
        b.iter(|| {
            let (session, _stats) =
                OnlineSession::recover(&wal_dir, SessionConfig::default()).expect("recover");
            session.stats().events_applied
        })
    });
    g.bench_function("recover_from_snapshot", |b| {
        b.iter(|| {
            let (session, _stats) =
                OnlineSession::recover(&snap_dir, SessionConfig::default()).expect("recover");
            session.stats().events_applied
        })
    });
    let _ = std::fs::remove_dir_all(&wal_dir);
    let _ = std::fs::remove_dir_all(&snap_dir);

    // Frames must survive round-trips under load: keep the cheap sanity
    // assertion in the bench so a codec regression fails loudly here too.
    let mut buf = Vec::new();
    for event in &events[..64.min(events.len())] {
        buf.clear();
        event.encode_wire(&mut buf);
        assert_eq!(&TraceEvent::decode_wire(&buf).expect("decode"), event);
    }

    g.finish();
}

criterion_group!(benches, bench_durability);
criterion_main!(benches);
