//! E3 — wall-clock cost of cursor (record-at-a-time) result delivery vs
//! batched SELECT.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use kojak_bench::data;
use reldb::remote::{connection::share, ApiBinding, BackendProfile, Connection};

fn bench_fetch(c: &mut Criterion) {
    let (store, _) = data::mixed_store(2, &[1, 4, 16]);
    let (_, _, db) = data::loaded_database(&store);
    let shared = share(db);
    let rows = store.total_timings.len() as u64;

    let mut g = c.benchmark_group("e3_fetch_overhead");
    g.throughput(Throughput::Elements(rows));
    g.bench_function("cursor_record_at_a_time", |b| {
        b.iter(|| {
            let mut conn = Connection::connect(
                shared.clone(),
                BackendProfile::oracle7(),
                ApiBinding::jdbc(),
            );
            let mut n = 0u64;
            let mut cur = conn
                .open_cursor("SELECT id, Run_id, Excl, Incl, Ovhd FROM TotalTiming")
                .unwrap();
            while cur.fetch().is_some() {
                n += 1;
            }
            n
        })
    });
    g.bench_function("batched_select", |b| {
        b.iter(|| {
            let mut conn = Connection::connect(
                shared.clone(),
                BackendProfile::oracle7(),
                ApiBinding::jdbc(),
            );
            conn.execute("SELECT id, Run_id, Excl, Incl, Ovhd FROM TotalTiming")
                .unwrap()
                .rows
                .len()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_fetch);
criterion_main!(benches);
