//! E5 — wall-clock cost of a full COSY analysis, per backend.

use cosy::{Analyzer, Backend, ProblemThreshold};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kojak_bench::data;

fn bench_analysis(c: &mut Criterion) {
    let (store, version) = data::particle_store(&[1, 4, 16, 64]);
    let run = *store.versions[version.index()].runs.last().unwrap();
    let analyzer = Analyzer::new(&store, version).unwrap();

    let mut g = c.benchmark_group("e5_cosy_analysis");
    g.sample_size(20);
    for backend in [Backend::Interpreter, Backend::Sql] {
        g.bench_with_input(
            BenchmarkId::new("analyze", format!("{backend:?}")),
            &backend,
            |b, backend| {
                b.iter(|| {
                    analyzer
                        .analyze(run, *backend, ProblemThreshold::default())
                        .unwrap()
                        .entries
                        .len()
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_analysis);
criterion_main!(benches);
