//! E9 — wall-clock cost of property evaluation: the tree-walking
//! interpreter vs the slot-indexed compiled IR, on the same analyzer and
//! the same store (full E5-style analysis of the 64-PE particle-MC run).

use cosy::{Analyzer, Backend, ProblemThreshold};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use kojak_bench::data;

fn bench_compiled_eval(c: &mut Criterion) {
    let threshold = ProblemThreshold::default();
    let (store, version) = data::particle_store(&[1, 4, 16, 64]);
    let run = *store.versions[version.index()].runs.last().unwrap();
    let analyzer = Analyzer::new(&store, version).expect("analyzer");
    let instances = analyzer.instances(run).len() as u64;
    // Lower once outside the measurement loops (shared across analyses).
    let _ = analyzer.compiled_spec();

    let mut g = c.benchmark_group("e9_compiled_eval");
    g.sample_size(10);
    g.throughput(Throughput::Elements(instances));

    g.bench_function("interpreter_full_analysis", |b| {
        b.iter(|| {
            analyzer
                .analyze(run, Backend::Interpreter, threshold)
                .expect("interpreter analysis")
                .entries
                .len()
        })
    });

    g.bench_function("compiled_full_analysis", |b| {
        b.iter(|| {
            analyzer
                .analyze(run, Backend::Compiled, threshold)
                .expect("compiled analysis")
                .entries
                .len()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_compiled_eval);
criterion_main!(benches);
