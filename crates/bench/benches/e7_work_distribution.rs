//! E7 — wall-clock cost of the relational engine pieces the ablation
//! stresses: correlated point lookups vs full scans, and the batched
//! property query.

use asl_eval::Value;
use criterion::{criterion_group, criterion_main, Criterion};
use kojak_bench::data;

fn bench_engine_paths(c: &mut Criterion) {
    let (store, version) = data::generated_store(6, &[1, 16]);
    let (spec, schema, db) = data::loaded_database(&store);
    let run = *store.versions[version.index()].runs.last().unwrap();
    let main = store.main_region(version).unwrap();

    let mut g = c.benchmark_group("e7_engine");
    g.bench_function("indexed_point_lookup", |b| {
        b.iter(|| {
            db.query("SELECT Incl FROM TotalTiming WHERE TotTimes_owner = 3 AND Run_id = 1")
                .unwrap()
                .rows
                .len()
        })
    });
    g.bench_function("full_scan_aggregate", |b| {
        b.iter(|| {
            db.query("SELECT SUM(Time) FROM TypedTiming WHERE Time > 0.0")
                .unwrap()
                .rows
                .len()
        })
    });
    let bc = asl_sql::compile_batch(
        &spec,
        &schema,
        "SyncCost",
        0,
        &[(1, Value::run(run)), (2, Value::region(main))],
        None,
    )
    .unwrap();
    g.bench_function("batched_property_query", |b| {
        b.iter(|| asl_sql::eval_batch(&db, &bc).unwrap().len())
    });
    g.finish();
}

criterion_group!(benches, bench_engine_paths);
criterion_main!(benches);
