//! Minimal fixed-width table printer for harness output.

/// A simple text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        debug_assert_eq!(cells.len(), self.header.len());
        self.rows.push(cells);
        self
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let emit = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                out.push_str(&format!("{:<w$}  ", c, w = widths[i]));
            }
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        emit(&mut out, &self.header);
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            emit(&mut out, row);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["x".into(), "1".into()]);
        t.row(vec!["longer".into(), "22".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].starts_with("---"));
    }
}
