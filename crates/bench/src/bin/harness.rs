//! The experiment harness: regenerates every table/figure/claim of the
//! paper (E1–E13, see DESIGN.md §4) and prints paper-style tables. E9
//! through E13 also emit machine-readable JSON (`BENCH_e9.json` …
//! `BENCH_e13.json`; best-of-N ns + speedup ratios) so the
//! evaluation-core, durability, sharding, wire-protocol and
//! observability perf trajectories are tracked across PRs.
//!
//! ```sh
//! cargo run --release -p kojak-bench --bin harness            # all
//! cargo run --release -p kojak-bench --bin harness -- --e2    # one
//! ```

use kojak_bench::experiments::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let want = |flag: &str| args.is_empty() || args.iter().any(|a| a == flag);
    let mut failures = Vec::new();

    if want("--e1") {
        println!("== E1: ASL front-end (Figure 1 grammar) =====================================\n");
        let rows = e1_parse::run();
        println!("{}", e1_parse::render(&rows));
    }

    if want("--e2") {
        println!("== E2: insertion across database backends (§5) ==============================\n");
        let rows = e2_insert::run(2);
        println!("{}", e2_insert::render(&rows));
        report_claim(&mut failures, "E2", e2_insert::check_claims(&rows));
        println!(
            "paper: Oracle ~2x slower than MS SQL/Postgres; MS Access ~20x faster than Oracle\n"
        );
    }

    if want("--e3") {
        println!("== E3: record fetch & API binding overhead (§5) =============================\n");
        let rows = e3_fetch::run();
        println!("{}", e3_fetch::render(&rows));
        report_claim(&mut failures, "E3", e3_fetch::check_claims(&rows));
        println!("paper: fetching a record from Oracle ~1 ms; JDBC 2-4x slower than C\n");
    }

    if want("--e4") {
        println!("== E4: client-side evaluation vs SQL translation (§5) =======================\n");
        let rows = e4_client_vs_sql::run(&[2, 6, 12]);
        println!("{}", e4_client_vs_sql::render(&rows));
        report_claim(&mut failures, "E4", e4_client_vs_sql::check_claims(&rows));
        println!(
            "paper: \"significant advantage to translate the conditions ... entirely into SQL\"\n"
        );
    }

    if want("--e5") {
        println!(
            "== E5: COSY ranked analysis (§3/§4) ==========================================\n"
        );
        let results = e5_analysis::run();
        for r in &results {
            println!("{}", r.report_text);
        }
        println!("{}", e5_analysis::render_summary(&results));
        report_claim(&mut failures, "E5", e5_analysis::check_claims(&results));
        println!();
    }

    if want("--e6") {
        println!("== E6: total cost vs processor count (§4.2 semantics) =======================\n");
        let rows = e6_cost_scaling::run(&[1, 2, 4, 8, 16, 32, 64, 128]);
        println!("{}", e6_cost_scaling::render(&rows));
        report_claim(&mut failures, "E6", e6_cost_scaling::check_claims(&rows));
        println!();
    }

    if want("--e7") {
        println!("== E7: work-distribution ablation ===========================================\n");
        let rows = e7_distribution::run(&[2, 10]);
        println!("{}", e7_distribution::render(&rows));
        report_claim(&mut failures, "E7", e7_distribution::check_claims(&rows));
        println!();
    }

    if want("--e8") {
        println!("== E8: online ingestion — incremental vs batch re-analysis ==================\n");
        let result = e8_online::run(50);
        println!("{}", e8_online::render(&result));
        report_claim(&mut failures, "E8", e8_online::check_claims(&result));
        println!("claim: single-run append ≥ 10x faster incrementally than full re-analysis\n");
    }

    if want("--e9") {
        println!(
            "== E9: compiled-IR evaluation vs interpreter =================================\n"
        );
        let result = e9_compiled::run();
        println!("{}", e9_compiled::render(&result));
        report_claim(&mut failures, "E9", e9_compiled::check_claims(&result));
        let json = e9_compiled::to_json(&result);
        match std::fs::write("BENCH_e9.json", &json) {
            Ok(()) => println!("wrote BENCH_e9.json"),
            Err(e) => println!("could not write BENCH_e9.json: {e}"),
        }
        println!("claim: compiled path ≥ 2x faster than the interpreter on E5 and E8 shapes\n");
    }

    if want("--e10") {
        println!("== E10: durable sessions — WAL append overhead & recovery time ==============\n");
        let result = e10_durability::run();
        println!("{}", e10_durability::render(&result));
        report_claim(&mut failures, "E10", e10_durability::check_claims(&result));
        let json = e10_durability::to_json(&result);
        match std::fs::write("BENCH_e10.json", &json) {
            Ok(()) => println!("wrote BENCH_e10.json"),
            Err(e) => println!("could not write BENCH_e10.json: {e}"),
        }
        println!(
            "claim: snapshot recovery ≥ 1.5x faster than full WAL replay, reports identical\n"
        );
    }

    if want("--e11") {
        println!("== E11: sharded engine — shard-per-WAL ingest throughput ====================\n");
        let result = e11_sharding::run();
        println!("{}", e11_sharding::render(&result));
        report_claim(&mut failures, "E11", e11_sharding::check_claims(&result));
        let json = e11_sharding::to_json(&result);
        match std::fs::write("BENCH_e11.json", &json) {
            Ok(()) => println!("wrote BENCH_e11.json"),
            Err(e) => println!("could not write BENCH_e11.json: {e}"),
        }
        println!(
            "claim: reports identical at every shard count; multi-shard throughput >= 1x \
             single-shard on multicore hosts\n"
        );
    }

    if want("--e12") {
        println!("== E12: wire protocol — loopback TCP ingest vs in-process ===================\n");
        let result = e12_net::run();
        println!("{}", e12_net::render(&result));
        report_claim(&mut failures, "E12", e12_net::check_claims(&result));
        let json = e12_net::to_json(&result);
        match std::fs::write("BENCH_e12.json", &json) {
            Ok(()) => println!("wrote BENCH_e12.json"),
            Err(e) => println!("could not write BENCH_e12.json: {e}"),
        }
        println!(
            "claim: reports identical over the wire; loopback throughput within a reported \
             factor of in-process ingest\n"
        );
    }

    if want("--e13") {
        println!("== E13: observability — stage latency breakdown + overhead gate =============\n");
        let result = e13_obs::run();
        println!("{}", e13_obs::render(&result));
        report_claim(&mut failures, "E13", e13_obs::check_claims(&result));
        let json = e13_obs::to_json(&result);
        match std::fs::write("BENCH_e13.json", &json) {
            Ok(()) => println!("wrote BENCH_e13.json"),
            Err(e) => println!("could not write BENCH_e13.json: {e}"),
        }
        println!(
            "claim: every hot stage histogram is live at 1 and 4 shards; always-on \
             instrumentation costs <= 3% ingest throughput\n"
        );
    }

    if failures.is_empty() {
        println!("all checked paper claims reproduced");
    } else {
        println!("CLAIM CHECK FAILURES:");
        for f in &failures {
            println!("  {f}");
        }
        std::process::exit(1);
    }
}

fn report_claim(failures: &mut Vec<String>, exp: &str, r: Result<(), String>) {
    match r {
        Ok(()) => println!("[{exp}] paper-shape claims hold"),
        Err(e) => {
            println!("[{exp}] CLAIM FAILED: {e}");
            failures.push(format!("{exp}: {e}"));
        }
    }
}
