//! # `kojak-bench` — experiment harness
//!
//! One module per experiment of DESIGN.md §4 (E1–E7), each reproducing a
//! figure, table or quantitative claim of the paper. The `harness` binary
//! prints the paper-style tables (recorded in EXPERIMENTS.md); the
//! criterion benches in `benches/` measure the real wall-clock performance
//! of the underlying machinery.

pub mod data;
pub mod experiments;
pub mod table;

pub use table::Table;
