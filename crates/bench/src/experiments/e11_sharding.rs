//! E11 — sharding: ingest throughput of the shard-per-WAL engine.
//!
//! The ROADMAP's multi-node sharding item, measured through the new
//! engine API: the same multi-version event stream is ingested into a
//! `ShardedSession<DurableSession>` (one WAL + snapshot pair per shard)
//! at 1/2/4/8 shards, timing ingestion + the final analysis flush.
//! Version-affine routing spreads the stream's program versions over the
//! shards, so WAL appends, store building and property evaluation all
//! proceed in parallel across shards.
//!
//! Claims checked:
//! * the merged reports are canonically identical at every shard count
//!   (sharding never changes an analysis result);
//! * on a multicore host (≥ 4), the best multi-shard configuration is at
//!   least as fast as a single shard; on smaller hosts the claim degrades
//!   to a bounded overhead (parallelism cannot help a single core, but
//!   sharding must not wreck throughput either).

use crate::table::Table;
use cosy::AnalysisReport;
use engine::{AnalysisEngine, ShardedConfig, ShardedSession};
use online::replay::events_for_run;
use online::{DurableConfig, FsyncPolicy, RunKey, SessionConfig, TraceEvent};
use perfdata::{Store, TestRunId};
use std::collections::HashMap;
use std::path::PathBuf;
use std::time::Instant;

/// Shard counts swept.
pub const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// Ingestion batch size (the pipeline's default unit of work).
const BATCH: usize = 256;
/// Timing iterations (best-of).
const ITERS: usize = 3;

/// One row of the sweep.
#[derive(Debug, Clone)]
pub struct E11Row {
    /// Shard count.
    pub shards: usize,
    /// Best ns/event for ingest + final flush.
    pub ns_per_event: u64,
    /// Derived events/second.
    pub events_per_sec: u64,
    /// Throughput relative to the 1-shard row.
    pub speedup: f64,
}

/// Measured outcome of the sharding experiment.
#[derive(Debug, Clone)]
pub struct E11Result {
    /// Events in the stream.
    pub events: u64,
    /// Program versions in the stream (the units the router spreads).
    pub versions: usize,
    /// Host parallelism the measurement ran under.
    pub cores: usize,
    /// One row per shard count.
    pub rows: Vec<E11Row>,
    /// Best multi-shard speedup vs the single shard.
    pub best_multi_speedup: f64,
    /// Are the merged reports canonically identical at every shard count?
    pub reports_identical: bool,
    /// The multi-shard speedup gate is skipped (annotated, not silently
    /// passed) when the host cannot run two shards in parallel.
    pub speedup_gate_skipped: bool,
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("kojak-e11-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A multi-version workload: several simulated programs, interleaved into
/// one stream the router can spread over shards.
pub fn multi_version_stream() -> (Store, Vec<TraceEvent>) {
    use apprentice_sim::{archetypes, simulate_program, MachineModel, ProgramGenerator};
    let machine = MachineModel::t3e_900();
    let mut store = Store::new();
    for seed in 0..4u64 {
        let gen = ProgramGenerator {
            seed: 100 + seed,
            functions: 2,
            max_depth: 3,
            max_fanout: 3,
            base_work: 0.01,
            comm_probability: 0.6,
        };
        simulate_program(&mut store, &gen.generate(), &machine, &[1, 4, 8]);
    }
    simulate_program(&mut store, &archetypes::particle_mc(7), &machine, &[1, 8]);
    simulate_program(&mut store, &archetypes::stencil3d(9), &machine, &[1, 8]);

    // Round-robin interleave of the per-run streams: every shard sees
    // work throughout the stream, as concurrent producers would deliver.
    let mut streams: Vec<std::vec::IntoIter<TraceEvent>> = (0..store.runs.len() as u32)
        .map(|r| events_for_run(&store, TestRunId(r)).into_iter())
        .collect();
    let mut events = Vec::new();
    loop {
        let mut drained = true;
        for s in &mut streams {
            if let Some(e) = s.next() {
                events.push(e);
                drained = false;
            }
        }
        if drained {
            break;
        }
    }
    (store, events)
}

/// Id-free report projection (shard-local stores allocate their own arena
/// ids). Shared with E12, which compares across producer interleavings.
pub(crate) fn canonical(reports: &HashMap<RunKey, AnalysisReport>) -> Vec<String> {
    let mut out: Vec<String> = reports
        .iter()
        .map(|(key, r)| {
            let entries: Vec<String> = r
                .entries
                .iter()
                .map(|e| {
                    format!(
                        "{}:{}@{}={:x}",
                        e.rank,
                        e.property,
                        e.context.label,
                        e.severity.to_bits()
                    )
                })
                .collect();
            format!(
                "{key} {} pe{} ref{} cost{:x} skip{} [{}]",
                r.program,
                r.no_pe,
                r.reference_pe,
                r.total_cost.to_bits(),
                r.skipped,
                entries.join(";")
            )
        })
        .collect();
    out.sort();
    out
}

fn ingest_once(events: &[TraceEvent], shards: usize, iter: usize) -> (u64, Vec<String>) {
    let dir = scratch(&format!("s{shards}-i{iter}"));
    let config = ShardedConfig {
        shards,
        durable: DurableConfig {
            session: SessionConfig::default(),
            fsync: FsyncPolicy::Never,
            snapshot_every_flushes: 0,
            faults: Default::default(),
        },
    };
    let (engine, _) = ShardedSession::open(&dir, config).expect("open sharded engine");
    let t = Instant::now();
    for batch in events.chunks(BATCH) {
        engine.ingest_batch(batch).expect("ingest");
    }
    engine.flush().expect("flush");
    let elapsed = t.elapsed().as_nanos() as u64;
    let reports = canonical(&engine.reports());
    drop(engine);
    let _ = std::fs::remove_dir_all(&dir);
    (elapsed, reports)
}

/// Run the experiment.
pub fn run() -> E11Result {
    let (store, events) = multi_version_stream();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let mut rows = Vec::new();
    let mut baseline_reports: Option<Vec<String>> = None;
    let mut reports_identical = true;
    let mut single_ns = 0u64;
    for &shards in &SHARD_COUNTS {
        let mut best = u64::MAX;
        let mut reports = Vec::new();
        for iter in 0..ITERS {
            let (elapsed, r) = ingest_once(&events, shards, iter);
            best = best.min(elapsed);
            reports = r;
        }
        match &baseline_reports {
            None => baseline_reports = Some(reports),
            Some(base) => reports_identical &= &reports == base,
        }
        let ns_per_event = best / events.len() as u64;
        if shards == 1 {
            single_ns = ns_per_event;
        }
        rows.push(E11Row {
            shards,
            ns_per_event,
            events_per_sec: 1_000_000_000 / ns_per_event.max(1),
            speedup: single_ns as f64 / ns_per_event.max(1) as f64,
        });
    }
    let best_multi_speedup = rows
        .iter()
        .filter(|r| r.shards > 1)
        .map(|r| r.speedup)
        .fold(0.0, f64::max);

    E11Result {
        events: events.len() as u64,
        versions: store.versions.len(),
        cores,
        rows,
        best_multi_speedup,
        reports_identical,
        speedup_gate_skipped: cores < 2,
    }
}

/// Render the E11 table.
pub fn render(r: &E11Result) -> String {
    let mut table = Table::new(&["shards", "ns/event", "events/s", "speedup vs 1 shard"]);
    for row in &r.rows {
        table.row(vec![
            row.shards.to_string(),
            row.ns_per_event.to_string(),
            row.events_per_sec.to_string(),
            format!("{:.2}x", row.speedup),
        ]);
    }
    format!(
        "{}\n{} events over {} program versions, {} host core(s); merged reports identical \
         at every shard count: {}{}\n",
        table.render(),
        r.events,
        r.versions,
        r.cores,
        if r.reports_identical { "yes" } else { "NO" },
        if r.speedup_gate_skipped {
            "\nspeedup gate SKIPPED: single-core host, parallel shards cannot win by construction"
        } else {
            ""
        }
    )
}

/// Machine-readable JSON for `BENCH_e11.json`.
pub fn to_json(r: &E11Result) -> String {
    let rows: Vec<String> = r
        .rows
        .iter()
        .map(|row| {
            format!(
                "{{ \"shards\": {}, \"ns_per_event\": {}, \"events_per_sec\": {}, \"speedup\": {:.3} }}",
                row.shards, row.ns_per_event, row.events_per_sec, row.speedup
            )
        })
        .collect();
    format!(
        "{{\n  \"experiment\": \"e11_sharding\",\n  \
         \"events\": {},\n  \
         \"versions\": {},\n  \
         \"cores\": {},\n  \
         \"sweep\": [ {} ],\n  \
         \"best_multi_speedup\": {:.3},\n  \
         \"reports_identical\": {},\n  \
         \"speedup_gate\": \"{}\",\n  \
         \"regenerate\": \"cargo run --release -p kojak-bench --bin harness -- --e11\"\n}}\n",
        r.events,
        r.versions,
        r.cores,
        rows.join(", "),
        r.best_multi_speedup,
        r.reports_identical,
        if r.speedup_gate_skipped {
            "skipped: single-core host, parallel shards cannot win by construction"
        } else {
            "enforced"
        }
    )
}

/// The PR-level claims: sharding never changes an analysis result, and it
/// pays its way — linear-ish on multicore hosts, bounded overhead on a
/// single core (where parallel shards cannot win by construction).
pub fn check_claims(r: &E11Result) -> Result<(), String> {
    if !r.reports_identical {
        return Err("merged reports differ across shard counts".into());
    }
    // A single hardware thread cannot run two shards in parallel: the
    // speedup gate degrades to an annotated skip (recorded in the JSON),
    // never to a silently lowered bar.
    if r.speedup_gate_skipped {
        return Ok(());
    }
    let floor = if r.cores >= 4 { 1.0 } else { 0.35 };
    if r.best_multi_speedup < floor {
        return Err(format!(
            "best multi-shard throughput only {:.2}x of single-shard (floor {:.2}x on {} core(s))",
            r.best_multi_speedup, floor, r.cores
        ));
    }
    Ok(())
}
