//! E2 — §5 insertion comparison across database backends.
//!
//! Paper: "We ran experiments with four different databases: Oracle 7, MS
//! Access, MS SQL server, and Postgres. For all those databases, except MS
//! Access, the setup was in a distributed fashion. … While Oracle was a
//! factor of 2 slower than MS SQL server and Postgres, MS Access
//! outperformed all those systems. Insertion of performance information was
//! a factor of 20 faster than with the Oracle server."

use crate::data;
use crate::table::Table;
use asl_eval::CosyData;
use asl_sql::loader;
use cosy::suite::standard_suite;
use reldb::remote::{connection::share, ApiBinding, BackendProfile, Connection};
use reldb::Database;

/// One backend's measured insertion cost.
#[derive(Debug, Clone)]
pub struct E2Row {
    /// Backend name.
    pub backend: &'static str,
    /// API binding used (JDBC for the networked servers, native for the
    /// in-process Access setup, as in the paper).
    pub binding: &'static str,
    /// Rows transferred.
    pub rows: usize,
    /// Virtual-clock seconds for the full transfer.
    pub virtual_secs: f64,
}

/// Run the experiment at a given dataset scale (number of versions per
/// archetype).
pub fn run(scale: usize) -> Vec<E2Row> {
    let (store, _) = data::mixed_store(scale, &[1, 4, 16, 64]);
    let spec = standard_suite();
    let schema = asl_sql::generate_schema(&spec.model).expect("schema");
    let cosy_data = CosyData::new(&store);
    let stmts = loader::insert_statements(&schema, &spec.model, &cosy_data).expect("statements");

    let setups = [
        (BackendProfile::oracle7(), ApiBinding::jdbc()),
        (BackendProfile::msaccess(), ApiBinding::native_c()),
        (BackendProfile::mssql7(), ApiBinding::jdbc()),
        (BackendProfile::postgres(), ApiBinding::jdbc()),
    ];
    let mut rows = Vec::new();
    for (profile, binding) in setups {
        let db = share(Database::new());
        let mut conn = Connection::connect(db, profile.clone(), binding.clone());
        for ddl in schema.ddl() {
            conn.execute(&ddl).expect("ddl");
        }
        conn.reset_clock();
        for s in &stmts {
            conn.execute(s).expect("insert");
        }
        rows.push(E2Row {
            backend: profile.name,
            binding: binding.name,
            rows: stmts.len(),
            virtual_secs: conn.elapsed(),
        });
    }
    rows
}

/// Render the E2 table (ratios relative to Oracle 7, as the paper reports).
pub fn render(rows: &[E2Row]) -> String {
    let oracle = rows
        .iter()
        .find(|r| r.backend.starts_with("Oracle"))
        .map(|r| r.virtual_secs)
        .unwrap_or(1.0);
    let mut t = Table::new(&[
        "backend",
        "binding",
        "rows",
        "insert [virt s]",
        "per row [ms]",
        "speedup vs Oracle",
    ]);
    for r in rows {
        t.row(vec![
            r.backend.to_string(),
            r.binding.to_string(),
            r.rows.to_string(),
            format!("{:.3}", r.virtual_secs),
            format!("{:.3}", r.virtual_secs / r.rows as f64 * 1e3),
            format!("{:.1}x", oracle / r.virtual_secs),
        ]);
    }
    t.render()
}

/// The two paper claims as machine-checkable predicates (used by tests and
/// EXPERIMENTS.md).
pub fn check_claims(rows: &[E2Row]) -> Result<(), String> {
    let get = |prefix: &str| {
        rows.iter()
            .find(|r| r.backend.starts_with(prefix))
            .map(|r| r.virtual_secs)
            .ok_or_else(|| format!("backend {prefix} missing"))
    };
    let oracle = get("Oracle")?;
    let mssql = get("MS SQL")?;
    let postgres = get("Postgres")?;
    let access = get("MS Access")?;
    let r1 = oracle / mssql;
    let r2 = oracle / postgres;
    let r3 = oracle / access;
    if !(1.5..=2.5).contains(&r1) {
        return Err(format!("Oracle/MSSQL ratio {r1:.2} outside ~2x"));
    }
    if !(1.4..=2.5).contains(&r2) {
        return Err(format!("Oracle/Postgres ratio {r2:.2} outside ~2x"));
    }
    if !(13.0..=30.0).contains(&r3) {
        return Err(format!("Oracle/Access ratio {r3:.2} outside ~20x"));
    }
    Ok(())
}
