//! E4 — §5 work distribution: client-side evaluation vs full SQL
//! translation.
//!
//! Paper: "The overall performance depends very much on the work
//! distribution between the client and the database. It is a significant
//! advantage to translate the conditions of performance properties entirely
//! into SQL queries instead of first accessing the data components and
//! evaluating the expressions in the analysis tool."

use crate::data;
use crate::experiments::strategies::{client_naive, client_side, sql_batched, sql_per_context};
use crate::table::Table;
use reldb::remote::{connection::share, ApiBinding, BackendProfile, Connection};

/// One program scale of the comparison.
#[derive(Debug, Clone)]
pub struct E4Row {
    /// Instrumented regions of the analyzed program.
    pub regions: usize,
    /// Dynamic rows in the database.
    pub db_rows: usize,
    /// Records accessed by the naive client.
    pub naive_records: usize,
    /// Naive client cost — the paper's strawman (virtual ms).
    pub naive_ms: f64,
    /// Bulk-prefetch client cost (virtual ms).
    pub client_ms: f64,
    /// SQL per-context strategy cost (virtual ms).
    pub per_context_ms: f64,
    /// SQL batched strategy cost (virtual ms).
    pub batched_ms: f64,
    /// Whether all strategies agreed on the held properties.
    pub agreed: bool,
}

/// Run the comparison across program sizes (Oracle 7 over JDBC, the
/// paper's primary setup). `scales` are generator function counts; region
/// counts grow roughly proportionally.
pub fn run(scales: &[usize]) -> Vec<E4Row> {
    let mut out = Vec::new();
    for &scale in scales {
        let (store, version) = data::generated_store(scale, &[1, 4, 16, 64]);
        let (spec, schema, db) = data::loaded_database(&store);
        let shared = share(db);
        let run = *store.versions[version.index()].runs.last().unwrap();

        let naive = client_naive(
            &BackendProfile::oracle7(),
            &ApiBinding::jdbc(),
            &store,
            &spec,
            &schema,
            version,
            run,
        )
        .expect("naive client");

        let mut conn = Connection::connect(
            shared.clone(),
            BackendProfile::oracle7(),
            ApiBinding::jdbc(),
        );
        let client = client_side(&mut conn, &store, &spec, version, run).expect("client");

        let mut conn = Connection::connect(
            shared.clone(),
            BackendProfile::oracle7(),
            ApiBinding::jdbc(),
        );
        let per_ctx =
            sql_per_context(&mut conn, &store, &spec, &schema, version, run).expect("per-ctx");

        let mut conn = Connection::connect(shared, BackendProfile::oracle7(), ApiBinding::jdbc());
        let batched =
            sql_batched(&mut conn, &store, &spec, &schema, version, run).expect("batched");

        let agreed = client.fingerprint() == per_ctx.fingerprint()
            && client.fingerprint() == batched.fingerprint()
            && client.fingerprint() == naive.fingerprint();

        out.push(E4Row {
            regions: store.regions.len(),
            db_rows: data::dynamic_row_count(&store),
            naive_records: naive.records,
            naive_ms: naive.virtual_secs * 1e3,
            client_ms: client.virtual_secs * 1e3,
            per_context_ms: per_ctx.virtual_secs * 1e3,
            batched_ms: batched.virtual_secs * 1e3,
            agreed,
        });
    }
    out
}

/// Render the E4 table.
pub fn render(rows: &[E4Row]) -> String {
    let mut t = Table::new(&[
        "regions",
        "db rows",
        "records",
        "naive client [ms]",
        "bulk client [ms]",
        "SQL/ctx [ms]",
        "SQL/batch [ms]",
        "advantage",
        "agree",
    ]);
    for r in rows {
        t.row(vec![
            r.regions.to_string(),
            r.db_rows.to_string(),
            r.naive_records.to_string(),
            format!("{:.1}", r.naive_ms),
            format!("{:.1}", r.client_ms),
            format!("{:.1}", r.per_context_ms),
            format!("{:.1}", r.batched_ms),
            format!("{:.1}x", r.naive_ms / r.batched_ms),
            if r.agreed { "yes" } else { "NO" }.to_string(),
        ]);
    }
    t.render()
}

/// The §5 claim: translating conditions entirely into SQL is a significant
/// advantage over accessing the data components and evaluating in the tool
/// — and the advantage grows with program size.
pub fn check_claims(rows: &[E4Row]) -> Result<(), String> {
    for r in rows {
        if !r.agreed {
            return Err(format!("{} regions: strategies disagreed", r.regions));
        }
        if r.batched_ms >= r.naive_ms {
            return Err(format!(
                "{} regions: batched SQL ({:.1} ms) did not beat on-demand client \
                 evaluation ({:.1} ms)",
                r.regions, r.batched_ms, r.naive_ms
            ));
        }
    }
    if let Some(last) = rows.last() {
        let adv = last.naive_ms / last.batched_ms;
        if adv < 5.0 {
            return Err(format!(
                "advantage at the largest program only {adv:.1}x (expected \"significant\")"
            ));
        }
    }
    Ok(())
}
