//! E5 — the COSY analysis product (§3/§4): the severity-ranked property
//! list with problem flags and the bottleneck, for each archetype.

use crate::table::Table;
use apprentice_sim::{archetypes, simulate_program, MachineModel};
use cosy::{Analyzer, Backend, ProblemThreshold};
use perfdata::Store;

/// The per-archetype analysis output.
#[derive(Debug, Clone)]
pub struct E5Result {
    /// Application name.
    pub app: String,
    /// Rendered COSY report.
    pub report_text: String,
    /// Bottleneck property name.
    pub bottleneck: Option<String>,
    /// Number of performance problems.
    pub problems: usize,
    /// Whether the compiled, interpreter and SQL backends produced the
    /// same ranking.
    pub backends_agree: bool,
}

/// Run the full analysis for every archetype at 64 PEs. The compiled IR is
/// the production engine; the interpreter oracle and the SQL translation
/// are evaluated alongside and must agree.
pub fn run() -> Vec<E5Result> {
    let machine = MachineModel::t3e_900();
    let mut out = Vec::new();
    for model in archetypes::all(42) {
        let mut store = Store::new();
        let version = simulate_program(&mut store, &model, &machine, &[1, 4, 16, 64]);
        let run = *store.versions[version.index()].runs.last().unwrap();
        let analyzer = Analyzer::new(&store, version).expect("analyzer");
        let a = analyzer
            .analyze(run, Backend::Compiled, ProblemThreshold::default())
            .expect("compiled analysis");
        let oracle = analyzer
            .analyze(run, Backend::Interpreter, ProblemThreshold::default())
            .expect("interpreter analysis");
        let b = analyzer
            .analyze(run, Backend::Sql, ProblemThreshold::default())
            .expect("sql analysis");
        // Compiled vs interpreter: identical arithmetic, exact equality.
        let agree = a == oracle
            && a.entries.len() == b.entries.len()
            && a.entries.iter().zip(&b.entries).all(|(x, y)| {
                x.property == y.property
                    && x.context.label == y.context.label
                    && (x.severity - y.severity).abs() <= 1e-9 * x.severity.abs().max(1.0)
            });
        out.push(E5Result {
            app: model.name.clone(),
            report_text: cosy::report::render_text(&a),
            bottleneck: a.bottleneck().map(|e| e.property.clone()),
            problems: a.problems().count(),
            backends_agree: agree,
        });
    }
    out
}

/// Render the E5 summary table (full reports printed separately).
pub fn render_summary(results: &[E5Result]) -> String {
    let mut t = Table::new(&["application", "bottleneck", "problems", "backends agree"]);
    for r in results {
        t.row(vec![
            r.app.clone(),
            r.bottleneck.clone().unwrap_or_else(|| "-".to_string()),
            r.problems.to_string(),
            if r.backends_agree { "yes" } else { "NO" }.to_string(),
        ]);
    }
    t.render()
}

/// Expected bottleneck signatures per archetype.
pub fn check_claims(results: &[E5Result]) -> Result<(), String> {
    for r in results {
        if !r.backends_agree {
            return Err(format!("{}: backends disagree", r.app));
        }
        if r.bottleneck.is_none() {
            return Err(format!("{}: no bottleneck found at 64 PEs", r.app));
        }
        if r.problems == 0 {
            return Err(format!("{}: no problems at 64 PEs", r.app));
        }
    }
    Ok(())
}
