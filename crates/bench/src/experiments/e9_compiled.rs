//! E9 — compiled-IR evaluation vs the tree-walking interpreter.
//!
//! Two workloads, both run through the *same* analyzers with only the
//! evaluation backend switched:
//!
//! * **full analysis** (the E5 shape): a complete COSY ranked analysis of
//!   the 64-PE particle-MC run on a 4-run store;
//! * **online append** (the E8 shape): one 64-PE run streamed into a
//!   session already holding 50 runs, incremental flush included.
//!
//! The PR-level claim checked here: the compiled path is **≥ 2× faster**
//! than the interpreter on both, with identical reports. Best-of-N over
//! several iterations; the harness writes the numbers to `BENCH_e9.json`
//! so the perf trajectory is tracked across PRs.

use crate::table::Table;
use cosy::{Analyzer, Backend, ProblemThreshold};
use online::replay::events_for_run;
use online::{OnlineSession, RunKey, SessionConfig};
use perfdata::TestRunId;
use std::time::Instant;

/// Best observed wall-clock (ns) and a result of one timed closure. The
/// minimum over many iterations is the noise-robust estimator for a
/// shared machine: scheduler interference only ever adds time, so the
/// fastest run bounds the intrinsic cost.
fn best_ns<T>(iters: usize, mut f: impl FnMut() -> T) -> (u64, T) {
    assert!(iters > 0);
    let mut best = u64::MAX;
    let mut last = None;
    for _ in 0..iters {
        let t = Instant::now();
        let out = f();
        best = best.min(t.elapsed().as_nanos() as u64);
        last = Some(out);
    }
    (best, last.expect("iters > 0"))
}

/// Measured outcome of the interpreter-vs-compiled comparison.
#[derive(Debug, Clone)]
pub struct E9Result {
    /// Best wall-clock of one full E5-style analysis, interpreter.
    pub full_interp_ns: u64,
    /// Best wall-clock of one full E5-style analysis, compiled.
    pub full_compiled_ns: u64,
    /// `full_interp_ns / full_compiled_ns`.
    pub full_speedup: f64,
    /// Best wall-clock of one E8-style single-run append, interpreter.
    pub append_interp_ns: u64,
    /// Best wall-clock of one E8-style single-run append, compiled.
    pub append_compiled_ns: u64,
    /// `append_interp_ns / append_compiled_ns`.
    pub append_speedup: f64,
    /// Do the two engines produce identical reports on both workloads?
    pub reports_identical: bool,
}

/// Runs already in the store for the append scenario (matches E8).
const APPEND_BASE_RUNS: usize = 50;
/// Timing iterations per measurement.
const ITERS_FULL: usize = 15;
const ITERS_APPEND: usize = 25;
/// Untimed appends before sampling (cold caches, first-touch page faults).
const WARMUP_APPENDS: u64 = 3;

/// Time (best-of-N) the incremental re-analysis (flush) of one E8-style
/// single-run append through a session using `backend`. Ingestion bookkeeping (event
/// application, dirty tracking) is byte-for-byte the same code on both
/// backends and runs outside the timed window — the measurement isolates
/// the evaluation core the backends actually differ in.
fn append_best(backend: Backend) -> (u64, cosy::AnalysisReport) {
    let mut pe_counts: Vec<u32> = (1..=APPEND_BASE_RUNS as u32).collect();
    pe_counts.push(64);
    let (store, _version) = crate::data::particle_store(&pe_counts);
    let appended = TestRunId(APPEND_BASE_RUNS as u32);
    let template = events_for_run(&store, appended);

    let session = OnlineSession::new(SessionConfig {
        threshold: ProblemThreshold::default(),
        auto_flush_events: 0,
        backend,
        ..SessionConfig::default()
    });
    for r in 0..APPEND_BASE_RUNS as u32 {
        session
            .ingest_batch(&events_for_run(&store, TestRunId(r)))
            .expect("base ingest");
    }
    session.flush().expect("base flush");

    let mut samples = Vec::with_capacity(ITERS_APPEND);
    for i in 0..WARMUP_APPENDS + ITERS_APPEND as u64 {
        let key = RunKey(5_000_000 + i);
        let events: Vec<_> = template.iter().map(|e| e.clone().with_run(key)).collect();
        session.ingest_batch(&events).expect("append ingest");
        let t = Instant::now();
        session.flush().expect("append flush");
        if i >= WARMUP_APPENDS {
            samples.push(t.elapsed().as_nanos() as u64);
        }
    }
    let best = samples.into_iter().min().expect("samples non-empty");
    // Live report of the last appended run, for cross-backend comparison
    // (both backends replay the identical key/event sequence).
    let last_key = RunKey(5_000_000 + WARMUP_APPENDS + ITERS_APPEND as u64 - 1);
    let report = session
        .report(last_key)
        .expect("appended run has a live report");
    (best, report)
}

/// Run the comparison.
pub fn run() -> E9Result {
    let threshold = ProblemThreshold::default();

    // --- full analysis (E5 shape) --------------------------------------
    let (store, version) = crate::data::particle_store(&[1, 4, 16, 64]);
    let run = *store.versions[version.index()].runs.last().unwrap();
    let analyzer = Analyzer::new(&store, version).expect("analyzer");
    // Warm the one-time lowering so the measurement shows steady-state
    // per-analysis cost (the lowering is shared across runs/flushes).
    let _ = analyzer.compiled_spec();

    let (full_interp_ns, report_interp) = best_ns(ITERS_FULL, || {
        analyzer
            .analyze(run, Backend::Interpreter, threshold)
            .expect("interpreter analysis")
    });
    let (full_compiled_ns, report_compiled) = best_ns(ITERS_FULL, || {
        analyzer
            .analyze(run, Backend::Compiled, threshold)
            .expect("compiled analysis")
    });
    // --- online single-run append (E8 shape) ---------------------------
    let (append_interp_ns, append_report_interp) = append_best(Backend::Interpreter);
    let (append_compiled_ns, append_report_compiled) = append_best(Backend::Compiled);
    let reports_identical =
        report_interp == report_compiled && append_report_interp == append_report_compiled;

    E9Result {
        full_interp_ns,
        full_compiled_ns,
        full_speedup: full_interp_ns as f64 / full_compiled_ns.max(1) as f64,
        append_interp_ns,
        append_compiled_ns,
        append_speedup: append_interp_ns as f64 / append_compiled_ns.max(1) as f64,
        reports_identical,
    }
}

/// Render the E9 table.
pub fn render(r: &E9Result) -> String {
    let ms = |ns: u64| format!("{:.2} ms", ns as f64 / 1e6);
    let mut t = Table::new(&["workload", "interpreter", "compiled IR", "speedup"]);
    t.row(vec![
        "E5 full analysis (64-PE run)".into(),
        ms(r.full_interp_ns),
        ms(r.full_compiled_ns),
        format!("{:.1}x", r.full_speedup),
    ]);
    t.row(vec![
        format!("E8 incremental flush ({APPEND_BASE_RUNS}+1 runs)"),
        ms(r.append_interp_ns),
        ms(r.append_compiled_ns),
        format!("{:.1}x", r.append_speedup),
    ]);
    format!(
        "{}\nreports identical: {}\n",
        t.render(),
        if r.reports_identical { "yes" } else { "NO" }
    )
}

/// Machine-readable JSON for `BENCH_e9.json` (best-of-N ns + speedup ratios).
pub fn to_json(r: &E9Result) -> String {
    format!(
        "{{\n  \"experiment\": \"e9_compiled_eval\",\n  \
         \"full_analysis\": {{ \"interpreter_ns_best\": {}, \"compiled_ns_best\": {}, \"speedup\": {:.3} }},\n  \
         \"online_append\": {{ \"interpreter_ns_best\": {}, \"compiled_ns_best\": {}, \"speedup\": {:.3} }},\n  \
         \"reports_identical\": {},\n  \
         \"regenerate\": \"cargo run --release -p kojak-bench --bin harness -- --e9\"\n}}\n",
        r.full_interp_ns,
        r.full_compiled_ns,
        r.full_speedup,
        r.append_interp_ns,
        r.append_compiled_ns,
        r.append_speedup,
        r.reports_identical
    )
}

/// The PR-level claim: ≥ 2x on both workloads, identical reports.
pub fn check_claims(r: &E9Result) -> Result<(), String> {
    if !r.reports_identical {
        return Err("compiled and interpreted reports differ".into());
    }
    if r.full_speedup < 2.0 {
        return Err(format!(
            "full analysis only {:.2}x faster compiled ({} ns vs {} ns)",
            r.full_speedup, r.full_compiled_ns, r.full_interp_ns
        ));
    }
    if r.append_speedup < 2.0 {
        return Err(format!(
            "online append only {:.2}x faster compiled ({} ns vs {} ns)",
            r.append_speedup, r.append_compiled_ns, r.append_interp_ns
        ));
    }
    Ok(())
}
