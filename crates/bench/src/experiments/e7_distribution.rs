//! E7 (ablation) — when does each work distribution win?
//!
//! §5 observes that the right split between client and database depends on
//! the setup. This ablation varies the backend (networked Oracle vs
//! in-process Access) and the database size, and reports all three
//! strategies. Expected shape: the batched SQL translation wins everywhere
//! it matters (networked server, growing data); the client strategy is
//! competitive only when the database is tiny and local (no round trips to
//! amortize).

use crate::data;
use crate::experiments::strategies::{client_naive, client_side, sql_batched, sql_per_context};
use crate::table::Table;
use reldb::remote::{connection::share, ApiBinding, BackendProfile, Connection};

/// One cell of the ablation grid.
#[derive(Debug, Clone)]
pub struct E7Row {
    /// Backend name.
    pub backend: &'static str,
    /// Instrumented regions of the analyzed program.
    pub regions: usize,
    /// Naive (on-demand) client strategy (virtual ms).
    pub naive_ms: f64,
    /// Bulk-prefetch client strategy (virtual ms).
    pub client_ms: f64,
    /// Per-context SQL (virtual ms).
    pub per_context_ms: f64,
    /// Batched SQL (virtual ms).
    pub batched_ms: f64,
}

impl E7Row {
    /// Name of the cheapest strategy.
    pub fn winner(&self) -> &'static str {
        let mut best = ("naive client", self.naive_ms);
        for (name, v) in [
            ("bulk client", self.client_ms),
            ("SQL/ctx", self.per_context_ms),
            ("SQL/batch", self.batched_ms),
        ] {
            if v < best.1 {
                best = (name, v);
            }
        }
        best.0
    }
}

/// Run the grid over generated program sizes (`scales` = generator
/// function counts).
pub fn run(scales: &[usize]) -> Vec<E7Row> {
    let mut out = Vec::new();
    for &scale in scales {
        let (store, version) = data::generated_store(scale, &[1, 4, 16, 64]);
        let (spec, schema, db) = data::loaded_database(&store);
        let shared = share(db);
        let run = *store.versions[version.index()].runs.last().unwrap();

        for (profile, binding) in [
            (BackendProfile::oracle7(), ApiBinding::jdbc()),
            (BackendProfile::msaccess(), ApiBinding::native_c()),
        ] {
            let naive = client_naive(&profile, &binding, &store, &spec, &schema, version, run)
                .expect("naive client");
            let mut conn = Connection::connect(shared.clone(), profile.clone(), binding.clone());
            let client = client_side(&mut conn, &store, &spec, version, run).expect("client");
            let mut conn = Connection::connect(shared.clone(), profile.clone(), binding.clone());
            let per_ctx =
                sql_per_context(&mut conn, &store, &spec, &schema, version, run).expect("per-ctx");
            let mut conn = Connection::connect(shared.clone(), profile.clone(), binding.clone());
            let batched =
                sql_batched(&mut conn, &store, &spec, &schema, version, run).expect("batched");
            assert_eq!(
                client.fingerprint(),
                batched.fingerprint(),
                "strategies must agree"
            );
            assert_eq!(
                naive.fingerprint(),
                batched.fingerprint(),
                "strategies must agree"
            );
            out.push(E7Row {
                backend: profile.name,
                regions: store.regions.len(),
                naive_ms: naive.virtual_secs * 1e3,
                client_ms: client.virtual_secs * 1e3,
                per_context_ms: per_ctx.virtual_secs * 1e3,
                batched_ms: batched.virtual_secs * 1e3,
            });
        }
    }
    out
}

/// Render the grid.
pub fn render(rows: &[E7Row]) -> String {
    let mut t = Table::new(&[
        "backend",
        "regions",
        "naive client [ms]",
        "bulk client [ms]",
        "SQL/ctx [ms]",
        "SQL/batch [ms]",
        "winner",
    ]);
    for r in rows {
        t.row(vec![
            r.backend.to_string(),
            r.regions.to_string(),
            format!("{:.2}", r.naive_ms),
            format!("{:.2}", r.client_ms),
            format!("{:.2}", r.per_context_ms),
            format!("{:.2}", r.batched_ms),
            r.winner().to_string(),
        ]);
    }
    t.render()
}

/// Shape claims of the ablation — "the overall performance depends very
/// much on the work distribution between the client and the database" (§5):
/// * batched SQL always beats per-context SQL;
/// * the naive on-demand client (the paper's strawman) always loses to the
///   batched translation;
/// * the in-process (MS Access) setup is far less sensitive to the choice
///   than the networked one — the spread between best and worst strategy
///   shrinks when round trips are free.
pub fn check_claims(rows: &[E7Row]) -> Result<(), String> {
    for r in rows {
        if r.batched_ms > r.per_context_ms {
            return Err(format!(
                "{} ({} regions): batching lost to per-context queries",
                r.backend, r.regions
            ));
        }
        if r.batched_ms >= r.naive_ms {
            return Err(format!(
                "{} ({} regions): naive client beat the batched translation",
                r.backend, r.regions
            ));
        }
    }
    // Spread comparison at the largest program size.
    let at_max = |prefix: &str| {
        rows.iter()
            .filter(|r| r.backend.starts_with(prefix))
            .max_by_key(|r| r.regions)
    };
    if let (Some(oracle), Some(access)) = (at_max("Oracle"), at_max("MS Access")) {
        let spread = |r: &E7Row| {
            let vals = [r.naive_ms, r.client_ms, r.per_context_ms, r.batched_ms];
            let max = vals.iter().cloned().fold(f64::MIN, f64::max);
            let min = vals.iter().cloned().fold(f64::MAX, f64::min);
            max / min
        };
        if spread(access) >= spread(oracle) {
            return Err(format!(
                "expected the local setup to be less sensitive: spread {:.1}x (Access) \
                 vs {:.1}x (Oracle)",
                spread(access),
                spread(oracle)
            ));
        }
    }
    Ok(())
}
