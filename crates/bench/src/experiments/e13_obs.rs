//! E13 — observability: stage-latency breakdown + instrumentation cost.
//!
//! PR 6's self-instrumentation layer (`kojak-obs`) times every pipeline
//! stage of the event lifecycle with lock-free histograms. This
//! experiment (a) reports the per-stage latency breakdown (p50/p99/max)
//! for the E11 multi-version ingest workload on a durable sharded engine
//! at 1 and 4 shards — the first measured answer to the ROADMAP's "where
//! does an ingested event's time go?" question — and (b) gates the cost
//! of the always-on instrumentation itself: ingest throughput with the
//! registry live vs. disabled through the runtime kill switch
//! ([`obs::set_enabled`]) must differ by at most a few percent.
//!
//! Claims checked:
//! * every hot stage histogram (apply, flush, WAL append, WAL fsync) is
//!   live at both shard counts — the breakdown cannot silently go dark
//!   (the breakdown leg fsyncs every 256 events for exactly this reason);
//! * instrumentation overhead ≤ 3% (best-of-N, alternating arms).

use crate::experiments::e11_sharding::multi_version_stream;
use engine::{AnalysisEngine, ShardedConfig, ShardedSession};
use obs::MetricsSnapshot;
use online::{DurableConfig, FsyncPolicy, RunKey, SessionConfig, TraceEvent};
use std::path::PathBuf;
use std::time::Instant;

/// Shard counts for the stage breakdown.
pub const SHARD_COUNTS: [usize; 2] = [1, 4];
/// Ingestion batch size (matches E11).
const BATCH: usize = 256;
/// Timing iterations per overhead arm (best-of). Five alternating
/// passes per arm: the flush-dominated ns/event swings ±15% between
/// passes on a loaded host, and the few-percent overhead signal needs
/// the quietest window of each arm, not an unlucky pairing.
const ITERS: usize = 5;
/// The overhead gate: enabled vs. disabled throughput within this.
pub const MAX_OVERHEAD_PCT: f64 = 3.0;

/// The stage histograms reported in the breakdown, in lifecycle order.
const STAGES: [&str; 5] = [
    "kojak_online_apply_ns",
    "kojak_online_flush_ns",
    "kojak_wal_append_ns",
    "kojak_wal_fsync_ns",
    "kojak_snapshot_write_ns",
];

/// One stage of the breakdown at one shard count.
#[derive(Debug, Clone)]
pub struct E13Stage {
    /// Shard count this row was measured at.
    pub shards: usize,
    /// Histogram name (`kojak_<layer>_<stage>_ns`).
    pub stage: &'static str,
    /// Recorded samples (merged over shards).
    pub count: u64,
    /// Median latency, ns (log-bucket upper bound, capped at the max).
    pub p50_ns: u64,
    /// 99th-percentile latency, ns.
    pub p99_ns: u64,
    /// Largest recorded sample, ns.
    pub max_ns: u64,
}

/// Measured outcome of the observability experiment.
#[derive(Debug, Clone)]
pub struct E13Result {
    /// Events in the stream.
    pub events: u64,
    /// Host parallelism the measurement ran under.
    pub cores: usize,
    /// Per-stage breakdown rows (both shard counts).
    pub stages: Vec<E13Stage>,
    /// Best ns/event with the registry live.
    pub enabled_ns_per_event: u64,
    /// Best ns/event with recording disabled via the kill switch.
    pub disabled_ns_per_event: u64,
    /// Throughput cost of instrumentation, percent (floored at 0 —
    /// measurement noise can make the enabled arm *faster*).
    pub overhead_pct: f64,
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("kojak-e13-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The E11 workload replicated `reps` times under remapped run keys
/// *and* version tags (each replica is a distinct program version —
/// reusing a version would put several runs at the same PE count into
/// one version and break the suite's unique-reference-run assumption):
/// long enough that per-pass fixed costs (engine open, final snapshot)
/// do not drown the per-event signal the overhead gate measures.
fn amplified_stream(reps: u64) -> Vec<TraceEvent> {
    use online::{TraceEvent as E, VersionTag};
    let (_store, events) = multi_version_stream();
    let mut out = Vec::with_capacity(events.len() * reps as usize);
    for rep in 0..reps {
        for event in &events {
            let mut event = event
                .clone()
                .with_run(RunKey(rep * 1_000_000 + event.run_key().0));
            if let E::RunStarted { version, .. } = &mut event {
                *version = VersionTag(rep * 1_000_000 + version.0);
            }
            out.push(event);
        }
    }
    out
}

/// One durable sharded ingest pass; returns (elapsed ns, merged metrics).
/// The timer covers ingest + flush; the checkpoint that exercises the
/// snapshot-write stage for the breakdown runs *outside* it (a multi-ms
/// snapshot write would swamp a per-event overhead measurement).
fn ingest_once(
    events: &[TraceEvent],
    shards: usize,
    tag: &str,
    fsync: FsyncPolicy,
) -> (u64, MetricsSnapshot) {
    let dir = scratch(&format!("s{shards}-{tag}"));
    let config = ShardedConfig {
        shards,
        durable: DurableConfig {
            session: SessionConfig::default(),
            fsync,
            snapshot_every_flushes: 0,
            faults: Default::default(),
        },
    };
    let (engine, _) = ShardedSession::open(&dir, config).expect("open sharded engine");
    let t = Instant::now();
    for batch in events.chunks(BATCH) {
        engine.ingest_batch(batch).expect("ingest");
    }
    engine.flush().expect("flush");
    let elapsed = t.elapsed().as_nanos() as u64;
    engine.checkpoint().expect("checkpoint");
    let metrics = engine.metrics();
    drop(engine);
    let _ = std::fs::remove_dir_all(&dir);
    (elapsed, metrics)
}

/// Run the experiment.
pub fn run() -> E13Result {
    let events = amplified_stream(8);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    // (a) Stage breakdown at each shard count. The breakdown leg runs
    // under the durable-deployment fsync policy (every 256 events) so the
    // fsync stage is exercised, not a dead row; the overhead arms below
    // stay at `Never` — a per-pass fsync cost would swamp the few-percent
    // instrumentation signal they gate.
    let mut stages = Vec::new();
    for &shards in &SHARD_COUNTS {
        let (_, metrics) = ingest_once(&events, shards, "breakdown", FsyncPolicy::EveryN(256));
        for stage in STAGES {
            let Some(h) = metrics.histogram(stage) else {
                continue;
            };
            stages.push(E13Stage {
                shards,
                stage,
                count: h.count,
                p50_ns: h.p50(),
                p99_ns: h.p99(),
                max_ns: h.max,
            });
        }
    }

    // (b) Instrumentation overhead: alternate the arms (best-of-N each)
    // so drift hits both equally. The kill switch mutes every primitive
    // at runtime — same binary, same engine, only recording differs.
    let mut best_on = u64::MAX;
    let mut best_off = u64::MAX;
    for iter in 0..ITERS {
        obs::set_enabled(true);
        best_on = best_on.min(ingest_once(&events, 1, &format!("on{iter}"), FsyncPolicy::Never).0);
        obs::set_enabled(false);
        best_off =
            best_off.min(ingest_once(&events, 1, &format!("off{iter}"), FsyncPolicy::Never).0);
    }
    obs::set_enabled(true);
    let enabled_ns_per_event = best_on / events.len() as u64;
    let disabled_ns_per_event = best_off / events.len() as u64;
    let overhead_pct = ((best_on as f64 - best_off as f64) / best_off as f64 * 100.0).max(0.0);

    E13Result {
        events: events.len() as u64,
        cores,
        stages,
        enabled_ns_per_event,
        disabled_ns_per_event,
        overhead_pct,
    }
}

/// Render the E13 tables.
pub fn render(r: &E13Result) -> String {
    let mut table =
        crate::table::Table::new(&["shards", "stage", "samples", "p50 ns", "p99 ns", "max ns"]);
    for s in &r.stages {
        table.row(vec![
            s.shards.to_string(),
            s.stage.to_string(),
            s.count.to_string(),
            s.p50_ns.to_string(),
            s.p99_ns.to_string(),
            s.max_ns.to_string(),
        ]);
    }
    format!(
        "{}\n{} events, {} host core(s); ingest {} ns/event instrumented vs {} ns/event \
         with the kill switch off — overhead {:.2}% (gate: ≤ {:.1}%)\n",
        table.render(),
        r.events,
        r.cores,
        r.enabled_ns_per_event,
        r.disabled_ns_per_event,
        r.overhead_pct,
        MAX_OVERHEAD_PCT
    )
}

/// Machine-readable JSON for `BENCH_e13.json`.
pub fn to_json(r: &E13Result) -> String {
    let stages: Vec<String> = r
        .stages
        .iter()
        .map(|s| {
            format!(
                "{{ \"shards\": {}, \"stage\": \"{}\", \"count\": {}, \"p50_ns\": {}, \
                 \"p99_ns\": {}, \"max_ns\": {} }}",
                s.shards, s.stage, s.count, s.p50_ns, s.p99_ns, s.max_ns
            )
        })
        .collect();
    format!(
        "{{\n  \"experiment\": \"e13_obs\",\n  \
         \"events\": {},\n  \
         \"cores\": {},\n  \
         \"stages\": [\n    {}\n  ],\n  \
         \"enabled_ns_per_event\": {},\n  \
         \"disabled_ns_per_event\": {},\n  \
         \"overhead_pct\": {:.3},\n  \
         \"max_overhead_pct\": {:.1},\n  \
         \"regenerate\": \"cargo run --release -p kojak-bench --bin harness -- --e13\"\n}}\n",
        r.events,
        r.cores,
        stages.join(",\n    "),
        r.enabled_ns_per_event,
        r.disabled_ns_per_event,
        r.overhead_pct,
        MAX_OVERHEAD_PCT
    )
}

/// The PR-level claims: the breakdown is live, and always-on
/// instrumentation costs at most [`MAX_OVERHEAD_PCT`] percent.
pub fn check_claims(r: &E13Result) -> Result<(), String> {
    for &shards in &SHARD_COUNTS {
        for hot in [
            "kojak_online_apply_ns",
            "kojak_online_flush_ns",
            "kojak_wal_append_ns",
            "kojak_wal_fsync_ns",
        ] {
            let live = r
                .stages
                .iter()
                .any(|s| s.shards == shards && s.stage == hot && s.count > 0);
            if !live {
                return Err(format!("stage {hot} recorded nothing at {shards} shard(s)"));
            }
        }
    }
    if r.overhead_pct > MAX_OVERHEAD_PCT {
        return Err(format!(
            "instrumentation overhead {:.2}% exceeds the {:.1}% gate",
            r.overhead_pct, MAX_OVERHEAD_PCT
        ));
    }
    Ok(())
}
