//! E12 — wire protocol: loopback TCP ingest throughput vs in-process.
//!
//! The ROADMAP's wire-protocol item, measured end to end: the E11
//! multi-version event stream is ingested into the same in-memory
//! sharded engine (4 shards) four ways — directly in-process, and over
//! loopback TCP from 1, 2 and 4 concurrent [`net::TraceProducer`]s
//! feeding one [`net::EngineServer`] (length-prefixed crc32-checksummed
//! frames, batch acks with backpressure, per-producer sequence
//! tracking).
//!
//! Claims checked:
//! * the final reports are canonically identical on every path (the
//!   protocol never changes an analysis result);
//! * loopback throughput stays within a sane factor of in-process ingest
//!   (frames, checksums and acks are overhead, not collapse), and is
//!   *reported* so the trajectory is tracked across PRs.

use super::e11_sharding::{canonical, multi_version_stream};
use crate::table::Table;
use engine::{AnalysisEngine, EngineBuilder};
use net::{EngineServer, ProducerConfig, ServerConfig, TraceProducer};
use online::TraceEvent;
use std::sync::Arc;
use std::time::Instant;

/// Producer counts swept over loopback.
pub const PRODUCER_COUNTS: [usize; 3] = [1, 2, 4];
/// Shards of the engine under test (constant across rows — E12 measures
/// the wire, E11 measured the shards).
const SHARDS: usize = 4;
/// Events per producer batch frame (the pipeline's default unit).
const BATCH: usize = 256;
/// Timing iterations (best-of).
const ITERS: usize = 3;

/// One row of the sweep.
#[derive(Debug, Clone)]
pub struct E12Row {
    /// Producer connections ("0" encodes the in-process baseline).
    pub producers: usize,
    /// Best ns/event for ingest + final flush.
    pub ns_per_event: u64,
    /// Derived events/second.
    pub events_per_sec: u64,
    /// Throughput relative to the in-process baseline (1.0 = parity).
    pub factor_of_in_process: f64,
}

/// Measured outcome of the wire-protocol experiment.
#[derive(Debug, Clone)]
pub struct E12Result {
    /// Events in the stream.
    pub events: u64,
    /// Program versions in the stream.
    pub versions: usize,
    /// Host parallelism the measurement ran under.
    pub cores: usize,
    /// The in-process baseline plus one row per producer count.
    pub rows: Vec<E12Row>,
    /// Best loopback throughput as a factor of in-process.
    pub best_factor: f64,
    /// Are the reports canonically identical on every path?
    pub reports_identical: bool,
}

fn engine() -> Arc<engine::Engine> {
    Arc::new(
        EngineBuilder::new()
            .shards(SHARDS)
            .build()
            .expect("in-memory sharded engine"),
    )
}

/// In-process baseline: direct `ingest_batch` into the engine.
fn ingest_in_process(events: &[TraceEvent]) -> (u64, Vec<String>) {
    let engine = engine();
    let t = Instant::now();
    for batch in events.chunks(BATCH) {
        engine.ingest_batch(batch).expect("ingest");
    }
    engine.flush().expect("flush");
    let elapsed = t.elapsed().as_nanos() as u64;
    (elapsed, canonical(&engine.reports()))
}

/// Loopback: `producers` concurrent connections, runs partitioned round-
/// robin (complete runs per producer, as real monitors would stream).
fn ingest_loopback(events: &[TraceEvent], producers: usize) -> (u64, Vec<String>) {
    let engine = engine();
    let server = EngineServer::bind(
        "127.0.0.1:0",
        Arc::clone(&engine) as Arc<dyn AnalysisEngine>,
        ServerConfig::default(),
    )
    .expect("bind");
    let addr = server.local_addr().to_string();

    let mut parts: Vec<Vec<TraceEvent>> = vec![Vec::new(); producers];
    for event in events {
        parts[(event.run_key().0 as usize) % producers].push(event.clone());
    }

    let t = Instant::now();
    std::thread::scope(|scope| {
        for (i, part) in parts.iter().enumerate() {
            let addr = addr.clone();
            scope.spawn(move || {
                let mut producer = TraceProducer::connect(
                    &addr,
                    ProducerConfig {
                        producer_id: i as u64 + 1,
                        batch_events: BATCH,
                        ..ProducerConfig::default()
                    },
                )
                .expect("connect");
                for event in part {
                    producer.send(event).expect("send");
                }
                producer.close().expect("close");
            });
        }
    });
    engine.flush().expect("flush");
    let elapsed = t.elapsed().as_nanos() as u64;
    let reports = canonical(&engine.reports());
    server.shutdown();
    (elapsed, reports)
}

/// Run the experiment.
pub fn run() -> E12Result {
    let (store, events) = multi_version_stream();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let mut rows = Vec::new();
    let mut baseline_reports: Option<Vec<String>> = None;
    let mut reports_identical = true;
    let mut in_process_ns = 0u64;

    let mut record = |producers: usize, best: u64, reports: Vec<String>| {
        match &baseline_reports {
            None => baseline_reports = Some(reports),
            Some(base) => reports_identical &= &reports == base,
        }
        let ns_per_event = best / events.len() as u64;
        if producers == 0 {
            in_process_ns = ns_per_event;
        }
        rows.push(E12Row {
            producers,
            ns_per_event,
            events_per_sec: 1_000_000_000 / ns_per_event.max(1),
            factor_of_in_process: in_process_ns as f64 / ns_per_event.max(1) as f64,
        });
    };

    let mut best = u64::MAX;
    let mut reports = Vec::new();
    for _ in 0..ITERS {
        let (elapsed, r) = ingest_in_process(&events);
        best = best.min(elapsed);
        reports = r;
    }
    record(0, best, reports);

    for &producers in &PRODUCER_COUNTS {
        let mut best = u64::MAX;
        let mut reports = Vec::new();
        for _ in 0..ITERS {
            let (elapsed, r) = ingest_loopback(&events, producers);
            best = best.min(elapsed);
            reports = r;
        }
        record(producers, best, reports);
    }

    let best_factor = rows
        .iter()
        .filter(|r| r.producers > 0)
        .map(|r| r.factor_of_in_process)
        .fold(0.0, f64::max);

    E12Result {
        events: events.len() as u64,
        versions: store.versions.len(),
        cores,
        rows,
        best_factor,
        reports_identical,
    }
}

/// Render the E12 table.
pub fn render(r: &E12Result) -> String {
    let mut table = Table::new(&["path", "ns/event", "events/s", "factor of in-process"]);
    for row in &r.rows {
        table.row(vec![
            if row.producers == 0 {
                "in-process".to_string()
            } else {
                format!("loopback x{}", row.producers)
            },
            row.ns_per_event.to_string(),
            row.events_per_sec.to_string(),
            format!("{:.2}x", row.factor_of_in_process),
        ]);
    }
    format!(
        "{}\n{} events over {} program versions into a {SHARDS}-shard engine, {} host \
         core(s); reports identical on every path: {}\n",
        table.render(),
        r.events,
        r.versions,
        r.cores,
        if r.reports_identical { "yes" } else { "NO" }
    )
}

/// Machine-readable JSON for `BENCH_e12.json`.
pub fn to_json(r: &E12Result) -> String {
    let rows: Vec<String> = r
        .rows
        .iter()
        .map(|row| {
            format!(
                "{{ \"producers\": {}, \"ns_per_event\": {}, \"events_per_sec\": {}, \
                 \"factor_of_in_process\": {:.4} }}",
                row.producers, row.ns_per_event, row.events_per_sec, row.factor_of_in_process
            )
        })
        .collect();
    format!(
        "{{\n  \"experiment\": \"e12_net\",\n  \
         \"events\": {},\n  \
         \"versions\": {},\n  \
         \"cores\": {},\n  \
         \"shards\": {SHARDS},\n  \
         \"sweep\": [ {} ],\n  \
         \"best_loopback_factor\": {:.4},\n  \
         \"reports_identical\": {},\n  \
         \"regenerate\": \"cargo run --release -p kojak-bench --bin harness -- --e12\"\n}}\n",
        r.events,
        r.versions,
        r.cores,
        rows.join(", "),
        r.best_factor,
        r.reports_identical
    )
}

/// The PR-level claims: the wire protocol never changes an analysis
/// result, and loopback ingest stays within a sane factor of in-process
/// (the exact factor is *reported* in BENCH_e12.json; the floor here only
/// catches collapse — a protocol stall, an accidental per-event ack
/// round-trip — not honest framing overhead).
pub fn check_claims(r: &E12Result) -> Result<(), String> {
    if !r.reports_identical {
        return Err("reports differ between in-process and loopback ingestion".into());
    }
    const FLOOR: f64 = 0.05;
    if r.best_factor < FLOOR {
        return Err(format!(
            "best loopback throughput is only {:.3}x of in-process (floor {FLOOR}x)",
            r.best_factor
        ));
    }
    Ok(())
}
