//! E10 — durability: write-ahead-log append overhead and recovery time.
//!
//! Two questions a durable always-on analysis service must answer:
//!
//! * **What does the WAL cost on the hot path?** The same refinement-heavy
//!   event stream is ingested into a memory-only [`OnlineSession`] and
//!   into [`DurableSession`]s (no fsync / batched fsync); the report is
//!   ns/event and the durable/memory overhead ratio.
//! * **What does a snapshot buy at restart?** The same session directory
//!   is recovered twice — once from the full WAL (replaying every
//!   historical event, refinements included, through `StoreBuilder::apply`)
//!   and once from a checkpoint snapshot (direct arena reconstruction,
//!   empty log tail). The PR-level claim: snapshot recovery is measurably
//!   faster than full replay, with bit-identical recovered reports.
//!
//! The stream is deliberately refinement-heavy (each run's timing events
//! are re-sent several times with drifting values, as a live monitor
//! refining running totals would): the WAL holds every refinement, the
//! snapshot only the final state — exactly the compaction a long-running
//! session accumulates.

use crate::table::Table;
use online::{
    DurableConfig, DurableSession, FsyncPolicy, OnlineSession, SessionConfig, TraceEvent,
};
use perfdata::{Store, TestRunId};
use std::path::PathBuf;
use std::time::Instant;

/// Runs in the store (PE sweep 1..=RUNS).
const RUNS: u32 = 12;
/// Extra refinement passes of each run's timing events. A live monitor
/// refreshes running totals continuously, so the log of a long-lived run
/// holds many overwrites per final record — the state a snapshot compacts.
const REFINEMENTS: usize = 24;
/// Ingestion batch size (the pipeline's default unit of work).
const BATCH: usize = 256;
/// Timing iterations for the recovery measurements.
const RECOVER_ITERS: usize = 5;
/// Timing iterations for the ingestion measurements.
const INGEST_ITERS: usize = 3;

/// Measured outcome of the durability experiment.
#[derive(Debug, Clone)]
pub struct E10Result {
    /// Events in the stream (refinements included).
    pub events: u64,
    /// Best ns/event, memory-only ingestion.
    pub memory_ns_per_event: u64,
    /// Best ns/event, durable ingestion without fsync.
    pub wal_ns_per_event: u64,
    /// Best ns/event, durable ingestion with batched fsync (every 256).
    pub wal_fsync_ns_per_event: u64,
    /// `wal_ns_per_event / memory_ns_per_event`.
    pub append_overhead: f64,
    /// WAL size after the full stream (bytes).
    pub wal_bytes: u64,
    /// Snapshot size after a checkpoint (bytes).
    pub snapshot_bytes: u64,
    /// Best wall-clock of recovery from the full WAL (no snapshot).
    pub replay_recovery_ns: u64,
    /// Best wall-clock of recovery from the snapshot (empty log tail).
    pub snapshot_recovery_ns: u64,
    /// `replay_recovery_ns / snapshot_recovery_ns`.
    pub recovery_speedup: f64,
    /// Are the live, WAL-recovered, and snapshot-recovered reports all
    /// bit-identical?
    pub reports_identical: bool,
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("kojak-e10-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The refinement-heavy stream: per run, the full event sequence plus
/// `REFINEMENTS` re-sends of its measurement events with drifting values.
pub fn refinement_stream(store: &Store) -> Vec<TraceEvent> {
    let mut events = Vec::new();
    for r in 0..store.runs.len() as u32 {
        let run_events = online::replay::events_for_run(store, TestRunId(r));
        let measurements: Vec<TraceEvent> = run_events
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    TraceEvent::RegionExited { .. }
                        | TraceEvent::TypedSample { .. }
                        | TraceEvent::CallSiteStat { .. }
                )
            })
            .cloned()
            .collect();
        // Structure + first measurements, then refinements drifting toward
        // the final values, with the authoritative pass last (so the end
        // state equals the source store's timings).
        let finished = run_events.last().cloned();
        events.extend(
            run_events
                .iter()
                .filter(|e| !matches!(e, TraceEvent::RunFinished { .. }))
                .cloned(),
        );
        for pass in 0..REFINEMENTS {
            let scale = 0.9 + 0.1 * (pass as f64 / REFINEMENTS as f64);
            for m in &measurements {
                events.push(scale_measurement(m, scale));
            }
        }
        events.extend(measurements);
        events.extend(finished);
    }
    events
}

fn scale_measurement(event: &TraceEvent, scale: f64) -> TraceEvent {
    let mut e = event.clone();
    match &mut e {
        TraceEvent::RegionExited {
            excl, incl, ovhd, ..
        } => {
            *excl *= scale;
            *incl *= scale;
            *ovhd *= scale;
        }
        TraceEvent::TypedSample { time, .. } => *time *= scale,
        TraceEvent::CallSiteStat { stats, .. } => {
            stats.mean_time *= scale;
            stats.max_time *= scale;
        }
        _ => {}
    }
    e
}

/// Time one full ingestion (batched, flush at the end untimed for the
/// memory/durable comparison — the evaluation cost is identical on both
/// sides; the WAL is the only difference in the timed window).
fn ingest_ns(events: &[TraceEvent], durable: Option<FsyncPolicy>) -> u64 {
    let mut best = u64::MAX;
    for iter in 0..INGEST_ITERS {
        match durable {
            None => {
                let session = OnlineSession::new(SessionConfig::default());
                let t = Instant::now();
                for batch in events.chunks(BATCH) {
                    session.ingest_batch(batch).expect("ingest");
                }
                best = best.min(t.elapsed().as_nanos() as u64);
                session.flush().expect("flush");
            }
            Some(fsync) => {
                let dir = scratch(&format!("ingest-{iter}"));
                let session = DurableSession::open(
                    &dir,
                    DurableConfig {
                        session: SessionConfig::default(),
                        fsync,
                        snapshot_every_flushes: 0,
                        faults: Default::default(),
                    },
                )
                .expect("open");
                let t = Instant::now();
                for batch in events.chunks(BATCH) {
                    session.ingest_batch(batch).expect("ingest");
                }
                best = best.min(t.elapsed().as_nanos() as u64);
                session.flush().expect("flush");
                drop(session);
                let _ = std::fs::remove_dir_all(&dir);
            }
        }
    }
    best / events.len() as u64
}

/// Run the experiment.
pub fn run() -> E10Result {
    let (store, _version) = crate::data::particle_store(&(1..=RUNS).collect::<Vec<_>>());
    let events = refinement_stream(&store);

    // --- WAL append overhead -------------------------------------------
    let memory_ns_per_event = ingest_ns(&events, None);
    let wal_ns_per_event = ingest_ns(&events, Some(FsyncPolicy::Never));
    let wal_fsync_ns_per_event = ingest_ns(&events, Some(FsyncPolicy::EveryN(256)));

    // --- recovery: full WAL replay vs snapshot + empty tail -------------
    // One directory per variant, identical history.
    let wal_dir = scratch("recover-wal");
    let snap_dir = scratch("recover-snap");
    let config = |snapshot_every| DurableConfig {
        session: SessionConfig::default(),
        fsync: FsyncPolicy::Never,
        snapshot_every_flushes: snapshot_every,
        faults: Default::default(),
    };
    let live = DurableSession::open(&wal_dir, config(0)).expect("open wal dir");
    for batch in events.chunks(BATCH) {
        live.ingest_batch(batch).expect("ingest");
    }
    live.flush().expect("flush");
    let live_reports = live.reports();
    let wal_bytes = live.wal_len();
    drop(live); // killed: WAL holds the full history, no snapshot

    let snap = DurableSession::open(&snap_dir, config(0)).expect("open snap dir");
    for batch in events.chunks(BATCH) {
        snap.ingest_batch(batch).expect("ingest");
    }
    snap.checkpoint().expect("checkpoint");
    drop(snap); // killed right after a checkpoint: snapshot only
    let snapshot_bytes = std::fs::metadata(snap_dir.join(online::durable::SNAPSHOT_FILE))
        .map(|m| m.len())
        .unwrap_or(0);

    let time_recover = |dir: &PathBuf| -> (u64, std::collections::HashMap<_, _>) {
        let mut best = u64::MAX;
        let mut reports = None;
        for _ in 0..RECOVER_ITERS {
            let t = Instant::now();
            let (session, _stats) =
                OnlineSession::recover(dir, SessionConfig::default()).expect("recover");
            best = best.min(t.elapsed().as_nanos() as u64);
            reports = Some(session.reports());
        }
        (best, reports.expect("iters > 0"))
    };
    let (replay_recovery_ns, wal_reports) = time_recover(&wal_dir);
    let (snapshot_recovery_ns, snap_reports) = time_recover(&snap_dir);

    let reports_identical = wal_reports == live_reports && snap_reports == live_reports;
    let _ = std::fs::remove_dir_all(&wal_dir);
    let _ = std::fs::remove_dir_all(&snap_dir);

    E10Result {
        events: events.len() as u64,
        memory_ns_per_event,
        wal_ns_per_event,
        wal_fsync_ns_per_event,
        append_overhead: wal_ns_per_event as f64 / memory_ns_per_event.max(1) as f64,
        wal_bytes,
        snapshot_bytes,
        replay_recovery_ns,
        snapshot_recovery_ns,
        recovery_speedup: replay_recovery_ns as f64 / snapshot_recovery_ns.max(1) as f64,
        reports_identical,
    }
}

/// Render the E10 tables.
pub fn render(r: &E10Result) -> String {
    let ms = |ns: u64| format!("{:.2} ms", ns as f64 / 1e6);
    let kib = |b: u64| format!("{:.1} KiB", b as f64 / 1024.0);
    let mut ingest = Table::new(&["ingestion mode", "ns/event", "overhead vs memory"]);
    ingest.row(vec![
        "memory-only session".into(),
        r.memory_ns_per_event.to_string(),
        "1.0x".into(),
    ]);
    ingest.row(vec![
        "durable (no fsync)".into(),
        r.wal_ns_per_event.to_string(),
        format!("{:.2}x", r.append_overhead),
    ]);
    ingest.row(vec![
        "durable (fsync/256)".into(),
        r.wal_fsync_ns_per_event.to_string(),
        format!(
            "{:.2}x",
            r.wal_fsync_ns_per_event as f64 / r.memory_ns_per_event.max(1) as f64
        ),
    ]);
    let mut recover = Table::new(&["recovery path", "state on disk", "time"]);
    recover.row(vec![
        "full WAL replay".into(),
        kib(r.wal_bytes),
        ms(r.replay_recovery_ns),
    ]);
    recover.row(vec![
        "snapshot + empty tail".into(),
        kib(r.snapshot_bytes),
        ms(r.snapshot_recovery_ns),
    ]);
    format!(
        "{}\n{}\nsnapshot-accelerated recovery: {:.1}x faster  ({} events, reports identical: {})\n",
        ingest.render(),
        recover.render(),
        r.recovery_speedup,
        r.events,
        if r.reports_identical { "yes" } else { "NO" }
    )
}

/// Machine-readable JSON for `BENCH_e10.json`.
pub fn to_json(r: &E10Result) -> String {
    format!(
        "{{\n  \"experiment\": \"e10_durability\",\n  \
         \"events\": {},\n  \
         \"append\": {{ \"memory_ns_per_event\": {}, \"wal_ns_per_event\": {}, \"wal_fsync_ns_per_event\": {}, \"overhead\": {:.3} }},\n  \
         \"recovery\": {{ \"replay_ns_best\": {}, \"snapshot_ns_best\": {}, \"speedup\": {:.3}, \"wal_bytes\": {}, \"snapshot_bytes\": {} }},\n  \
         \"reports_identical\": {},\n  \
         \"regenerate\": \"cargo run --release -p kojak-bench --bin harness -- --e10\"\n}}\n",
        r.events,
        r.memory_ns_per_event,
        r.wal_ns_per_event,
        r.wal_fsync_ns_per_event,
        r.append_overhead,
        r.replay_recovery_ns,
        r.snapshot_recovery_ns,
        r.recovery_speedup,
        r.wal_bytes,
        r.snapshot_bytes,
        r.reports_identical
    )
}

/// The PR-level claims: identical reports on every recovery path, and a
/// snapshot restart measurably (≥ 1.5x) faster than a full WAL replay.
pub fn check_claims(r: &E10Result) -> Result<(), String> {
    if !r.reports_identical {
        return Err("recovered reports differ from the live session".into());
    }
    if r.recovery_speedup < 1.5 {
        return Err(format!(
            "snapshot recovery only {:.2}x faster than WAL replay ({} ns vs {} ns)",
            r.recovery_speedup, r.snapshot_recovery_ns, r.replay_recovery_ns
        ));
    }
    // The WAL must not dominate the hot path: guard the no-fsync overhead
    // (fsync cost is the operator's explicit durability/latency trade).
    if r.append_overhead > 10.0 {
        return Err(format!(
            "WAL append overhead {:.1}x vs memory-only ingestion",
            r.append_overhead
        ));
    }
    Ok(())
}
