//! E6 — cost scaling (the `SublinearSpeedup` semantics of §4.2): total
//! cost vs processor count per archetype, with the dominant overhead
//! families. This regenerates the "figure" a COSY user reads: lost cycles
//! relative to the reference run as the machine grows.

use crate::table::Table;
use apprentice_sim::{archetypes, simulate_program, MachineModel};
use cosy::{Analyzer, Backend, ProblemThreshold};
use perfdata::Store;

/// One (application, PE count) sample.
#[derive(Debug, Clone)]
pub struct E6Row {
    /// Application name.
    pub app: String,
    /// Processor count.
    pub no_pe: u32,
    /// Whole-program duration (summed over processes, seconds).
    pub duration: f64,
    /// Total cost as a fraction of the basis duration.
    pub total_cost: f64,
    /// Measured cost fraction (basis region).
    pub measured: f64,
    /// Unmeasured cost fraction (basis region).
    pub unmeasured: f64,
    /// Severity of the synchronization refinement on the worst region.
    pub worst_sync: f64,
    /// Severity of the I/O refinement on the worst region.
    pub worst_io: f64,
}

/// Run the sweep.
pub fn run(pe_counts: &[u32]) -> Vec<E6Row> {
    let machine = MachineModel::t3e_900();
    let mut out = Vec::new();
    for model in archetypes::all(7) {
        let mut store = Store::new();
        let version = simulate_program(&mut store, &model, &machine, pe_counts);
        let analyzer = Analyzer::new(&store, version).expect("analyzer");
        for &run in &store.versions[version.index()].runs {
            let report = analyzer
                .analyze(run, Backend::Interpreter, ProblemThreshold::default())
                .expect("analysis");
            let basis_region = store.main_region(version).map(|r| r.0);
            let basis_sev = |prop: &str| {
                report
                    .entries
                    .iter()
                    .find(|e| e.property == prop && e.context.region == basis_region)
                    .map(|e| e.severity)
                    .unwrap_or(0.0)
            };
            let worst = |prop: &str| {
                report
                    .entries
                    .iter()
                    .filter(|e| e.property == prop)
                    .map(|e| e.severity)
                    .fold(0.0f64, f64::max)
            };
            out.push(E6Row {
                app: model.name.clone(),
                no_pe: report.no_pe,
                duration: report.basis_duration,
                total_cost: report.total_cost,
                measured: basis_sev("MeasuredCost"),
                unmeasured: basis_sev("UnmeasuredCost"),
                worst_sync: worst("SyncCost"),
                worst_io: worst("IoCost"),
            });
        }
    }
    out
}

/// Render the E6 series.
pub fn render(rows: &[E6Row]) -> String {
    let mut t = Table::new(&[
        "application",
        "PEs",
        "duration [s]",
        "total cost",
        "measured",
        "unmeasured",
        "max SyncCost",
        "max IoCost",
    ]);
    for r in rows {
        t.row(vec![
            r.app.clone(),
            r.no_pe.to_string(),
            format!("{:.2}", r.duration),
            format!("{:5.1}%", r.total_cost * 100.0),
            format!("{:5.1}%", r.measured * 100.0),
            format!("{:5.1}%", r.unmeasured * 100.0),
            format!("{:5.1}%", r.worst_sync * 100.0),
            format!("{:5.1}%", r.worst_io * 100.0),
        ]);
    }
    t.render()
}

/// Shape claims: costs grow monotonically with PE count; the particle code
/// is synchronization-dominated, the spectral code I/O- or
/// collective-dominated at scale.
pub fn check_claims(rows: &[E6Row]) -> Result<(), String> {
    for app in ["stencil3d", "particle_mc", "spectral_io"] {
        let series: Vec<&E6Row> = rows.iter().filter(|r| r.app == app).collect();
        if series.len() < 3 {
            return Err(format!("{app}: too few samples"));
        }
        for w in series.windows(2) {
            if w[1].no_pe > w[0].no_pe && w[1].total_cost < w[0].total_cost - 1e-9 {
                return Err(format!(
                    "{app}: total cost not monotone ({} PEs {:.3} -> {} PEs {:.3})",
                    w[0].no_pe, w[0].total_cost, w[1].no_pe, w[1].total_cost
                ));
            }
        }
    }
    let at_max = |app: &str| {
        rows.iter()
            .filter(|r| r.app == app)
            .max_by_key(|r| r.no_pe)
            .expect("series nonempty")
    };
    let particle = at_max("particle_mc");
    if particle.worst_sync <= at_max("stencil3d").worst_sync {
        return Err("particle_mc must out-sync stencil3d".to_string());
    }
    let spectral = at_max("spectral_io");
    if spectral.worst_io <= particle.worst_io {
        return Err("spectral_io must out-I/O particle_mc".to_string());
    }
    Ok(())
}
