//! E3 — §5 record-fetch and API-binding overhead.
//!
//! Paper: "accessing the database via JDBC is a factor of two to four
//! slower than C-based implementations, fetching a record from the Oracle
//! server takes about 1 ms".

use crate::data;
use crate::table::Table;
use reldb::remote::{connection::share, ApiBinding, BackendProfile, Connection, SharedDb};

/// Measured per-fetch costs for one backend.
#[derive(Debug, Clone)]
pub struct E3Row {
    /// Backend name.
    pub backend: &'static str,
    /// Records fetched.
    pub records: usize,
    /// Per-record fetch cost via JDBC, in milliseconds.
    pub jdbc_ms: f64,
    /// Per-record fetch cost via the native binding, in milliseconds.
    pub native_ms: f64,
}

impl E3Row {
    /// JDBC slowdown factor vs native.
    pub fn ratio(&self) -> f64 {
        self.jdbc_ms / self.native_ms
    }
}

/// Fetch every record of the query record-at-a-time; returns
/// `(records, virtual seconds spent fetching)`.
fn fetch_all(shared: &SharedDb, profile: &BackendProfile, binding: &ApiBinding) -> (usize, f64) {
    let mut conn = Connection::connect(shared.clone(), profile.clone(), binding.clone());
    let mut n = 0usize;
    {
        let mut cur = conn
            .open_cursor("SELECT id, Run_id, Excl, Incl, Ovhd, TotTimes_owner FROM TotalTiming")
            .expect("cursor");
        while cur.fetch().is_some() {
            n += 1;
        }
    }
    (n, conn.elapsed())
}

/// Run the experiment: cursor (record-at-a-time) access to the TotalTiming
/// table, as COSY's analysis reads records.
pub fn run() -> Vec<E3Row> {
    let (store, _) = data::mixed_store(2, &[1, 4, 16]);
    let (_, _, db) = data::loaded_database(&store);
    let shared = share(db);

    let profiles = [
        BackendProfile::oracle7(),
        BackendProfile::mssql7(),
        BackendProfile::postgres(),
    ];
    let mut rows = Vec::new();
    for profile in profiles {
        let (records, jdbc_total) = fetch_all(&shared, &profile, &ApiBinding::jdbc());
        let (_, native_total) = fetch_all(&shared, &profile, &ApiBinding::native_c());
        rows.push(E3Row {
            backend: profile.name,
            records,
            jdbc_ms: jdbc_total / records.max(1) as f64 * 1e3,
            native_ms: native_total / records.max(1) as f64 * 1e3,
        });
    }
    rows
}

/// Render the E3 table.
pub fn render(rows: &[E3Row]) -> String {
    let mut t = Table::new(&[
        "backend",
        "records",
        "JDBC [ms/rec]",
        "native C [ms/rec]",
        "JDBC/native",
    ]);
    for r in rows {
        t.row(vec![
            r.backend.to_string(),
            r.records.to_string(),
            format!("{:.3}", r.jdbc_ms),
            format!("{:.3}", r.native_ms),
            format!("{:.1}x", r.ratio()),
        ]);
    }
    t.render()
}

/// Paper claims: Oracle+JDBC ≈ 1 ms/fetch; JDBC 2–4x slower than native.
pub fn check_claims(rows: &[E3Row]) -> Result<(), String> {
    let oracle = rows
        .iter()
        .find(|r| r.backend.starts_with("Oracle"))
        .ok_or("no Oracle row")?;
    if !(0.7..=1.4).contains(&oracle.jdbc_ms) {
        return Err(format!(
            "Oracle JDBC fetch {:.3} ms not ~1 ms",
            oracle.jdbc_ms
        ));
    }
    for r in rows {
        let ratio = r.ratio();
        if !(2.0..=4.0).contains(&ratio) {
            return Err(format!(
                "{}: JDBC/native {ratio:.2} outside 2-4x",
                r.backend
            ));
        }
    }
    Ok(())
}
