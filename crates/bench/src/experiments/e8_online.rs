//! E8 — online ingestion: incremental re-analysis of a single-run append
//! vs full batch re-analysis of the whole store.
//!
//! The scenario the `cosy-online` subsystem exists for: a store already
//! holds many analyzed test runs and a new run streams in. Batch COSY
//! re-evaluates every (property × context × run) instance; the incremental
//! engine evaluates only the new run's contexts (plus whatever the delta
//! invalidated). The claim checked here is the ROADMAP-facing one:
//! **≥ 10× faster** for a single-run append on a 50-run store.

use crate::table::Table;
use cosy::{Analyzer, Backend, ProblemThreshold};
use online::replay::events_for_run;
use online::{OnlineSession, SessionConfig};
use perfdata::TestRunId;
use std::sync::Arc;
use std::time::Instant;

/// Measured outcome of the append-one-run comparison.
#[derive(Debug, Clone)]
pub struct E8Result {
    /// Runs in the store before the append.
    pub base_runs: usize,
    /// Trace events the appended run comprises.
    pub events: usize,
    /// Wall-clock of the incremental path (ingest + flush), milliseconds.
    pub incremental_ms: f64,
    /// Property instances the incremental flush evaluated.
    pub incremental_instances: u64,
    /// Wall-clock of full batch re-analysis of all runs, milliseconds.
    pub full_ms: f64,
    /// Property instances the batch pass evaluated.
    pub full_instances: u64,
    /// `full_ms / incremental_ms`.
    pub speedup: f64,
}

/// Append one 64-PE run to a `base_runs`-run particle-MC store, measuring
/// the incremental path against full batch re-analysis.
pub fn run(base_runs: usize) -> E8Result {
    let threshold = ProblemThreshold::default();
    // Store with base_runs runs at 1..=base_runs PEs plus the appended
    // 64-PE run (so the batch side sees the identical final store).
    let mut pe_counts: Vec<u32> = (1..=base_runs as u32).collect();
    pe_counts.push(64);
    let (store, version) = crate::data::particle_store(&pe_counts);
    let appended = TestRunId(base_runs as u32);

    // --- incremental: session pre-loaded with the base runs ------------
    let session = OnlineSession::new(SessionConfig {
        threshold,
        auto_flush_events: 0,
        ..SessionConfig::default()
    });
    for r in 0..base_runs as u32 {
        session
            .ingest_batch(&events_for_run(&store, TestRunId(r)))
            .expect("base ingest");
    }
    session.flush().expect("base flush");
    let events = events_for_run(&store, appended);
    let instances_before = session.stats().incremental.instances_evaluated;

    let t = Instant::now();
    session.ingest_batch(&events).expect("append ingest");
    session.flush().expect("append flush");
    let incremental_ms = t.elapsed().as_secs_f64() * 1e3;
    let incremental_instances = session.stats().incremental.instances_evaluated - instances_before;

    // --- batch: re-analyze every run of the final store -----------------
    let spec = Arc::new(cosy::suite::standard_suite());
    let t = Instant::now();
    let analyzer = Analyzer::with_spec(&store, version, Arc::clone(&spec)).expect("analyzer");
    let mut full_instances = 0u64;
    for r in 0..store.runs.len() as u32 {
        let run = TestRunId(r);
        full_instances += analyzer.instance_universe() as u64;
        analyzer
            .analyze(run, Backend::Compiled, threshold)
            .expect("batch analysis");
    }
    let full_ms = t.elapsed().as_secs_f64() * 1e3;

    E8Result {
        base_runs,
        events: events.len(),
        incremental_ms,
        incremental_instances,
        full_ms,
        full_instances,
        speedup: full_ms / incremental_ms.max(1e-9),
    }
}

/// Render the E8 table.
pub fn render(r: &E8Result) -> String {
    let mut t = Table::new(&[
        "path",
        "work after 1-run append",
        "instances evaluated",
        "wall clock",
    ]);
    t.row(vec![
        "batch re-analysis".into(),
        format!("all {} runs", r.base_runs + 1),
        r.full_instances.to_string(),
        format!("{:.2} ms", r.full_ms),
    ]);
    t.row(vec![
        "incremental (online)".into(),
        format!("1 run ({} events)", r.events),
        r.incremental_instances.to_string(),
        format!("{:.2} ms", r.incremental_ms),
    ]);
    format!("{}\nspeedup: {:.1}x\n", t.render(), r.speedup)
}

/// The claim: a single-run append on a 50-run store is at least 10x faster
/// incrementally than by full re-analysis.
pub fn check_claims(r: &E8Result) -> Result<(), String> {
    if r.speedup < 10.0 {
        return Err(format!(
            "incremental append only {:.1}x faster than batch ({}ms vs {}ms)",
            r.speedup, r.incremental_ms, r.full_ms
        ));
    }
    if r.incremental_instances * 10 > r.full_instances {
        return Err(format!(
            "incremental evaluated {} of {} instances — dirty tracking too coarse",
            r.incremental_instances, r.full_instances
        ));
    }
    Ok(())
}
