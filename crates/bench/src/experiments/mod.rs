//! The experiments E1–E13 (see DESIGN.md §4 for the index).

pub mod e10_durability;
pub mod e11_sharding;
pub mod e12_net;
pub mod e13_obs;
pub mod e1_parse;
pub mod e2_insert;
pub mod e3_fetch;
pub mod e4_client_vs_sql;
pub mod e5_analysis;
pub mod e6_cost_scaling;
pub mod e7_distribution;
pub mod e8_online;
pub mod e9_compiled;
pub mod strategies;
