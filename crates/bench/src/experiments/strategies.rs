//! The §5 evaluation strategies, instrumented with virtual costs.
//!
//! * **naive client** — the strategy the paper argues against: "first
//!   accessing the data components and evaluating the expressions in the
//!   analysis tool". The tool navigates the object model on demand; every
//!   object it touches during an evaluation is one record access over the
//!   connection (statement + round trip + row fetch + marshalling) — the
//!   access pattern behind the "fetching a record … takes about 1 ms"
//!   remark.
//! * **bulk client** — a modernized client: prefetch the analyzed run's
//!   dynamic tables with four cursors, then evaluate locally. Not in the
//!   paper; included as an honest upper bound for client-side designs.
//! * **SQL per-context** — compile each (property, context) pair into
//!   scalar queries executed server-side.
//! * **SQL batched** — one query per property covering all contexts, only
//!   holding rows returned (the fully automated version of "translate the
//!   conditions entirely into SQL").
//!
//! All strategies must produce the same set of holding (property, context,
//! severity) triples; [`StrategyResult::fingerprint`] is compared by tests.

use asl_core::check::CheckedSpec;
use asl_eval::{CosyData, Interpreter, ObjRef, ObjectModel, Value};
use asl_sql::{
    compile_batch, compile_property, eval_batch_conn, property::eval_compiled_conn, SchemaInfo,
};
use cosy::suite::{ContextSelector, SUITE};
use perfdata::{Store, TestRunId, VersionId};
use reldb::remote::{ApiBinding, BackendProfile, Connection};
use std::cell::RefCell;
use std::collections::{HashMap, HashSet};

/// Outcome of running one strategy.
#[derive(Debug, Clone)]
pub struct StrategyResult {
    /// Virtual seconds charged to the connection.
    pub virtual_secs: f64,
    /// Records fetched over the wire (client strategy) or returned by
    /// queries (SQL strategies).
    pub records: usize,
    /// Queries/statements issued.
    pub statements: usize,
    /// Holding (property, context-id, severity) triples.
    pub held: Vec<(String, u32, f64)>,
}

impl StrategyResult {
    /// A canonical fingerprint for cross-strategy comparison.
    pub fn fingerprint(&self) -> Vec<(String, u32, i64)> {
        let mut v: Vec<(String, u32, i64)> = self
            .held
            .iter()
            // Severities quantized to 1e-9 to absorb float formatting.
            .map(|(p, c, s)| (p.clone(), *c, (s / 1e-9).round() as i64))
            .collect();
        v.sort();
        v
    }
}

/// Enumerate the suite's property instances for one version and run.
/// Returns `(property, family ids, fixed args)` in suite order.
pub fn suite_instances(
    store: &Store,
    version: VersionId,
    run: TestRunId,
) -> Vec<(&'static str, ContextSelector, Vec<u32>)> {
    let v = &store.versions[version.index()];
    let regions: Vec<u32> = v
        .functions
        .iter()
        .flat_map(|f| store.functions[f.index()].regions.iter().map(|r| r.0))
        .collect();
    let calls = |barrier_only: bool| -> Vec<u32> {
        v.functions
            .iter()
            .filter(|f| !barrier_only || store.functions[f.index()].name == "barrier")
            .flat_map(|f| store.functions[f.index()].calls.iter().map(|c| c.0))
            .collect()
    };
    let _ = run;
    SUITE
        .iter()
        .map(|info| {
            let ids = match info.contexts {
                ContextSelector::AllRegions => regions.clone(),
                ContextSelector::BarrierCalls => calls(true),
                ContextSelector::AllCalls => calls(false),
            };
            (info.name, info.contexts, ids)
        })
        .collect()
}

fn family_class(sel: ContextSelector) -> &'static str {
    match sel {
        ContextSelector::AllRegions => "Region",
        _ => "FunctionCall",
    }
}

/// An [`ObjectModel`] wrapper counting distinct record accesses per
/// evaluation — the cost model of an on-demand JDBC object mapper with a
/// per-evaluation cache.
struct CountingData<'a> {
    inner: CosyData<'a>,
    seen: RefCell<HashSet<(asl_core::Symbol, u32)>>,
    fetches: RefCell<HashMap<String, u64>>,
}

impl<'a> CountingData<'a> {
    fn new(store: &'a Store) -> Self {
        CountingData {
            inner: CosyData::new(store),
            seen: RefCell::new(HashSet::new()),
            fetches: RefCell::new(HashMap::new()),
        }
    }

    /// Start a fresh evaluation (the mapper's cache is per evaluation).
    fn reset_eval(&self) {
        self.seen.borrow_mut().clear();
    }
}

impl ObjectModel for CountingData<'_> {
    fn attr(&self, obj: &ObjRef, attr: &str) -> asl_eval::error::EvalResult<Value> {
        if self.seen.borrow_mut().insert((obj.class, obj.index)) {
            *self
                .fetches
                .borrow_mut()
                .entry(obj.class.as_str().to_string())
                .or_default() += 1;
        }
        self.inner.attr(obj, attr)
    }

    fn extent(&self, class: &str) -> Option<usize> {
        self.inner.extent(class)
    }
}

/// Naive client strategy (the paper's §5 strawman): evaluate in the tool,
/// fetching every data component on demand — each touched object is one
/// point `SELECT … WHERE id = ?` over the connection.
pub fn client_naive(
    profile: &BackendProfile,
    binding: &ApiBinding,
    store: &Store,
    spec: &CheckedSpec,
    schema: &SchemaInfo,
    version: VersionId,
    run: TestRunId,
) -> Result<StrategyResult, String> {
    let data = CountingData::new(store);
    let basis = store.main_region(version).ok_or("no main region")?;
    let mut held = Vec::new();
    {
        let interp = Interpreter::new(spec, &data).map_err(|e| e.to_string())?;
        for (prop, sel, ids) in suite_instances(store, version, run) {
            for id in ids {
                data.reset_eval();
                let subject = match sel {
                    ContextSelector::AllRegions => Value::obj("Region", id),
                    _ => Value::obj("FunctionCall", id),
                };
                let args = [subject, Value::run(run), Value::region(basis)];
                match interp.eval_property(prop, &args) {
                    Ok(o) if o.holds && o.severity > 0.0 => {
                        held.push((prop.to_string(), id, o.severity))
                    }
                    Ok(_) => {}
                    Err(e) if e.is_not_applicable() => {}
                    Err(e) => return Err(format!("{prop}: {e}")),
                }
            }
        }
    }
    // Charge the access cost: each record access is a point query by
    // primary key (statement parse + plan + round trip + one row).
    let mut virtual_secs = 0.0;
    let mut records = 0usize;
    for (class, n) in data.fetches.borrow().iter() {
        let arity = schema.table(class).map(|t| t.arity()).unwrap_or(4);
        let per_record = profile.network_rtt
            + profile.stmt_parse
            + profile.query_base
            + profile.row_fetch
            + binding.call_cost(arity);
        virtual_secs += *n as f64 * per_record;
        records += *n as usize;
    }
    Ok(StrategyResult {
        virtual_secs,
        records,
        statements: records,
        held,
    })
}

/// Bulk client strategy: prefetch the analyzed run's dynamic records with
/// four cursors, then interpret locally.
pub fn client_side(
    conn: &mut Connection,
    store: &Store,
    spec: &CheckedSpec,
    version: VersionId,
    run: TestRunId,
) -> Result<StrategyResult, String> {
    let t0 = conn.elapsed();
    let run_id = run.0;
    let mut records = 0usize;
    let mut statements = 0usize;
    // The tool pulls every record of the run it analyzes (plus the
    // reference run for SublinearSpeedup) record-at-a-time, as COSY's JDBC
    // access did.
    let ref_run = store.min_pe_run(version).map(|r| r.0).unwrap_or(run_id);
    for table in [
        format!("SELECT id, Run_id, Excl, Incl, Ovhd, TotTimes_owner FROM TotalTiming WHERE Run_id = {run_id} OR Run_id = {ref_run}"),
        format!("SELECT id, Run_id, Type, Time, TypTimes_owner FROM TypedTiming WHERE Run_id = {run_id}"),
        format!("SELECT id, Run_id, MeanCount, StdevCount, MeanTime, StdevTime, MinTime, MaxTime, Sums_owner FROM CallTiming WHERE Run_id = {run_id}"),
        "SELECT id, NoPe, Clockspeed FROM TestRun".to_string(),
    ] {
        statements += 1;
        let mut cur = conn.open_cursor(&table).map_err(|e| e.to_string())?;
        while cur.fetch().is_some() {
            records += 1;
        }
    }

    // Local evaluation (free on the virtual clock: the data is client-side
    // now; we read it from the store, which holds identical values).
    let data = CosyData::new(store);
    let interp = Interpreter::new(spec, data).map_err(|e| e.to_string())?;
    let basis = store.main_region(version).ok_or("no main region")?;
    let mut held = Vec::new();
    for (prop, sel, ids) in suite_instances(store, version, run) {
        for id in ids {
            let subject = match sel {
                ContextSelector::AllRegions => Value::obj("Region", id),
                _ => Value::obj("FunctionCall", id),
            };
            let args = [subject, Value::run(run), Value::region(basis)];
            match interp.eval_property(prop, &args) {
                Ok(o) if o.holds && o.severity > 0.0 => {
                    held.push((prop.to_string(), id, o.severity))
                }
                Ok(_) => {}
                Err(e) if e.is_not_applicable() => {}
                Err(e) => return Err(format!("{prop}: {e}")),
            }
        }
    }
    Ok(StrategyResult {
        virtual_secs: conn.elapsed() - t0,
        records,
        statements,
        held,
    })
}

/// SQL per-context strategy: scalar queries per (property, context).
pub fn sql_per_context(
    conn: &mut Connection,
    store: &Store,
    spec: &CheckedSpec,
    schema: &SchemaInfo,
    version: VersionId,
    run: TestRunId,
) -> Result<StrategyResult, String> {
    let t0 = conn.elapsed();
    let basis = store.main_region(version).ok_or("no main region")?;
    let mut held = Vec::new();
    let mut statements = 0usize;
    let mut records = 0usize;
    for (prop, sel, ids) in suite_instances(store, version, run) {
        for id in ids {
            let subject = match sel {
                ContextSelector::AllRegions => Value::obj("Region", id),
                _ => Value::obj("FunctionCall", id),
            };
            let args = [subject, Value::run(run), Value::region(basis)];
            let cp = compile_property(spec, schema, prop, &args).map_err(|e| e.to_string())?;
            statements += cp.conditions.len(); // arm queries counted on demand
            let o = eval_compiled_conn(conn, &cp).map_err(|e| e.to_string())?;
            records += 1;
            if o.holds && o.severity > 0.0 {
                statements += cp.confidence.len() + cp.severity.len();
                held.push((prop.to_string(), id, o.severity));
            }
        }
    }
    Ok(StrategyResult {
        virtual_secs: conn.elapsed() - t0,
        records,
        statements,
        held,
    })
}

/// SQL batched strategy: one query per property over all contexts.
pub fn sql_batched(
    conn: &mut Connection,
    store: &Store,
    spec: &CheckedSpec,
    schema: &SchemaInfo,
    version: VersionId,
    run: TestRunId,
) -> Result<StrategyResult, String> {
    let t0 = conn.elapsed();
    let basis = store.main_region(version).ok_or("no main region")?;
    let fixed = [(1usize, Value::run(run)), (2usize, Value::region(basis))];
    let mut held = Vec::new();
    let mut statements = 0usize;
    let mut records = 0usize;
    for (prop, sel, ids) in suite_instances(store, version, run) {
        if ids.is_empty() {
            continue;
        }
        let _ = family_class(sel);
        let bc =
            compile_batch(spec, schema, prop, 0, &fixed, Some(&ids)).map_err(|e| e.to_string())?;
        statements += 1;
        let outcomes = eval_batch_conn(conn, &bc).map_err(|e| e.to_string())?;
        records += outcomes.len();
        for (id, o) in outcomes {
            if o.holds && o.severity > 0.0 {
                held.push((prop.to_string(), id, o.severity));
            }
        }
    }
    Ok(StrategyResult {
        virtual_secs: conn.elapsed() - t0,
        records,
        statements,
        held,
    })
}
