//! E1 — Figure 1: the ASL property-specification language.
//!
//! The paper's only figure is the property grammar. We reproduce it by
//! construction: the parser accepts the paper's data model and all printed
//! properties (golden tests in `crates/core/tests`), and this experiment
//! measures front-end throughput on specifications of growing size.

use crate::table::Table;
use asl_core::parse_and_check;
use cosy::suite::standard_suite_source;
use std::time::Instant;

/// Generate a syntactically rich specification with `n` properties.
pub fn synthetic_spec(n: usize) -> String {
    let mut src = String::from(asl_eval::COSY_DATA_MODEL);
    src.push_str("float Threshold0 = 0.25;\n");
    for i in 0..n {
        src.push_str(&format!(
            r#"
Property Synth{i}(Region r, TestRun t, Region Basis) {{
    LET float Acc{i} = SUM(tt.Time WHERE tt IN r.TypTimes AND tt.Run == t
            AND (tt.Type == Barrier OR tt.Type == IoRead));
        TotalTiming S{i} = UNIQUE({{s IN r.TotTimes WITH s.Run == t}})
    IN
    CONDITION: (hi{i}) Acc{i} > Threshold0 * S{i}.Incl OR (lo{i}) Acc{i} > 0;
    CONFIDENCE: MAX((hi{i}) -> 1, (lo{i}) -> 0.5);
    SEVERITY: MAX((hi{i}) -> Acc{i} / Duration(Basis, t),
                  (lo{i}) -> Acc{i} / (2 * Duration(Basis, t)));
}}
"#
        ));
    }
    src
}

/// One measured row of the E1 table.
#[derive(Debug, Clone)]
pub struct E1Row {
    /// Input description.
    pub input: String,
    /// Source size in bytes.
    pub bytes: usize,
    /// Properties parsed.
    pub properties: usize,
    /// Wall time for parse + type check, in milliseconds.
    pub wall_ms: f64,
}

/// Run the experiment.
pub fn run() -> Vec<E1Row> {
    let mut rows = Vec::new();
    let mut measure = |name: &str, src: &str| {
        let t0 = Instant::now();
        let spec = parse_and_check(src).expect("spec must check");
        let wall = t0.elapsed().as_secs_f64() * 1e3;
        rows.push(E1Row {
            input: name.to_string(),
            bytes: src.len(),
            properties: spec.properties().len(),
            wall_ms: wall,
        });
    };
    measure("paper suite (§4.1 + §4.2)", &standard_suite_source());
    for n in [10usize, 100, 1000] {
        measure(&format!("synthetic x{n}"), &synthetic_spec(n));
    }
    rows
}

/// Render the E1 table.
pub fn render(rows: &[E1Row]) -> String {
    let mut t = Table::new(&["input", "bytes", "properties", "parse+check [ms]", "MB/s"]);
    for r in rows {
        t.row(vec![
            r.input.clone(),
            r.bytes.to_string(),
            r.properties.to_string(),
            format!("{:.2}", r.wall_ms),
            format!("{:.1}", r.bytes as f64 / 1e6 / (r.wall_ms / 1e3)),
        ]);
    }
    t.render()
}
