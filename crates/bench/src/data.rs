//! Shared dataset builders for the experiments.

use apprentice_sim::{archetypes, simulate_program, MachineModel};
use asl_core::check::CheckedSpec;
use asl_eval::CosyData;
use asl_sql::{generate_schema, loader, SchemaInfo};
use cosy::suite::standard_suite;
use perfdata::{Store, VersionId};
use reldb::Database;

/// Simulate `versions` program versions of each archetype over `pe_counts`.
/// More versions ⇒ linearly more rows in the database.
pub fn mixed_store(versions: usize, pe_counts: &[u32]) -> (Store, Vec<VersionId>) {
    let machine = MachineModel::t3e_900();
    let mut store = Store::new();
    let mut out = Vec::new();
    for seed in 0..versions as u64 {
        for model in archetypes::all(seed) {
            out.push(simulate_program(&mut store, &model, &machine, pe_counts));
        }
    }
    (store, out)
}

/// One particle-MC version (the archetype exercising every §4.2 property).
pub fn particle_store(pe_counts: &[u32]) -> (Store, VersionId) {
    let machine = MachineModel::t3e_900();
    let mut store = Store::new();
    let model = archetypes::particle_mc(42);
    let v = simulate_program(&mut store, &model, &machine, pe_counts);
    (store, v)
}

/// A generated application with roughly `functions`-proportional region
/// count — the scale axis for the work-distribution experiments (real codes
/// have tens to hundreds of instrumented regions).
pub fn generated_store(functions: usize, pe_counts: &[u32]) -> (Store, VersionId) {
    let machine = MachineModel::t3e_900();
    let gen = apprentice_sim::ProgramGenerator {
        seed: 1717,
        functions,
        max_depth: 4,
        max_fanout: 3,
        base_work: 0.02,
        comm_probability: 0.6,
    };
    let model = gen.generate();
    let mut store = Store::new();
    let v = simulate_program(&mut store, &model, &machine, pe_counts);
    (store, v)
}

/// The standard suite plus a database loaded from the store.
pub fn loaded_database(store: &Store) -> (CheckedSpec, SchemaInfo, Database) {
    let spec = standard_suite();
    let schema = generate_schema(&spec.model).expect("schema generation");
    let mut db = Database::new();
    schema.create_all(&mut db).expect("DDL");
    let data = CosyData::new(store);
    loader::load_store(&mut db, &schema, &spec.model, &data).expect("load");
    (spec, schema, db)
}

/// Total dynamic rows (the tables the insertion experiment transfers).
pub fn dynamic_row_count(store: &Store) -> usize {
    store.total_timings.len() + store.typed_timings.len() + store.call_timings.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixed_store_scales_with_versions() {
        let (s1, v1) = mixed_store(1, &[1, 4]);
        let (s2, v2) = mixed_store(2, &[1, 4]);
        assert_eq!(v1.len(), 3);
        assert_eq!(v2.len(), 6);
        assert!(s2.total_timings.len() > s1.total_timings.len());
    }

    #[test]
    fn loaded_database_has_all_tables() {
        let (store, _) = particle_store(&[1, 4]);
        let (_, _, db) = loaded_database(&store);
        assert_eq!(db.table_names().len(), 10);
        assert_eq!(
            db.table("TotalTiming").unwrap().len(),
            store.total_timings.len()
        );
    }
}
