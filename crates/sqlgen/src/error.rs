//! Errors of the ASL→SQL pipeline.

use std::fmt;

/// Why schema generation, loading or compilation failed.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlGenError {
    /// The construct has no relational mapping in this implementation
    /// (e.g. a class that is a member of two different `setof` attributes).
    Unsupported(String),
    /// A name did not resolve (should be prevented by the ASL checker).
    UnknownName(String),
    /// The underlying database reported an error.
    Db(reldb::DbError),
    /// The data source reported an error during loading.
    Data(String),
    /// A compiled query produced an unexpected result shape.
    Result(String),
}

impl fmt::Display for SqlGenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlGenError::Unsupported(m) => write!(f, "unsupported ASL construct: {m}"),
            SqlGenError::UnknownName(m) => write!(f, "unknown name: {m}"),
            SqlGenError::Db(e) => write!(f, "database error: {e}"),
            SqlGenError::Data(m) => write!(f, "data source error: {m}"),
            SqlGenError::Result(m) => write!(f, "unexpected query result: {m}"),
        }
    }
}

impl std::error::Error for SqlGenError {}

impl From<reldb::DbError> for SqlGenError {
    fn from(e: reldb::DbError) -> Self {
        SqlGenError::Db(e)
    }
}

/// Result alias.
pub type SqlGenResult<T> = Result<T, SqlGenError>;
