//! # `asl-sql` — the ASL→SQL compiler
//!
//! §6 of the paper names, as future work, "the automatic generation of the
//! database design from the performance property specification and the
//! automatic translation of the property description into executable code".
//! This crate implements that future work:
//!
//! * [`schema`] — derives a relational schema from the checked ASL data
//!   model: one table per class (synthetic `id` primary key), scalar
//!   attributes become columns, object-valued attributes become foreign-key
//!   columns, and `setof` attributes become an owner foreign key on the
//!   element class (with indexes on every foreign key);
//! * [`loader`] — populates the schema from any
//!   [`asl_eval::ObjectModel`], either directly (fast path) or as a stream
//!   of `INSERT` statements replayed through a cost-charging
//!   [`reldb::remote::Connection`] (the paper's §5 insertion experiment);
//! * [`compile`] — translates ASL expressions into SQL expressions: set
//!   comprehensions and `UNIQUE` become (correlated) scalar subqueries,
//!   quantified aggregates become aggregate subqueries, attribute chains
//!   become foreign-key navigations;
//! * [`property`] — compiles a property instance (property + context
//!   arguments) into a bundle of scalar `SELECT`s for its conditions and
//!   confidence/severity arms, and evaluates such bundles against a
//!   [`reldb::Database`] or a remote [`reldb::remote::Connection`],
//!   producing the same [`asl_eval::PropertyOutcome`] the interpreter
//!   yields — the equivalence is enforced by cross-backend tests.
//!
//! ```
//! use asl_core::parse_and_check;
//! use asl_eval::{CosyData, Value, COSY_DATA_MODEL};
//! use asl_sql::{generate_schema, loader, property};
//!
//! let src = format!("{COSY_DATA_MODEL}\n
//!     PROPERTY MeasuredCost(Region r, TestRun t, Region Basis) {{
//!         LET float Cost = Summary(r,t).Ovhd;
//!         IN CONDITION: Cost > 0; CONFIDENCE: 1;
//!         SEVERITY: Cost / Duration(Basis,t);
//!     }}");
//! let spec = parse_and_check(&src).unwrap();
//!
//! // Simulate a program and load it into a generated schema.
//! let mut store = perfdata::Store::new();
//! let model = apprentice_sim::archetypes::particle_mc(1);
//! let machine = apprentice_sim::MachineModel::t3e_900();
//! let v = apprentice_sim::simulate_program(&mut store, &model, &machine, &[1, 8]);
//! let data = CosyData::new(&store);
//!
//! let schema = generate_schema(&spec.model).unwrap();
//! let mut db = reldb::Database::new();
//! schema.create_all(&mut db).unwrap();
//! loader::load_store(&mut db, &schema, &spec.model, &data).unwrap();
//!
//! // Evaluate the property entirely in SQL.
//! let run = store.versions[v.index()].runs[1];
//! let main = store.main_region(v).unwrap();
//! let compiled = property::compile_property(&spec, &schema, "MeasuredCost",
//!     &[Value::region(main), Value::run(run), Value::region(main)]).unwrap();
//! let outcome = property::eval_compiled(&db, &compiled).unwrap();
//! assert!(outcome.holds);
//! assert!(outcome.severity > 0.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod batch;
pub mod compile;
pub mod error;
pub mod loader;
pub mod property;
pub mod schema;

pub use batch::{compile_batch, eval_batch, eval_batch_conn, BatchCompiled};
pub use error::SqlGenError;
pub use property::{compile_property, eval_compiled, eval_compiled_conn, CompiledProperty};
pub use schema::{generate_schema, AttrBinding, SchemaInfo};
