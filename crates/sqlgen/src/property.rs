//! Property compilation and SQL-side evaluation.
//!
//! A property instance (property name + context arguments) compiles into a
//! bundle of scalar `SELECT` statements — one per condition and one per
//! confidence/severity arm. Evaluating the bundle runs entirely inside the
//! database; only single scalar values cross the connection, which is the
//! §5 insight ("It is a significant advantage to translate the conditions
//! of performance properties entirely into SQL queries").

use crate::compile::{CVal, ExprCompiler};
use crate::error::{SqlGenError, SqlGenResult};
use crate::schema::SchemaInfo;
use asl_core::ast::{ArmSpec, PropertyDecl};
use asl_core::check::CheckedSpec;
use asl_eval::{PropertyOutcome, Value as EvalValue};
use reldb::remote::Connection;
use reldb::sql::ast::{SelectItem, SelectStmt, SqlExpr};
use reldb::sql::render::render_select;
use reldb::value::Value;
use reldb::Database;
use std::collections::HashMap;

/// One compiled scalar query with an optional guard (condition id).
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledScalar {
    /// Guarding condition id (`None` = always applicable).
    pub guard: Option<String>,
    /// The scalar SELECT.
    pub select: SelectStmt,
}

impl CompiledScalar {
    /// Render as SQL text.
    pub fn sql(&self) -> String {
        render_select(&self.select)
    }
}

/// A property compiled for one specific context.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledProperty {
    /// Property name.
    pub name: String,
    /// One query per condition, with its id.
    pub conditions: Vec<CompiledScalar>,
    /// Confidence arms.
    pub confidence: Vec<CompiledScalar>,
    /// Severity arms.
    pub severity: Vec<CompiledScalar>,
}

impl CompiledProperty {
    /// All SQL statements of the bundle (for inspection / logging).
    pub fn all_sql(&self) -> Vec<String> {
        self.conditions
            .iter()
            .chain(&self.confidence)
            .chain(&self.severity)
            .map(CompiledScalar::sql)
            .collect()
    }
}

fn bind_args(prop: &PropertyDecl, args: &[EvalValue]) -> SqlGenResult<HashMap<String, CVal>> {
    if args.len() != prop.params.len() {
        return Err(SqlGenError::Unsupported(format!(
            "property `{}` expects {} arguments, got {}",
            prop.name.name,
            prop.params.len(),
            args.len()
        )));
    }
    let mut env = HashMap::new();
    for (p, a) in prop.params.iter().zip(args) {
        let cval = match a {
            EvalValue::Obj(o) => CVal::Obj {
                class: o.class.as_str().to_string(),
                expr: SqlExpr::Lit(Value::Int(o.index as i64)),
            },
            EvalValue::Int(v) => CVal::Scalar(SqlExpr::Lit(Value::Int(*v))),
            EvalValue::Float(v) => CVal::Scalar(SqlExpr::Lit(Value::Float(*v))),
            EvalValue::Bool(v) => CVal::Scalar(SqlExpr::Lit(Value::Bool(*v))),
            EvalValue::Str(v) => CVal::Scalar(SqlExpr::Lit(Value::Text(v.as_str().to_string()))),
            EvalValue::DateTime(v) => CVal::Scalar(SqlExpr::Lit(Value::Int(*v))),
            EvalValue::Enum(_, v) => {
                CVal::Scalar(SqlExpr::Lit(Value::Text(v.as_str().to_string())))
            }
            other => {
                return Err(SqlGenError::Unsupported(format!(
                    "cannot bind {other} as a property argument"
                )))
            }
        };
        env.insert(p.name.name.clone(), cval);
    }
    Ok(env)
}

fn scalar_select(expr: SqlExpr) -> SelectStmt {
    SelectStmt {
        items: vec![SelectItem::Expr { expr, alias: None }],
        ..Default::default()
    }
}

fn compile_arms(
    cx: &mut ExprCompiler<'_>,
    spec: &ArmSpec,
    env: &HashMap<String, CVal>,
) -> SqlGenResult<Vec<CompiledScalar>> {
    let mut out = Vec::with_capacity(spec.arms.len());
    for arm in &spec.arms {
        let v = cx.compile(&arm.expr, env, 0)?;
        let CVal::Scalar(e) = v else {
            return Err(SqlGenError::Unsupported(
                "confidence/severity arm is not scalar".into(),
            ));
        };
        out.push(CompiledScalar {
            guard: arm.guard.as_ref().map(|g| g.name.clone()),
            select: scalar_select(e),
        });
    }
    Ok(out)
}

/// Compile a property for one context (`args` bound to its parameters, in
/// order). `LET` definitions are bound as compiled values, user functions
/// are inlined.
pub fn compile_property(
    spec: &CheckedSpec,
    schema: &SchemaInfo,
    name: &str,
    args: &[EvalValue],
) -> SqlGenResult<CompiledProperty> {
    let prop = spec
        .property(name)
        .ok_or_else(|| SqlGenError::UnknownName(format!("property `{name}`")))?;
    let mut cx = ExprCompiler::new(spec, schema);
    let mut env = bind_args(prop, args)?;

    for l in &prop.lets {
        let v = cx.compile(&l.value, &env, 0)?;
        env.insert(l.name.name.clone(), v);
    }

    let mut conditions = Vec::with_capacity(prop.conditions.len());
    for c in &prop.conditions {
        let v = cx.compile(&c.expr, &env, 0)?;
        let CVal::Scalar(e) = v else {
            return Err(SqlGenError::Unsupported("condition is not scalar".into()));
        };
        conditions.push(CompiledScalar {
            guard: c.id.as_ref().map(|i| i.name.clone()),
            select: scalar_select(e),
        });
    }

    Ok(CompiledProperty {
        name: name.to_string(),
        conditions,
        confidence: compile_arms(&mut cx, &prop.confidence, &env)?,
        severity: compile_arms(&mut cx, &prop.severity, &env)?,
    })
}

/// How a scalar query result maps to a boolean: NULL is false (the SQL
/// dialect note in `reldb::exec`), matching "condition does not indicate
/// the property".
fn scalar_to_bool(v: &Value) -> bool {
    match v {
        Value::Bool(b) => *b,
        Value::Null => false,
        Value::Int(i) => *i != 0,
        _ => false,
    }
}

fn scalar_to_f64(v: &Value) -> Option<f64> {
    v.as_f64()
}

/// Shared outcome assembly once each query has produced its scalar.
pub(crate) fn assemble(
    name: &str,
    cond_vals: Vec<(Option<String>, Value)>,
    conf_vals: Vec<(Option<String>, Value)>,
    sev_vals: Vec<(Option<String>, Value)>,
) -> PropertyOutcome {
    let fired: Vec<(Option<String>, bool)> = cond_vals
        .into_iter()
        .map(|(id, v)| (id, scalar_to_bool(&v)))
        .collect();
    let holds = fired.iter().any(|(_, b)| *b);
    if !holds {
        return PropertyOutcome {
            property: name.to_string(),
            holds: false,
            fired,
            confidence: 0.0,
            severity: 0.0,
        };
    }
    let applicable = |guard: &Option<String>| match guard {
        None => true,
        Some(g) => fired
            .iter()
            .any(|(id, b)| *b && id.as_deref() == Some(g.as_str())),
    };
    let pick = |vals: &[(Option<String>, Value)]| -> f64 {
        let mut best: Option<f64> = None;
        for (guard, v) in vals {
            if !applicable(guard) {
                continue;
            }
            if let Some(x) = scalar_to_f64(v) {
                best = Some(best.map_or(x, |b: f64| b.max(x)));
            }
        }
        best.unwrap_or(0.0)
    };
    let confidence = pick(&conf_vals).clamp(0.0, 1.0);
    let severity = pick(&sev_vals);
    PropertyOutcome {
        property: name.to_string(),
        holds: true,
        fired,
        confidence,
        severity,
    }
}

fn run_scalar_db(db: &Database, cs: &CompiledScalar) -> SqlGenResult<Value> {
    let r = db.query(&cs.sql())?;
    match r.scalar() {
        Some(v) => Ok(v.clone()),
        None => Err(SqlGenError::Result(format!(
            "query `{}` returned {} rows",
            cs.sql(),
            r.rows.len()
        ))),
    }
}

/// Evaluate a compiled property against an embedded database (no cost
/// model) and produce the interpreter-compatible outcome.
pub fn eval_compiled(db: &Database, cp: &CompiledProperty) -> SqlGenResult<PropertyOutcome> {
    let mut cond_vals = Vec::with_capacity(cp.conditions.len());
    for c in &cp.conditions {
        cond_vals.push((c.guard.clone(), run_scalar_db(db, c)?));
    }
    let holds = cond_vals.iter().any(|(_, v)| scalar_to_bool(v));
    // Arms are only run when the property holds (severity of a non-holding
    // property is 0 by definition).
    let (conf_vals, sev_vals) = if holds {
        let mut cv = Vec::new();
        for a in &cp.confidence {
            cv.push((a.guard.clone(), run_scalar_db(db, a)?));
        }
        let mut sv = Vec::new();
        for a in &cp.severity {
            sv.push((a.guard.clone(), run_scalar_db(db, a)?));
        }
        (cv, sv)
    } else {
        (Vec::new(), Vec::new())
    };
    Ok(assemble(&cp.name, cond_vals, conf_vals, sev_vals))
}

/// Evaluate a compiled property through a cost-charging [`Connection`]
/// (virtual network + server costs apply; used by the E4/E7 experiments).
pub fn eval_compiled_conn(
    conn: &mut Connection,
    cp: &CompiledProperty,
) -> SqlGenResult<PropertyOutcome> {
    let mut run_scalar = |cs: &CompiledScalar| -> SqlGenResult<Value> {
        let r = conn.execute(&cs.sql())?;
        match r.scalar() {
            Some(v) => Ok(v.clone()),
            None => Err(SqlGenError::Result(format!(
                "query `{}` returned {} rows",
                cs.sql(),
                r.rows.len()
            ))),
        }
    };
    let mut cond_vals = Vec::with_capacity(cp.conditions.len());
    for c in &cp.conditions {
        cond_vals.push((c.guard.clone(), run_scalar(c)?));
    }
    let holds = cond_vals.iter().any(|(_, v)| scalar_to_bool(v));
    let (conf_vals, sev_vals) = if holds {
        let mut cv = Vec::new();
        for a in &cp.confidence {
            cv.push((a.guard.clone(), run_scalar(a)?));
        }
        let mut sv = Vec::new();
        for a in &cp.severity {
            sv.push((a.guard.clone(), run_scalar(a)?));
        }
        (cv, sv)
    } else {
        (Vec::new(), Vec::new())
    };
    Ok(assemble(&cp.name, cond_vals, conf_vals, sev_vals))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loader;
    use crate::schema::generate_schema;
    use apprentice_sim::{archetypes, simulate_program, MachineModel};
    use asl_core::parse_and_check;
    use asl_eval::{CosyData, Interpreter, COSY_DATA_MODEL};
    use perfdata::Store;

    const PAPER_PROPERTIES: &str = r#"
        float ImbalanceThreshold = 0.25;

        Property SublinearSpeedup(Region r, TestRun t, Region Basis) {
            LET TotalTiming MinPeSum = UNIQUE({sum IN r.TotTimes WITH sum.Run.NoPe ==
                    MIN(s.Run.NoPe WHERE s IN r.TotTimes)});
                float TotalCost = Duration(r,t) - Duration(r,MinPeSum.Run)
            IN
            CONDITION: TotalCost>0; CONFIDENCE: 1;
            SEVERITY: TotalCost/Duration(Basis,t);
        }

        Property MeasuredCost (Region r, TestRun t, Region Basis) {
            LET float Cost = Summary(r,t).Ovhd;
            IN CONDITION: Cost > 0; CONFIDENCE: 1;
            SEVERITY: Cost / Duration(Basis,t);
        }

        Property SyncCost(Region r, TestRun t, Region Basis) {
            LET float Barrier2 = SUM(tt.Time WHERE tt IN r.TypTimes AND tt.Run==t
                    AND tt.Type == Barrier);
            IN CONDITION: Barrier2 > 0; CONFIDENCE: 1;
            SEVERITY: Barrier2 / Duration(Basis,t);
        }

        Property LoadImbalance(FunctionCall Call, TestRun t, Region Basis) {
            LET CallTiming ct = UNIQUE ({c IN Call.Sums WITH c.Run == t});
                float Dev = ct.StdevTime;
                float Mean = ct.MeanTime;
            IN CONDITION: Dev > ImbalanceThreshold * Mean; CONFIDENCE: 1;
            SEVERITY: Mean / Duration(Basis,t);
        }
    "#;

    struct Fixture {
        store: Store,
        version: perfdata::VersionId,
        spec: asl_core::check::CheckedSpec,
        schema: SchemaInfo,
        db: Database,
    }

    fn fixture() -> Fixture {
        let mut store = Store::new();
        let model = archetypes::particle_mc(17);
        let machine = MachineModel::t3e_900();
        let version = simulate_program(&mut store, &model, &machine, &[1, 4, 16]);
        let src = format!("{COSY_DATA_MODEL}\n{PAPER_PROPERTIES}");
        let spec = parse_and_check(&src).unwrap_or_else(|d| panic!("{}", d.render(&src)));
        let schema = generate_schema(&spec.model).unwrap();
        let mut db = Database::new();
        schema.create_all(&mut db).unwrap();
        let data = CosyData::new(&store);
        loader::load_store(&mut db, &schema, &spec.model, &data).unwrap();
        Fixture {
            store,
            version,
            spec,
            schema,
            db,
        }
    }

    #[test]
    fn paper_properties_evaluate_in_sql() {
        let f = fixture();
        let runs = f.store.versions[f.version.index()].runs.clone();
        let main = f.store.main_region(f.version).unwrap();
        let big_run = runs[2];
        let args = vec![
            EvalValue::region(main),
            EvalValue::run(big_run),
            EvalValue::region(main),
        ];
        let cp = compile_property(&f.spec, &f.schema, "SublinearSpeedup", &args).unwrap();
        let o = eval_compiled(&f.db, &cp).unwrap();
        assert!(o.holds, "main region must lose cycles at 16 PEs");
        assert!(o.severity > 0.0);
        assert_eq!(o.confidence, 1.0);
    }

    #[test]
    fn sql_and_interpreter_agree_on_all_contexts() {
        let f = fixture();
        let data = CosyData::new(&f.store);
        let interp = Interpreter::new(&f.spec, &data).unwrap();
        let runs = f.store.versions[f.version.index()].runs.clone();
        let main = f.store.main_region(f.version).unwrap();

        let mut contexts = 0;
        let mut holding = 0;
        for prop in ["SublinearSpeedup", "MeasuredCost", "SyncCost"] {
            for region_idx in 0..f.store.regions.len() {
                for &run in &runs {
                    let args = vec![
                        EvalValue::obj("Region", region_idx as u32),
                        EvalValue::run(run),
                        EvalValue::region(main),
                    ];
                    let sql_outcome = compile_property(&f.spec, &f.schema, prop, &args)
                        .and_then(|cp| eval_compiled(&f.db, &cp))
                        .unwrap();
                    match interp.eval_property(prop, &args) {
                        Ok(int_outcome) => {
                            contexts += 1;
                            assert_eq!(
                                int_outcome.holds, sql_outcome.holds,
                                "{prop} region {region_idx} run {run}"
                            );
                            if int_outcome.holds {
                                holding += 1;
                                assert!(
                                    (int_outcome.severity - sql_outcome.severity).abs()
                                        < 1e-9 * int_outcome.severity.abs().max(1.0),
                                    "{prop}: severities differ: {} vs {}",
                                    int_outcome.severity,
                                    sql_outcome.severity
                                );
                                assert_eq!(int_outcome.confidence, sql_outcome.confidence);
                            }
                        }
                        Err(e) if e.is_not_applicable() => {
                            // Interpreter: not applicable; SQL returns
                            // holds=false (NULL comparisons). Both report no
                            // problem.
                            assert!(
                                !sql_outcome.holds,
                                "{prop}: SQL reported a problem on a not-applicable context"
                            );
                        }
                        Err(e) => panic!("{prop}: interpreter error {e}"),
                    }
                }
            }
        }
        assert!(contexts > 20, "cross-checked {contexts} contexts");
        assert!(holding > 5, "some contexts must hold ({holding} did)");
    }

    #[test]
    fn load_imbalance_agrees_on_barrier_calls() {
        let f = fixture();
        let data = CosyData::new(&f.store);
        let interp = Interpreter::new(&f.spec, &data).unwrap();
        let runs = f.store.versions[f.version.index()].runs.clone();
        let main = f.store.main_region(f.version).unwrap();
        let barrier_fn = f
            .store
            .functions
            .iter()
            .position(|fun| fun.name == "barrier")
            .unwrap();
        let calls = f.store.functions[barrier_fn].calls.clone();
        assert!(!calls.is_empty());
        let mut any_held = false;
        for call in calls {
            for &run in &runs {
                let args = vec![
                    EvalValue::call(call),
                    EvalValue::run(run),
                    EvalValue::region(main),
                ];
                let sql_outcome = compile_property(&f.spec, &f.schema, "LoadImbalance", &args)
                    .and_then(|cp| eval_compiled(&f.db, &cp))
                    .unwrap();
                match interp.eval_property("LoadImbalance", &args) {
                    Ok(o) => {
                        assert_eq!(o.holds, sql_outcome.holds);
                        any_held |= o.holds;
                    }
                    Err(e) if e.is_not_applicable() => assert!(!sql_outcome.holds),
                    Err(e) => panic!("{e}"),
                }
            }
        }
        assert!(any_held, "particle_mc at 16 PEs must show load imbalance");
    }

    #[test]
    fn compiled_sql_is_parseable_text() {
        let f = fixture();
        let main = f.store.main_region(f.version).unwrap();
        let run = f.store.versions[f.version.index()].runs[1];
        let cp = compile_property(
            &f.spec,
            &f.schema,
            "SyncCost",
            &[
                EvalValue::region(main),
                EvalValue::run(run),
                EvalValue::region(main),
            ],
        )
        .unwrap();
        for sql in cp.all_sql() {
            reldb::sql::parse_statement(&sql)
                .unwrap_or_else(|e| panic!("generated SQL does not parse: {sql}\n{e}"));
        }
        assert_eq!(cp.conditions.len(), 1);
        assert_eq!(cp.severity.len(), 1);
    }

    #[test]
    fn severity_queries_skipped_when_not_holding() {
        // A property that never holds: its severity query division by the
        // possibly-zero denominator must never run.
        let f = fixture();
        let src = format!(
            "{COSY_DATA_MODEL}\n
            PROPERTY Never(Region r, TestRun t) {{
                CONDITION: 1 > 2;
                CONFIDENCE: 1;
                SEVERITY: 1.0 / 0.0;
            }}"
        );
        let spec = parse_and_check(&src).unwrap();
        let schema = generate_schema(&spec.model).unwrap();
        let main = f.store.main_region(f.version).unwrap();
        let run = f.store.versions[f.version.index()].runs[0];
        let cp = compile_property(
            &spec,
            &schema,
            "Never",
            &[EvalValue::region(main), EvalValue::run(run)],
        )
        .unwrap();
        let o = eval_compiled(&f.db, &cp).unwrap();
        assert!(!o.holds);
        assert_eq!(o.severity, 0.0);
    }
}
