//! Generic loader: populate a generated schema from any object model.
//!
//! This is the paper's "performance data supply tools are extended such
//! that the information can be inserted into the database" (§5), made
//! automatic: the loader walks the checked data model, enumerates each
//! class's objects through [`ObjectModel::extent`], reads every attribute,
//! and emits rows. Two paths:
//!
//! * [`load_store`] — direct bulk insertion into an embedded
//!   [`Database`] (used by tests and the analysis backends);
//! * [`insert_statements`] — the same rows as row-at-a-time `INSERT`
//!   statements, replayed through a [`reldb::remote::Connection`] by
//!   experiment E2 to reproduce the §5 insertion-cost comparison.

use crate::error::{SqlGenError, SqlGenResult};
use crate::schema::{AttrBinding, SchemaInfo};
use asl_core::types::{Model, Type};
use asl_eval::{ObjRef, ObjectModel, Value as EvalValue};
use reldb::sql::render::render_value;
use reldb::value::{Row, Value};
use reldb::Database;
use std::collections::HashMap;

/// Convert an interpreter value into a SQL storage value.
fn to_sql_value(v: &EvalValue) -> SqlGenResult<Value> {
    Ok(match v {
        EvalValue::Int(i) => Value::Int(*i),
        EvalValue::Float(f) => Value::Float(*f),
        EvalValue::Bool(b) => Value::Bool(*b),
        EvalValue::Str(s) => Value::Text(s.clone()),
        EvalValue::DateTime(t) => Value::Int(*t),
        EvalValue::Enum(_, variant) => Value::Text(variant.as_str().to_string()),
        EvalValue::Obj(o) => Value::Int(o.index as i64),
        EvalValue::Null => Value::Null,
        EvalValue::Set(_) => {
            return Err(SqlGenError::Data(
                "set value in scalar column position".into(),
            ))
        }
    })
}

/// Build all rows for the schema from the data source.
///
/// Returns `(table name, rows)` pairs in schema order. Owner columns are
/// filled in a second pass by walking every `setof` attribute.
pub fn build_rows<M: ObjectModel>(
    schema: &SchemaInfo,
    model: &Model,
    data: &M,
) -> SqlGenResult<Vec<(String, Vec<Row>)>> {
    let mut tables: Vec<(String, Vec<Row>)> = Vec::new();
    let mut table_index: HashMap<String, usize> = HashMap::new();

    // Pass 1: scalar + FK columns.
    for ts in &schema.tables {
        let class = &ts.name;
        let n = data.extent(class).ok_or_else(|| {
            SqlGenError::Data(format!("data source cannot enumerate class `{class}`"))
        })?;
        let class_sym: asl_core::Symbol = class.as_str().into();
        let mut rows = Vec::with_capacity(n);
        for id in 0..n {
            let obj = ObjRef {
                class: class_sym,
                index: id as u32,
            };
            let mut row = vec![Value::Null; ts.arity()];
            row[0] = Value::Int(id as i64);
            for attr in model.all_attrs(class) {
                if matches!(attr.ty, Type::Set(_)) {
                    continue; // handled via owner columns in pass 2
                }
                let Some(binding) = schema.binding(class, &attr.name) else {
                    continue;
                };
                let col = match binding {
                    AttrBinding::ScalarColumn { column } | AttrBinding::ObjectFk { column, .. } => {
                        ts.column_index(column).expect("generated column exists")
                    }
                    AttrBinding::SetOwner { .. } => continue,
                };
                let v = data
                    .attr(&obj, &attr.name)
                    .map_err(|e| SqlGenError::Data(e.to_string()))?;
                row[col] = to_sql_value(&v)?;
            }
            rows.push(row);
        }
        table_index.insert(class.clone(), tables.len());
        tables.push((class.clone(), rows));
    }

    // Pass 2: owner columns from `setof` attributes.
    for ts in &schema.tables {
        let class = &ts.name;
        let class_sym: asl_core::Symbol = class.as_str().into();
        for attr in model.all_attrs(class) {
            let Type::Set(_) = attr.ty else { continue };
            let Some(AttrBinding::SetOwner {
                target,
                owner_column,
            }) = schema.binding(class, &attr.name)
            else {
                continue;
            };
            let target_ts = schema.table(target).expect("target table exists");
            let owner_col = target_ts
                .column_index(owner_column)
                .expect("owner column exists");
            let n = data.extent(class).expect("extent checked in pass 1");
            for id in 0..n {
                let obj = ObjRef {
                    class: class_sym,
                    index: id as u32,
                };
                let members = data
                    .attr(&obj, &attr.name)
                    .map_err(|e| SqlGenError::Data(e.to_string()))?;
                let EvalValue::Set(members) = members else {
                    return Err(SqlGenError::Data(format!(
                        "attribute `{}.{}` did not yield a set",
                        class, attr.name
                    )));
                };
                let ti = table_index[target];
                for m in members {
                    let EvalValue::Obj(mref) = m else {
                        return Err(SqlGenError::Data("non-object set member".into()));
                    };
                    tables[ti].1[mref.index as usize][owner_col] = Value::Int(id as i64);
                }
            }
        }
    }

    Ok(tables)
}

/// Load the data source directly into the database (bulk path).
/// Returns the number of rows inserted.
pub fn load_store<M: ObjectModel>(
    db: &mut Database,
    schema: &SchemaInfo,
    model: &Model,
    data: &M,
) -> SqlGenResult<u64> {
    let mut total = 0;
    for (table, rows) in build_rows(schema, model, data)? {
        total += db.insert_rows(&table, rows)?;
    }
    Ok(total)
}

/// Render the same rows as row-at-a-time `INSERT` statements — the transfer
/// pattern of the paper's tool, used by the E2 insertion experiment.
pub fn insert_statements<M: ObjectModel>(
    schema: &SchemaInfo,
    model: &Model,
    data: &M,
) -> SqlGenResult<Vec<String>> {
    let mut out = Vec::new();
    for (table, rows) in build_rows(schema, model, data)? {
        let ts = schema.table(&table).expect("table exists");
        let cols: Vec<String> = ts
            .columns
            .iter()
            .map(|c| reldb::sql::render::quote_ident(&c.name))
            .collect();
        let col_list = cols.join(", ");
        for row in rows {
            let vals: Vec<String> = row.iter().map(render_value).collect();
            out.push(format!(
                "INSERT INTO {table} ({col_list}) VALUES ({})",
                vals.join(", ")
            ));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::generate_schema;
    use apprentice_sim::{archetypes, simulate_program, MachineModel};
    use asl_core::parse_and_check;
    use asl_eval::{CosyData, COSY_DATA_MODEL};
    use perfdata::Store;

    fn simulated_db() -> (Store, Database, SchemaInfo) {
        let mut store = Store::new();
        let model = archetypes::stencil3d(3);
        let machine = MachineModel::t3e_900();
        simulate_program(&mut store, &model, &machine, &[1, 4]);
        let spec = parse_and_check(COSY_DATA_MODEL).unwrap();
        let schema = generate_schema(&spec.model).unwrap();
        let mut db = Database::new();
        schema.create_all(&mut db).unwrap();
        let data = CosyData::new(&store);
        load_store(&mut db, &schema, &spec.model, &data).unwrap();
        (store, db, schema)
    }

    #[test]
    fn row_counts_match_store() {
        let (store, db, _) = simulated_db();
        assert_eq!(db.table("Region").unwrap().len(), store.regions.len());
        assert_eq!(
            db.table("TotalTiming").unwrap().len(),
            store.total_timings.len()
        );
        assert_eq!(db.table("TestRun").unwrap().len(), store.runs.len());
    }

    #[test]
    fn owner_columns_reconstruct_membership() {
        let (store, db, _) = simulated_db();
        // Every region's TotTimes set must equal the rows with its owner id.
        for (i, region) in store.regions.iter().enumerate() {
            let r = db
                .query(&format!(
                    "SELECT COUNT(*) FROM TotalTiming WHERE TotTimes_owner = {i}"
                ))
                .unwrap();
            assert_eq!(
                r.rows[0][0],
                Value::Int(region.tot_times.len() as i64),
                "region {i}"
            );
        }
    }

    #[test]
    fn fk_columns_match_store() {
        let (store, db, _) = simulated_db();
        let r = db
            .query("SELECT id, Run_id FROM TotalTiming ORDER BY id")
            .unwrap();
        for row in &r.rows {
            let id = row[0].as_i64().unwrap() as usize;
            assert_eq!(
                row[1].as_i64().unwrap() as u32,
                store.total_timings[id].run.0
            );
        }
    }

    #[test]
    fn timing_values_survive_roundtrip() {
        let (store, db, _) = simulated_db();
        let r = db
            .query("SELECT id, Incl, Excl, Ovhd FROM TotalTiming ORDER BY id")
            .unwrap();
        for row in &r.rows {
            let id = row[0].as_i64().unwrap() as usize;
            let t = &store.total_timings[id];
            assert_eq!(row[1].as_f64().unwrap(), t.incl);
            assert_eq!(row[2].as_f64().unwrap(), t.excl);
            assert_eq!(row[3].as_f64().unwrap(), t.ovhd);
        }
    }

    #[test]
    fn enum_values_stored_as_text() {
        let (store, db, _) = simulated_db();
        let r = db.query("SELECT DISTINCT Type FROM TypedTiming").unwrap();
        assert!(!r.rows.is_empty());
        for row in &r.rows {
            let name = row[0].as_str().unwrap();
            assert!(
                perfdata::TimingType::from_name(name).is_some(),
                "bad enum text {name}"
            );
        }
        drop(store);
    }

    #[test]
    fn insert_statements_replay_identically() {
        let (store, db, schema) = simulated_db();
        let spec = parse_and_check(COSY_DATA_MODEL).unwrap();
        let data = CosyData::new(&store);
        let stmts = insert_statements(&schema, &spec.model, &data).unwrap();
        let mut db2 = Database::new();
        schema.create_all(&mut db2).unwrap();
        for s in &stmts {
            db2.execute(s).unwrap();
        }
        // Spot-check equality of an aggregate across both load paths.
        for table in ["TotalTiming", "TypedTiming", "CallTiming"] {
            let q = format!("SELECT COUNT(*) FROM {table}");
            assert_eq!(db.query(&q).unwrap().rows, db2.query(&q).unwrap().rows);
        }
        let q = "SELECT SUM(Incl) FROM TotalTiming";
        let a = db.query(q).unwrap().rows[0][0].as_f64().unwrap();
        let b = db2.query(q).unwrap().rows[0][0].as_f64().unwrap();
        assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }

    #[test]
    fn null_parent_region_loads_as_null() {
        let (_, db, _) = simulated_db();
        let r = db
            .query("SELECT COUNT(*) FROM Region WHERE ParentRegion_id IS NULL")
            .unwrap();
        // One root region per function (incl. runtime routines have no
        // regions, so: one per model function).
        assert!(r.rows[0][0].as_i64().unwrap() >= 2);
    }
}
