//! Whole-context-set compilation: one query per property.
//!
//! Per-context compilation ([`crate::property`]) issues a handful of scalar
//! queries per (property, context) pair. For an analysis over hundreds of
//! regions that still means hundreds of round trips. This module compiles a
//! property **once over a context family**: the family parameter (e.g. the
//! `Region r`) becomes the driving table of a single `SELECT` that returns,
//! per candidate object, its id, every condition value and every
//! confidence/severity arm value — all correlated subqueries evaluated
//! server-side. The client receives one small result set per property, the
//! end point of the §5 argument.
//!
//! Requirements (all satisfied by the standard suite, checked at compile
//! time where possible):
//!
//! * exactly one parameter is the family parameter; the others are fixed;
//! * arm expressions must be *total* over the family (no division by zero
//!   on rows where the property does not hold) — NULLs from empty `UNIQUE`
//!   / `MIN` propagate harmlessly into "does not hold".

use crate::compile::{CVal, ExprCompiler};
use crate::error::{SqlGenError, SqlGenResult};
use crate::property::assemble;
use crate::schema::SchemaInfo;
use asl_core::check::CheckedSpec;
use asl_core::types::Type;
use asl_eval::{PropertyOutcome, Value as EvalValue};
use reldb::remote::Connection;
use reldb::sql::ast::{SelectItem, SelectStmt, SqlExpr, TableRef};
use reldb::sql::render::render_select;
use reldb::value::Value;
use reldb::Database;
use std::collections::HashMap;

/// A property compiled over a whole context family.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchCompiled {
    /// Property name.
    pub name: String,
    /// The single query: `id`, conditions…, confidence arms…, severity
    /// arms… per candidate object.
    pub select: SelectStmt,
    /// Condition guards (ids), in item order.
    pub condition_ids: Vec<Option<String>>,
    /// Confidence arm guards, in item order.
    pub confidence_guards: Vec<Option<String>>,
    /// Severity arm guards, in item order.
    pub severity_guards: Vec<Option<String>>,
}

impl BatchCompiled {
    /// Render the query as SQL text.
    pub fn sql(&self) -> String {
        render_select(&self.select)
    }
}

/// Compile `name` over all objects of its `family_param`-th parameter's
/// class. `fixed` binds every other parameter (by index). `candidates`
/// optionally restricts the family to specific object ids (e.g. barrier
/// calls only).
pub fn compile_batch(
    spec: &CheckedSpec,
    schema: &SchemaInfo,
    name: &str,
    family_param: usize,
    fixed: &[(usize, EvalValue)],
    candidates: Option<&[u32]>,
) -> SqlGenResult<BatchCompiled> {
    let prop = spec
        .property(name)
        .ok_or_else(|| SqlGenError::UnknownName(format!("property `{name}`")))?;
    let sig = &spec.model.properties[name];
    if family_param >= prop.params.len() {
        return Err(SqlGenError::Unsupported(format!(
            "family parameter index {family_param} out of range"
        )));
    }
    let Type::Class(family_class) = &sig.params[family_param].1 else {
        return Err(SqlGenError::Unsupported(
            "family parameter must have a class type".into(),
        ));
    };

    let ctx_alias = "ctx".to_string();
    let mut cx = ExprCompiler::new(spec, schema);
    let mut env: HashMap<String, CVal> = HashMap::new();
    env.insert(
        prop.params[family_param].name.name.clone(),
        CVal::Row {
            class: family_class.clone(),
            alias: ctx_alias.clone(),
        },
    );
    for (idx, val) in fixed {
        if *idx == family_param || *idx >= prop.params.len() {
            return Err(SqlGenError::Unsupported(format!(
                "fixed parameter index {idx} invalid"
            )));
        }
        let cval = match val {
            EvalValue::Obj(o) => CVal::Obj {
                class: o.class.as_str().to_string(),
                expr: SqlExpr::Lit(Value::Int(o.index as i64)),
            },
            EvalValue::Int(v) => CVal::Scalar(SqlExpr::Lit(Value::Int(*v))),
            EvalValue::Float(v) => CVal::Scalar(SqlExpr::Lit(Value::Float(*v))),
            EvalValue::Str(v) => CVal::Scalar(SqlExpr::Lit(Value::Text(v.as_str().to_string()))),
            EvalValue::Bool(v) => CVal::Scalar(SqlExpr::Lit(Value::Bool(*v))),
            EvalValue::DateTime(v) => CVal::Scalar(SqlExpr::Lit(Value::Int(*v))),
            EvalValue::Enum(_, v) => {
                CVal::Scalar(SqlExpr::Lit(Value::Text(v.as_str().to_string())))
            }
            other => {
                return Err(SqlGenError::Unsupported(format!(
                    "cannot bind {other} as a fixed argument"
                )))
            }
        };
        env.insert(prop.params[*idx].name.name.clone(), cval);
    }
    if env.len() != prop.params.len() {
        return Err(SqlGenError::Unsupported(format!(
            "property `{name}` needs {} parameters bound, got {}",
            prop.params.len(),
            env.len()
        )));
    }

    for l in &prop.lets {
        let v = cx.compile(&l.value, &env, 0)?;
        env.insert(l.name.name.clone(), v);
    }

    let mut items = vec![SelectItem::Expr {
        expr: SqlExpr::col(Some(&ctx_alias), "id"),
        alias: Some("ctx_id".to_string()),
    }];
    let push_scalar = |items: &mut Vec<SelectItem>,
                       cx: &mut ExprCompiler<'_>,
                       e: &asl_core::ast::Expr|
     -> SqlGenResult<()> {
        let v = cx.compile(e, &env, 0)?;
        let CVal::Scalar(s) = v else {
            return Err(SqlGenError::Unsupported(
                "batch item did not compile to a scalar".into(),
            ));
        };
        items.push(SelectItem::Expr {
            expr: s,
            alias: None,
        });
        Ok(())
    };

    let mut condition_ids = Vec::new();
    for c in &prop.conditions {
        push_scalar(&mut items, &mut cx, &c.expr)?;
        condition_ids.push(c.id.as_ref().map(|i| i.name.clone()));
    }
    let mut confidence_guards = Vec::new();
    for a in &prop.confidence.arms {
        push_scalar(&mut items, &mut cx, &a.expr)?;
        confidence_guards.push(a.guard.as_ref().map(|g| g.name.clone()));
    }
    let mut severity_guards = Vec::new();
    for a in &prop.severity.arms {
        push_scalar(&mut items, &mut cx, &a.expr)?;
        severity_guards.push(a.guard.as_ref().map(|g| g.name.clone()));
    }

    // The server returns only *holding* rows: the disjunction of all
    // conditions filters everything else before it crosses the wire — the
    // actual payoff of translating conditions into SQL (§5). Rows for
    // non-holding contexts are simply absent from the result.
    let nc = condition_ids.len();
    let holds_filter = items[1..1 + nc]
        .iter()
        .map(|item| match item {
            SelectItem::Expr { expr, .. } => expr.clone(),
            SelectItem::Star => unreachable!("conditions are expressions"),
        })
        .reduce(|a, b| SqlExpr::Binary(reldb::sql::ast::SqlBinOp::Or, Box::new(a), Box::new(b)));
    let candidate_filter = candidates.map(|ids| {
        SqlExpr::InList(
            Box::new(SqlExpr::col(Some(&ctx_alias), "id")),
            ids.iter()
                .map(|id| SqlExpr::Lit(Value::Int(*id as i64)))
                .collect(),
            false,
        )
    });
    let where_ = match (candidate_filter, holds_filter) {
        (Some(a), Some(b)) => Some(SqlExpr::Binary(
            reldb::sql::ast::SqlBinOp::And,
            Box::new(a),
            Box::new(b),
        )),
        (a, b) => a.or(b),
    };

    let select = SelectStmt {
        items,
        from: Some(TableRef {
            table: family_class.clone(),
            alias: Some(ctx_alias.clone()),
        }),
        where_,
        order_by: vec![(SqlExpr::col(Some(&ctx_alias), "id"), false)],
        ..Default::default()
    };

    Ok(BatchCompiled {
        name: name.to_string(),
        select,
        condition_ids,
        confidence_guards,
        severity_guards,
    })
}

fn decode_rows(bc: &BatchCompiled, rows: Vec<Vec<Value>>) -> Vec<(u32, PropertyOutcome)> {
    let nc = bc.condition_ids.len();
    let nf = bc.confidence_guards.len();
    let ns = bc.severity_guards.len();
    let mut out = Vec::with_capacity(rows.len());
    for row in rows {
        debug_assert_eq!(row.len(), 1 + nc + nf + ns);
        let id = row[0].as_i64().unwrap_or(-1);
        if id < 0 {
            continue;
        }
        let cond_vals: Vec<(Option<String>, Value)> = bc
            .condition_ids
            .iter()
            .cloned()
            .zip(row[1..1 + nc].iter().cloned())
            .collect();
        let conf_vals: Vec<(Option<String>, Value)> = bc
            .confidence_guards
            .iter()
            .cloned()
            .zip(row[1 + nc..1 + nc + nf].iter().cloned())
            .collect();
        let sev_vals: Vec<(Option<String>, Value)> = bc
            .severity_guards
            .iter()
            .cloned()
            .zip(row[1 + nc + nf..].iter().cloned())
            .collect();
        out.push((
            id as u32,
            assemble(&bc.name, cond_vals, conf_vals, sev_vals),
        ));
    }
    out
}

/// Run a batch-compiled property against an embedded database. Returns one
/// outcome per **holding** candidate object, ordered by object id —
/// non-holding contexts are filtered server-side and absent.
pub fn eval_batch(db: &Database, bc: &BatchCompiled) -> SqlGenResult<Vec<(u32, PropertyOutcome)>> {
    let r = db.query(&bc.sql())?;
    Ok(decode_rows(bc, r.rows))
}

/// Run a batch-compiled property through a cost-charging connection.
pub fn eval_batch_conn(
    conn: &mut Connection,
    bc: &BatchCompiled,
) -> SqlGenResult<Vec<(u32, PropertyOutcome)>> {
    let r = conn.execute(&bc.sql())?;
    Ok(decode_rows(bc, r.rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loader;
    use crate::property::{compile_property, eval_compiled};
    use crate::schema::generate_schema;
    use apprentice_sim::{archetypes, simulate_program, MachineModel};
    use asl_core::parse_and_check;
    use asl_eval::{CosyData, COSY_DATA_MODEL};
    use perfdata::Store;

    const PROPS: &str = r#"
        Property SyncCost(Region r, TestRun t, Region Basis) {
            LET float Barrier2 = SUM(tt.Time WHERE tt IN r.TypTimes AND tt.Run==t
                    AND tt.Type == Barrier)
            IN CONDITION: Barrier2 > 0; CONFIDENCE: 1;
            SEVERITY: Barrier2 / Duration(Basis,t);
        }
        Property MeasuredCost (Region r, TestRun t, Region Basis) {
            LET float Cost = Summary(r,t).Ovhd
            IN CONDITION: Cost > 0; CONFIDENCE: 1;
            SEVERITY: Cost / Duration(Basis,t);
        }
    "#;

    fn fixture() -> (
        Store,
        perfdata::VersionId,
        asl_core::check::CheckedSpec,
        SchemaInfo,
        Database,
    ) {
        let mut store = Store::new();
        let model = archetypes::particle_mc(9);
        let machine = MachineModel::t3e_900();
        let version = simulate_program(&mut store, &model, &machine, &[1, 8]);
        let src = format!("{COSY_DATA_MODEL}\n{PROPS}");
        let spec = parse_and_check(&src).unwrap();
        let schema = generate_schema(&spec.model).unwrap();
        let mut db = Database::new();
        schema.create_all(&mut db).unwrap();
        let data = CosyData::new(&store);
        loader::load_store(&mut db, &schema, &spec.model, &data).unwrap();
        (store, version, spec, schema, db)
    }

    #[test]
    fn batch_agrees_with_per_context_compilation() {
        let (store, version, spec, schema, db) = fixture();
        let run = store.versions[version.index()].runs[1];
        let main = store.main_region(version).unwrap();
        let fixed = [
            (1usize, EvalValue::run(run)),
            (2usize, EvalValue::region(main)),
        ];
        for prop in ["SyncCost", "MeasuredCost"] {
            let bc = compile_batch(&spec, &schema, prop, 0, &fixed, None).unwrap();
            let batch: std::collections::HashMap<u32, _> =
                eval_batch(&db, &bc).unwrap().into_iter().collect();
            let mut holding = 0;
            for id in 0..store.regions.len() as u32 {
                let args = vec![
                    EvalValue::obj("Region", id),
                    EvalValue::run(run),
                    EvalValue::region(main),
                ];
                let single = compile_property(&spec, &schema, prop, &args)
                    .and_then(|cp| eval_compiled(&db, &cp))
                    .unwrap();
                match batch.get(&id) {
                    Some(outcome) => {
                        // Batch returns only holding rows.
                        assert!(single.holds, "{prop} region {id} in batch but not holding");
                        assert!(outcome.holds);
                        holding += 1;
                        assert!(
                            (single.severity - outcome.severity).abs() < 1e-12,
                            "{prop} region {id}: {} vs {}",
                            single.severity,
                            outcome.severity
                        );
                    }
                    None => assert!(!single.holds, "{prop} region {id} missing from batch"),
                }
            }
            assert!(holding > 0, "{prop}: some region must hold");
        }
    }

    #[test]
    fn batch_is_one_query() {
        let (store, version, spec, schema, _) = fixture();
        let run = store.versions[version.index()].runs[1];
        let main = store.main_region(version).unwrap();
        let bc = compile_batch(
            &spec,
            &schema,
            "SyncCost",
            0,
            &[(1, EvalValue::run(run)), (2, EvalValue::region(main))],
            None,
        )
        .unwrap();
        let sql = bc.sql();
        assert!(sql.starts_with("SELECT ctx.id AS ctx_id"), "{sql}");
        assert!(sql.contains("FROM Region ctx"), "{sql}");
        reldb::sql::parse_statement(&sql).expect("batch SQL parses");
    }

    #[test]
    fn candidate_restriction() {
        let (store, version, spec, schema, db) = fixture();
        let run = store.versions[version.index()].runs[1];
        let main = store.main_region(version).unwrap();
        let wanted = [0u32, 2u32];
        let bc = compile_batch(
            &spec,
            &schema,
            "MeasuredCost",
            0,
            &[(1, EvalValue::run(run)), (2, EvalValue::region(main))],
            Some(&wanted),
        )
        .unwrap();
        let rows = eval_batch(&db, &bc).unwrap();
        // Only wanted candidates may appear (holding ones).
        assert!(rows.iter().all(|(id, _)| wanted.contains(id)));
        assert!(!rows.is_empty(), "main region must have measured cost");
    }

    #[test]
    fn wrong_family_binding_is_error() {
        let (_, _, spec, schema, _) = fixture();
        assert!(compile_batch(&spec, &schema, "SyncCost", 9, &[], None).is_err());
        // Missing fixed params.
        assert!(compile_batch(&spec, &schema, "SyncCost", 0, &[], None).is_err());
    }
}
