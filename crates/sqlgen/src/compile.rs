//! ASL expression → SQL expression compilation.
//!
//! The compiler lowers a type-checked ASL expression, in a given binding
//! environment, into a [`SqlExpr`] scalar. The key representations:
//!
//! * **objects** are their integer ids — a context parameter becomes a
//!   literal, an object attribute becomes a foreign-key column or a scalar
//!   subquery;
//! * **sets** stay symbolic until consumed: a [`SetQuery`] holds the element
//!   table, a fresh alias and accumulated predicates; `UNIQUE`, aggregates,
//!   comprehensions and quantifiers turn it into (correlated) subqueries;
//! * **user functions and LET bindings** are inlined by compiling their
//!   bodies in an environment that binds parameters to already-compiled
//!   values — exactly the "translation of the property description into
//!   executable code" automated away from the §5 tool developer.
//!
//! Documented semantic deltas vs the interpreter (`asl-eval`), both benign
//! for the reproduced experiments: empty `MIN`/`MAX`/`AVG` yield SQL `NULL`
//! (the interpreter raises *not applicable*), and `UNIQUE` of an empty set
//! yields `NULL` (comparisons with `NULL` are false, so the affected
//! condition simply does not hold — the same contexts are reported as
//! problems either way; see the cross-backend tests).

use crate::error::{SqlGenError, SqlGenResult};
use crate::schema::{AttrBinding, SchemaInfo};
use asl_core::ast::{AggOp, BinOp, Expr, ExprKind, Quant, UnOp};
use asl_core::check::CheckedSpec;
use reldb::sql::ast::{AggFunc, SelectItem, SelectStmt, SqlBinOp, SqlExpr, TableRef};
use reldb::value::Value;
use std::collections::HashMap;

const MAX_INLINE_DEPTH: usize = 64;

/// A symbolic set: rows of `class` (aliased) satisfying `preds`.
#[derive(Debug, Clone, PartialEq)]
pub struct SetQuery {
    /// Element class (and table name).
    pub class: String,
    /// The row alias bound for this set.
    pub alias: String,
    /// Accumulated predicates over the alias (and outer aliases).
    pub preds: Vec<SqlExpr>,
}

/// A compiled ASL value.
#[derive(Debug, Clone, PartialEq)]
pub enum CVal {
    /// A scalar SQL expression (number, bool, string, datetime, enum text).
    Scalar(SqlExpr),
    /// An object, represented by an id-valued SQL expression.
    Obj {
        /// The object's class.
        class: String,
        /// Id-valued expression.
        expr: SqlExpr,
    },
    /// A bound row variable (comprehension/aggregate binder).
    Row {
        /// The row's class.
        class: String,
        /// The SQL alias it is bound to.
        alias: String,
    },
    /// A symbolic set.
    Set(SetQuery),
}

impl CVal {
    /// View as an id-valued expression (objects and rows).
    fn as_id_expr(&self) -> Option<SqlExpr> {
        match self {
            CVal::Obj { expr, .. } => Some(expr.clone()),
            CVal::Row { alias, .. } => Some(SqlExpr::col(Some(alias), "id")),
            _ => None,
        }
    }

    /// View as a scalar expression (scalars, objects-as-ids, rows-as-ids).
    fn as_scalar(&self) -> Option<SqlExpr> {
        match self {
            CVal::Scalar(e) => Some(e.clone()),
            _ => self.as_id_expr(),
        }
    }
}

/// The expression compiler. One instance per property compilation; fresh
/// aliases are drawn from an internal counter.
pub struct ExprCompiler<'a> {
    spec: &'a CheckedSpec,
    schema: &'a SchemaInfo,
    next_alias: usize,
    const_cache: HashMap<String, SqlExpr>,
}

impl<'a> ExprCompiler<'a> {
    /// Create a compiler for a checked spec and its generated schema.
    pub fn new(spec: &'a CheckedSpec, schema: &'a SchemaInfo) -> Self {
        ExprCompiler {
            spec,
            schema,
            next_alias: 0,
            const_cache: HashMap::new(),
        }
    }

    fn fresh_alias(&mut self) -> String {
        self.next_alias += 1;
        format!("t{}", self.next_alias)
    }

    /// Build `SELECT <item> FROM <set.class> <set.alias> WHERE <preds>`.
    fn set_select(&self, set: &SetQuery, item: SqlExpr) -> SelectStmt {
        let where_ = set
            .preds
            .iter()
            .cloned()
            .reduce(|a, b| SqlExpr::Binary(SqlBinOp::And, Box::new(a), Box::new(b)));
        SelectStmt {
            items: vec![SelectItem::Expr {
                expr: item,
                alias: None,
            }],
            from: Some(TableRef {
                table: set.class.clone(),
                alias: Some(set.alias.clone()),
            }),
            where_,
            ..Default::default()
        }
    }

    /// Build `SELECT alias.column FROM class alias WHERE alias.id = expr`,
    /// fusing with `expr` when it is already a single-table subquery that
    /// selects `inner_alias.id` (no grouping/ordering/limit) — the shape
    /// produced by `UNIQUE` and inlined helper functions.
    fn object_column_select(&mut self, class: &str, expr: SqlExpr, column: &str) -> SelectStmt {
        if let SqlExpr::Subquery(inner) = &expr {
            if inner.joins.is_empty()
                && inner.group_by.is_empty()
                && inner.having.is_none()
                && inner.order_by.is_empty()
                && inner.limit.is_none()
                && !inner.distinct
            {
                if let (Some(from), [SelectItem::Expr { expr: item, .. }]) =
                    (&inner.from, inner.items.as_slice())
                {
                    let visible = from.alias.as_deref().unwrap_or(&from.table);
                    if *item == SqlExpr::col(Some(visible), "id") && from.table == class {
                        let mut fused = (**inner).clone();
                        fused.items = vec![SelectItem::Expr {
                            expr: SqlExpr::col(Some(visible), column),
                            alias: None,
                        }];
                        return fused;
                    }
                }
            }
        }
        let alias = self.fresh_alias();
        let set = SetQuery {
            class: class.to_string(),
            alias: alias.clone(),
            preds: vec![SqlExpr::Binary(
                SqlBinOp::Eq,
                Box::new(SqlExpr::col(Some(&alias), "id")),
                Box::new(expr),
            )],
        };
        self.set_select(&set, SqlExpr::col(Some(&alias), column))
    }

    /// Compile an attribute access on an object or row value.
    fn compile_attr(&mut self, base: CVal, attr: &str) -> SqlGenResult<CVal> {
        let class = match &base {
            CVal::Obj { class, .. } | CVal::Row { class, .. } => class.clone(),
            other => {
                return Err(SqlGenError::Unsupported(format!(
                    "attribute `{attr}` on non-object value {other:?}"
                )))
            }
        };
        let binding = self
            .schema
            .binding(&class, attr)
            .ok_or_else(|| SqlGenError::UnknownName(format!("{class}.{attr}")))?
            .clone();
        match (binding, base) {
            // Row: direct column references.
            (AttrBinding::ScalarColumn { column }, CVal::Row { alias, .. }) => {
                Ok(CVal::Scalar(SqlExpr::col(Some(&alias), &column)))
            }
            (AttrBinding::ObjectFk { column, target }, CVal::Row { alias, .. }) => Ok(CVal::Obj {
                class: target,
                expr: SqlExpr::col(Some(&alias), &column),
            }),
            // Object (id expression): scalar subquery against the class
            // table. When the id expression is itself a single-table
            // id-selecting subquery (the shape `UNIQUE(...)` and inlined
            // helpers produce), fuse the two into one SELECT.
            (AttrBinding::ScalarColumn { column }, CVal::Obj { expr, .. }) => {
                let sel = self.object_column_select(&class, expr, &column);
                Ok(CVal::Scalar(SqlExpr::Subquery(Box::new(sel))))
            }
            (AttrBinding::ObjectFk { column, target }, CVal::Obj { expr, .. }) => {
                let sel = self.object_column_select(&class, expr, &column);
                Ok(CVal::Obj {
                    class: target,
                    expr: SqlExpr::Subquery(Box::new(sel)),
                })
            }
            // Scalar/FK bindings only apply to object-like bases, which is
            // guaranteed by the class extraction above.
            (AttrBinding::ScalarColumn { .. } | AttrBinding::ObjectFk { .. }, other) => {
                unreachable!("attribute base must be an object or row, got {other:?}")
            }
            // setof: a symbolic set of target rows owned by the base object.
            (
                AttrBinding::SetOwner {
                    target,
                    owner_column,
                },
                base,
            ) => {
                let owner_id = base.as_id_expr().expect("object or row");
                let alias = self.fresh_alias();
                Ok(CVal::Set(SetQuery {
                    class: target,
                    alias: alias.clone(),
                    preds: vec![SqlExpr::Binary(
                        SqlBinOp::Eq,
                        Box::new(SqlExpr::col(Some(&alias), &owner_column)),
                        Box::new(owner_id),
                    )],
                }))
            }
        }
    }

    /// Compile an expression in an environment of bound names.
    pub fn compile(
        &mut self,
        e: &Expr,
        env: &HashMap<String, CVal>,
        depth: usize,
    ) -> SqlGenResult<CVal> {
        if depth > MAX_INLINE_DEPTH {
            return Err(SqlGenError::Unsupported(
                "function inlining exceeded the depth limit (recursive helper?)".into(),
            ));
        }
        match &e.kind {
            ExprKind::IntLit(v) => Ok(CVal::Scalar(SqlExpr::Lit(Value::Int(*v)))),
            ExprKind::FloatLit(v) => Ok(CVal::Scalar(SqlExpr::Lit(Value::Float(*v)))),
            ExprKind::StrLit(s) => Ok(CVal::Scalar(SqlExpr::Lit(Value::Text(s.clone())))),
            ExprKind::BoolLit(b) => Ok(CVal::Scalar(SqlExpr::Lit(Value::Bool(*b)))),
            ExprKind::Var(name) => {
                if let Some(v) = env.get(name) {
                    return Ok(v.clone());
                }
                if let Some(c) = self.const_cache.get(name) {
                    return Ok(CVal::Scalar(c.clone()));
                }
                if let Some(decl) = self.spec.spec.constant(name) {
                    let empty = HashMap::new();
                    let compiled = self.compile(&decl.value, &empty, depth + 1)?;
                    let scalar = compiled.as_scalar().ok_or_else(|| {
                        SqlGenError::Unsupported(format!("constant `{name}` is not scalar"))
                    })?;
                    self.const_cache.insert(name.clone(), scalar.clone());
                    return Ok(CVal::Scalar(scalar));
                }
                if self.spec.model.variant_owner.contains_key(name) {
                    // Enum variants are stored as their name text.
                    return Ok(CVal::Scalar(SqlExpr::Lit(Value::Text(name.clone()))));
                }
                Err(SqlGenError::UnknownName(name.clone()))
            }
            ExprKind::Attr(base, attr) => {
                // `UNIQUE(set).attr` compiles to a single scalar subquery.
                if let ExprKind::Unique(inner) = &base.kind {
                    let set = self.compile_set(inner, env, depth)?;
                    // Compile the attribute as if on a row of the set.
                    let row = CVal::Row {
                        class: set.class.clone(),
                        alias: set.alias.clone(),
                    };
                    let val = self.compile_attr(row, &attr.name)?;
                    return match val {
                        CVal::Scalar(item) => Ok(CVal::Scalar(SqlExpr::Subquery(Box::new(
                            self.set_select(&set, item),
                        )))),
                        CVal::Obj { class, expr } => Ok(CVal::Obj {
                            class,
                            expr: SqlExpr::Subquery(Box::new(self.set_select(&set, expr))),
                        }),
                        CVal::Set(_) | CVal::Row { .. } => Err(SqlGenError::Unsupported(
                            "set-valued attribute of UNIQUE(...) in scalar position".into(),
                        )),
                    };
                }
                let b = self.compile(base, env, depth)?;
                self.compile_attr(b, &attr.name)
            }
            ExprKind::Call(name, args) => {
                if name.name == "MAX" || name.name == "MIN" {
                    let func = if name.name == "MAX" {
                        "GREATEST"
                    } else {
                        "LEAST"
                    };
                    let mut compiled = Vec::with_capacity(args.len());
                    for a in args {
                        let v = self.compile(a, env, depth)?;
                        compiled.push(v.as_scalar().ok_or_else(|| {
                            SqlGenError::Unsupported("non-scalar MAX/MIN argument".into())
                        })?);
                    }
                    return Ok(CVal::Scalar(SqlExpr::Func {
                        name: func.to_string(),
                        args: compiled,
                    }));
                }
                let func = self
                    .spec
                    .spec
                    .function(&name.name)
                    .ok_or_else(|| SqlGenError::UnknownName(name.name.clone()))?;
                // Inline: bind compiled arguments as the parameter values.
                let mut inner = HashMap::new();
                for (p, a) in func.params.iter().zip(args) {
                    inner.insert(p.name.name.clone(), self.compile(a, env, depth)?);
                }
                // NOTE: the body is cloned so `self` is free for recursion.
                let body = func.body.clone();
                self.compile(&body, &inner, depth + 1)
            }
            ExprKind::Unary(op, inner) => {
                let v = self.compile(inner, env, depth)?;
                let s = v
                    .as_scalar()
                    .ok_or_else(|| SqlGenError::Unsupported("unary op on set".into()))?;
                Ok(CVal::Scalar(match op {
                    UnOp::Neg => SqlExpr::Neg(Box::new(s)),
                    UnOp::Not => SqlExpr::Not(Box::new(s)),
                }))
            }
            ExprKind::Binary(op, lhs, rhs) => {
                let l = self.compile(lhs, env, depth)?;
                let r = self.compile(rhs, env, depth)?;
                let (ls, rs) = (
                    l.as_scalar().ok_or_else(|| {
                        SqlGenError::Unsupported("set operand of a binary operator".into())
                    })?,
                    r.as_scalar().ok_or_else(|| {
                        SqlGenError::Unsupported("set operand of a binary operator".into())
                    })?,
                );
                let sql_op = match op {
                    BinOp::Add => SqlBinOp::Add,
                    BinOp::Sub => SqlBinOp::Sub,
                    BinOp::Mul => SqlBinOp::Mul,
                    BinOp::Div => SqlBinOp::Div,
                    BinOp::Mod => SqlBinOp::Mod,
                    BinOp::Eq => SqlBinOp::Eq,
                    BinOp::Ne => SqlBinOp::Neq,
                    BinOp::Lt => SqlBinOp::Lt,
                    BinOp::Le => SqlBinOp::Le,
                    BinOp::Gt => SqlBinOp::Gt,
                    BinOp::Ge => SqlBinOp::Ge,
                    BinOp::And => SqlBinOp::And,
                    BinOp::Or => SqlBinOp::Or,
                };
                Ok(CVal::Scalar(SqlExpr::Binary(
                    sql_op,
                    Box::new(ls),
                    Box::new(rs),
                )))
            }
            ExprKind::SetComp { .. } => Ok(CVal::Set(self.compile_set(e, env, depth)?)),
            ExprKind::Unique(inner) => {
                let set = self.compile_set(inner, env, depth)?;
                let id = SqlExpr::col(Some(&set.alias), "id");
                let sel = self.set_select(&set, id);
                Ok(CVal::Obj {
                    class: set.class,
                    expr: SqlExpr::Subquery(Box::new(sel)),
                })
            }
            ExprKind::Aggregate {
                op,
                value,
                binder,
                source,
                pred,
            } => {
                let mut set = self.compile_set(source, env, depth)?;
                let mut inner = env.clone();
                inner.insert(
                    binder.name.clone(),
                    CVal::Row {
                        class: set.class.clone(),
                        alias: set.alias.clone(),
                    },
                );
                if let Some(p) = pred {
                    let pv = self.compile(p, &inner, depth)?;
                    set.preds.push(pv.as_scalar().ok_or_else(|| {
                        SqlGenError::Unsupported("non-scalar aggregate predicate".into())
                    })?);
                }
                let vv = self.compile(value, &inner, depth)?;
                let item = vv
                    .as_scalar()
                    .ok_or_else(|| SqlGenError::Unsupported("non-scalar aggregate value".into()))?;
                let func = match op {
                    AggOp::Sum => AggFunc::Sum,
                    AggOp::Min => AggFunc::Min,
                    AggOp::Max => AggFunc::Max,
                    AggOp::Avg => AggFunc::Avg,
                    AggOp::Count => AggFunc::Count,
                };
                let agg = SqlExpr::Agg {
                    func,
                    arg: Some(Box::new(item)),
                    distinct: false,
                };
                // Empty SUM/COUNT must be 0 to match the interpreter.
                let agg = if matches!(op, AggOp::Sum) {
                    SqlExpr::Func {
                        name: "COALESCE".to_string(),
                        args: vec![agg, SqlExpr::Lit(Value::Int(0))],
                    }
                } else {
                    agg
                };
                let sel = self.set_select(&set, agg);
                Ok(CVal::Scalar(SqlExpr::Subquery(Box::new(sel))))
            }
            ExprKind::Quantifier {
                q,
                binder,
                source,
                pred,
            } => {
                let mut set = self.compile_set(source, env, depth)?;
                let mut inner = env.clone();
                inner.insert(
                    binder.name.clone(),
                    CVal::Row {
                        class: set.class.clone(),
                        alias: set.alias.clone(),
                    },
                );
                let pv = self.compile(pred, &inner, depth)?;
                let ps = pv.as_scalar().ok_or_else(|| {
                    SqlGenError::Unsupported("non-scalar quantifier predicate".into())
                })?;
                match q {
                    Quant::Exists => {
                        set.preds.push(ps);
                        let sel = self.set_select(&set, SqlExpr::Lit(Value::Int(1)));
                        Ok(CVal::Scalar(SqlExpr::Exists(Box::new(sel))))
                    }
                    Quant::Forall => {
                        // FORALL p == NOT EXISTS (NOT p)
                        set.preds.push(SqlExpr::Not(Box::new(ps)));
                        let sel = self.set_select(&set, SqlExpr::Lit(Value::Int(1)));
                        Ok(CVal::Scalar(SqlExpr::Not(Box::new(SqlExpr::Exists(
                            Box::new(sel),
                        )))))
                    }
                }
            }
            ExprKind::CountSet(inner) => {
                let set = self.compile_set(inner, env, depth)?;
                let sel = self.set_select(
                    &set,
                    SqlExpr::Agg {
                        func: AggFunc::Count,
                        arg: None,
                        distinct: false,
                    },
                );
                Ok(CVal::Scalar(SqlExpr::Subquery(Box::new(sel))))
            }
        }
    }

    /// Compile an expression that must denote a set.
    fn compile_set(
        &mut self,
        e: &Expr,
        env: &HashMap<String, CVal>,
        depth: usize,
    ) -> SqlGenResult<SetQuery> {
        match &e.kind {
            ExprKind::SetComp {
                binder,
                source,
                pred,
            } => {
                let mut set = self.compile_set(source, env, depth)?;
                let mut inner = env.clone();
                inner.insert(
                    binder.name.clone(),
                    CVal::Row {
                        class: set.class.clone(),
                        alias: set.alias.clone(),
                    },
                );
                let pv = self.compile(pred, &inner, depth)?;
                set.preds.push(pv.as_scalar().ok_or_else(|| {
                    SqlGenError::Unsupported("non-scalar comprehension predicate".into())
                })?);
                Ok(set)
            }
            _ => match self.compile(e, env, depth)? {
                CVal::Set(s) => Ok(s),
                other => Err(SqlGenError::Unsupported(format!(
                    "expected a set expression, compiled to {other:?}"
                ))),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::generate_schema;
    use asl_core::parse_and_check;
    use asl_core::parser::parse_expr;
    use asl_eval::COSY_DATA_MODEL;
    use reldb::sql::render::render_expr;

    fn compile_str(expr: &str, env: &[(&str, CVal)]) -> String {
        let spec = parse_and_check(COSY_DATA_MODEL).unwrap();
        let schema = generate_schema(&spec.model).unwrap();
        let mut cx = ExprCompiler::new(&spec, &schema);
        let e = parse_expr(expr).unwrap();
        let mut map = HashMap::new();
        for (k, v) in env {
            map.insert(k.to_string(), v.clone());
        }
        let v = cx.compile(&e, &map, 0).unwrap();
        render_expr(&v.as_scalar().expect("scalar result"))
    }

    fn region_param(id: i64) -> CVal {
        CVal::Obj {
            class: "Region".into(),
            expr: SqlExpr::Lit(Value::Int(id)),
        }
    }

    fn run_param(id: i64) -> CVal {
        CVal::Obj {
            class: "TestRun".into(),
            expr: SqlExpr::Lit(Value::Int(id)),
        }
    }

    #[test]
    fn scalar_attribute_on_object_param() {
        let sql = compile_str("t.NoPe", &[("t", run_param(3))]);
        assert_eq!(sql, "(SELECT t1.NoPe FROM TestRun t1 WHERE t1.id = 3)");
    }

    #[test]
    fn sum_aggregate_with_enum_filter() {
        let sql = compile_str(
            "SUM(tt.Time WHERE tt IN r.TypTimes AND tt.Run==t AND tt.Type == Barrier)",
            &[("r", region_param(5)), ("t", run_param(2))],
        );
        assert!(sql.contains("COALESCE(SUM(t1.Time), 0)"), "{sql}");
        assert!(sql.contains("t1.TypTimes_owner = 5"), "{sql}");
        assert!(sql.contains("t1.Run_id = 2"), "{sql}");
        assert!(sql.contains("t1.Type = 'Barrier'"), "{sql}");
    }

    #[test]
    fn unique_attribute_is_single_subquery() {
        let sql = compile_str(
            "UNIQUE({s IN r.TotTimes WITH s.Run == t}).Incl",
            &[("r", region_param(1)), ("t", run_param(0))],
        );
        assert_eq!(
            sql,
            "(SELECT t1.Incl FROM TotalTiming t1 WHERE t1.TotTimes_owner = 1 AND t1.Run_id = 0)"
        );
    }

    #[test]
    fn function_inlining() {
        // Duration(r, t) inlines Summary and the attribute access.
        let sql = compile_str(
            "Duration(r, t)",
            &[("r", region_param(7)), ("t", run_param(1))],
        );
        assert!(sql.contains("SELECT t1.Incl FROM TotalTiming t1"), "{sql}");
        assert!(sql.contains("t1.TotTimes_owner = 7"), "{sql}");
    }

    #[test]
    fn nested_min_aggregate_correlates() {
        // From SublinearSpeedup: the run with the fewest PEs.
        let sql = compile_str(
            "MIN(s.Run.NoPe WHERE s IN r.TotTimes)",
            &[("r", region_param(4))],
        );
        // The inner attribute chain s.Run.NoPe becomes a correlated
        // subquery against TestRun keyed by s's FK.
        assert!(sql.contains("MIN((SELECT"), "{sql}");
        assert!(
            sql.contains("t2.NoPe FROM TestRun t2 WHERE t2.id = t1.Run_id"),
            "{sql}"
        );
    }

    #[test]
    fn arithmetic_and_comparison() {
        let sql = compile_str(
            "Duration(r,t) - Duration(r,t) > 0",
            &[("r", region_param(0)), ("t", run_param(0))],
        );
        assert!(sql.ends_with("> 0"), "{sql}");
    }

    #[test]
    fn exists_quantifier() {
        let sql = compile_str(
            "EXISTS(s IN r.TotTimes WITH s.Incl > 10.0)",
            &[("r", region_param(2))],
        );
        assert!(
            sql.starts_with("EXISTS (SELECT 1 FROM TotalTiming"),
            "{sql}"
        );
        assert!(sql.contains("t1.Incl > 1e1"), "{sql}");
    }

    #[test]
    fn forall_is_not_exists_not() {
        let sql = compile_str(
            "FORALL(s IN r.TotTimes WITH s.Incl >= 0.0)",
            &[("r", region_param(2))],
        );
        assert!(sql.starts_with("NOT EXISTS"), "{sql}");
        assert!(sql.contains("NOT t1.Incl >= 0e0"), "{sql}");
    }

    #[test]
    fn count_set() {
        let sql = compile_str("COUNT(r.TotTimes)", &[("r", region_param(9))]);
        assert_eq!(
            sql,
            "(SELECT COUNT(*) FROM TotalTiming t1 WHERE t1.TotTimes_owner = 9)"
        );
    }

    #[test]
    fn nary_max_uses_greatest() {
        let sql = compile_str("MAX(1, 2, 3)", &[]);
        assert_eq!(sql, "GREATEST(1, 2, 3)");
    }

    #[test]
    fn object_equality_compares_ids() {
        let sql = compile_str(
            "EXISTS(s IN r.TotTimes WITH s.Run == t)",
            &[("r", region_param(1)), ("t", run_param(6))],
        );
        assert!(sql.contains("t1.Run_id = 6"), "{sql}");
    }

    #[test]
    fn unknown_variable_is_error() {
        let spec = parse_and_check(COSY_DATA_MODEL).unwrap();
        let schema = generate_schema(&spec.model).unwrap();
        let mut cx = ExprCompiler::new(&spec, &schema);
        let e = parse_expr("mystery + 1").unwrap();
        assert!(matches!(
            cx.compile(&e, &HashMap::new(), 0),
            Err(SqlGenError::UnknownName(_))
        ));
    }
}
