//! Automatic relational schema generation from an ASL data model.
//!
//! Mapping rules (single-table inheritance — a subclass's table carries the
//! inherited attributes too):
//!
//! | ASL construct              | relational mapping                          |
//! |----------------------------|---------------------------------------------|
//! | `class C { … }`            | table `C` with `id INTEGER PRIMARY KEY`      |
//! | `int/float/bool/String a;` | column `a` of the matching SQL type          |
//! | `DateTime a;`              | column `a INTEGER` (µs since the epoch)      |
//! | `EnumType a;`              | column `a TEXT` (variant name)               |
//! | `OtherClass a;`            | column `a_id INTEGER` + index (foreign key)  |
//! | `setof T a;`               | column `a_owner INTEGER` + index on table `T`|
//!
//! A class may be the element type of **at most one** `setof` attribute
//! (true for the COSY model); richer sharing would need junction tables and
//! is reported as [`SqlGenError::Unsupported`].

use crate::error::{SqlGenError, SqlGenResult};
use asl_core::types::{Model, Type};
use reldb::schema::{ColumnDef, TableSchema};
use reldb::value::ColType;
use reldb::Database;
use std::collections::HashMap;

/// How one ASL attribute is represented relationally.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrBinding {
    /// A plain column on the class's own table.
    ScalarColumn {
        /// Column name.
        column: String,
    },
    /// An object-valued attribute: a foreign-key column on the own table.
    ObjectFk {
        /// Column name (`<attr>_id`).
        column: String,
        /// The referenced class/table.
        target: String,
    },
    /// A `setof T` attribute: rows of `target` whose owner column equals
    /// the owning object's id.
    SetOwner {
        /// The element class/table.
        target: String,
        /// Owner column name on the element table (`<attr>_owner`).
        owner_column: String,
    },
}

/// The generated schema plus the attribute→column mapping the compiler and
/// loader share.
#[derive(Debug, Clone, PartialEq)]
pub struct SchemaInfo {
    /// One table per class, in sorted class order.
    pub tables: Vec<TableSchema>,
    /// Mapping `(class, attribute) → binding`. Inherited attributes are
    /// present under the subclass name as well.
    pub bindings: HashMap<(String, String), AttrBinding>,
    /// Columns to index: `(table, column)` for every foreign key.
    pub indexes: Vec<(String, String)>,
}

impl SchemaInfo {
    /// The table schema of a class.
    pub fn table(&self, class: &str) -> Option<&TableSchema> {
        self.tables.iter().find(|t| t.name == class)
    }

    /// Look up an attribute binding.
    pub fn binding(&self, class: &str, attr: &str) -> Option<&AttrBinding> {
        self.bindings.get(&(class.to_string(), attr.to_string()))
    }

    /// The full DDL: `CREATE TABLE` + `CREATE INDEX` statements.
    pub fn ddl(&self) -> Vec<String> {
        let mut out: Vec<String> = self.tables.iter().map(|t| t.to_create_sql()).collect();
        for (table, column) in &self.indexes {
            out.push(format!(
                "CREATE INDEX idx_{table}_{column} ON {} ({})",
                reldb::sql::render::quote_ident(table),
                reldb::sql::render::quote_ident(column)
            ));
        }
        out
    }

    /// Create all tables and indexes in a database.
    pub fn create_all(&self, db: &mut Database) -> SqlGenResult<()> {
        for stmt in self.ddl() {
            db.execute(&stmt)?;
        }
        Ok(())
    }
}

fn col_type_of(ty: &Type) -> SqlGenResult<ColType> {
    Ok(match ty {
        Type::Int => ColType::Integer,
        Type::Float => ColType::Real,
        Type::Bool => ColType::Boolean,
        Type::Str => ColType::Text,
        Type::DateTime => ColType::Integer,
        Type::Enum(_) => ColType::Text,
        other => {
            return Err(SqlGenError::Unsupported(format!(
                "no scalar column type for `{other}`"
            )))
        }
    })
}

/// Generate the relational schema for a checked data model.
pub fn generate_schema(model: &Model) -> SqlGenResult<SchemaInfo> {
    let mut class_names: Vec<&String> = model.classes.keys().collect();
    class_names.sort();

    // First pass: find the owner relationship of every `setof` target.
    // owner_of[target] = (owner class, attr name).
    let mut owner_of: HashMap<String, (String, String)> = HashMap::new();
    for cname in &class_names {
        for attr in model.all_attrs(cname) {
            if let Type::Set(elem) = &attr.ty {
                let Type::Class(target) = elem.as_ref() else {
                    return Err(SqlGenError::Unsupported(format!(
                        "`setof {}` of non-class elements in `{cname}`",
                        elem
                    )));
                };
                // Inherited setof attrs appear once per subclass; the
                // declaring class is the canonical owner.
                if attr.declared_in != ***cname {
                    continue;
                }
                if let Some((prev_owner, prev_attr)) =
                    owner_of.insert(target.clone(), ((**cname).clone(), attr.name.clone()))
                {
                    return Err(SqlGenError::Unsupported(format!(
                        "class `{target}` is a member of two setof attributes \
                         (`{prev_owner}.{prev_attr}` and `{cname}.{}`); junction tables \
                         are not implemented",
                        attr.name
                    )));
                }
            }
        }
    }

    let mut tables = Vec::new();
    let mut bindings = HashMap::new();
    let mut indexes = Vec::new();

    for cname in &class_names {
        let mut columns = vec![ColumnDef::not_null("id", ColType::Integer)];
        for attr in model.all_attrs(cname) {
            match &attr.ty {
                Type::Set(elem) => {
                    let Type::Class(target) = elem.as_ref() else {
                        unreachable!("checked above");
                    };
                    bindings.insert(
                        ((**cname).clone(), attr.name.clone()),
                        AttrBinding::SetOwner {
                            target: target.clone(),
                            owner_column: format!("{}_owner", attr.name),
                        },
                    );
                }
                Type::Class(target) => {
                    let column = format!("{}_id", attr.name);
                    columns.push(ColumnDef::new(column.clone(), ColType::Integer));
                    indexes.push(((**cname).clone(), column.clone()));
                    bindings.insert(
                        ((**cname).clone(), attr.name.clone()),
                        AttrBinding::ObjectFk {
                            column,
                            target: target.clone(),
                        },
                    );
                }
                scalar => {
                    let ct = col_type_of(scalar)?;
                    columns.push(ColumnDef::new(attr.name.clone(), ct));
                    bindings.insert(
                        ((**cname).clone(), attr.name.clone()),
                        AttrBinding::ScalarColumn {
                            column: attr.name.clone(),
                        },
                    );
                }
            }
        }
        // Owner column if this class is a setof target.
        if let Some((_, attr_name)) = owner_of.get(*cname) {
            let column = format!("{attr_name}_owner");
            if columns.iter().any(|c| c.name.eq_ignore_ascii_case(&column)) {
                return Err(SqlGenError::Unsupported(format!(
                    "owner column `{column}` collides with an attribute of `{cname}`"
                )));
            }
            columns.push(ColumnDef::new(column.clone(), ColType::Integer));
            indexes.push(((**cname).clone(), column));
        }
        tables
            .push(TableSchema::new((**cname).clone(), columns, Some(0)).map_err(SqlGenError::Db)?);
    }

    Ok(SchemaInfo {
        tables,
        bindings,
        indexes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use asl_core::parse_and_check;
    use asl_eval::COSY_DATA_MODEL;

    fn cosy_schema() -> SchemaInfo {
        let spec = parse_and_check(COSY_DATA_MODEL).unwrap();
        generate_schema(&spec.model).unwrap()
    }

    #[test]
    fn generates_one_table_per_class() {
        let s = cosy_schema();
        assert_eq!(s.tables.len(), 10);
        assert!(s.table("Region").is_some());
        assert!(s.table("CallTiming").is_some());
    }

    #[test]
    fn every_table_has_id_primary_key() {
        for t in cosy_schema().tables {
            assert_eq!(t.primary_key, Some(0));
            assert_eq!(t.columns[0].name, "id");
        }
    }

    #[test]
    fn scalar_and_fk_columns() {
        let s = cosy_schema();
        let run = s.table("TestRun").unwrap();
        assert!(run.column_index("NoPe").is_some());
        assert!(run.column_index("Start").is_some()); // DateTime as INTEGER
        let tt = s.table("TotalTiming").unwrap();
        assert!(tt.column_index("Run_id").is_some());
        assert!(tt.column_index("Incl").is_some());
        assert!(matches!(
            s.binding("TotalTiming", "Run"),
            Some(AttrBinding::ObjectFk { target, .. }) if target == "TestRun"
        ));
    }

    #[test]
    fn setof_becomes_owner_column_on_target() {
        let s = cosy_schema();
        let tt = s.table("TotalTiming").unwrap();
        assert!(tt.column_index("TotTimes_owner").is_some());
        assert!(matches!(
            s.binding("Region", "TotTimes"),
            Some(AttrBinding::SetOwner { target, owner_column })
                if target == "TotalTiming" && owner_column == "TotTimes_owner"
        ));
    }

    #[test]
    fn enum_attribute_is_text() {
        let s = cosy_schema();
        let typ = s.table("TypedTiming").unwrap();
        let col = typ.column_index("Type").unwrap();
        assert_eq!(typ.columns[col].ty, ColType::Text);
    }

    #[test]
    fn fks_are_indexed() {
        let s = cosy_schema();
        assert!(s
            .indexes
            .contains(&("TotalTiming".to_string(), "Run_id".to_string())));
        assert!(s
            .indexes
            .contains(&("TotalTiming".to_string(), "TotTimes_owner".to_string())));
    }

    #[test]
    fn ddl_executes_cleanly() {
        let s = cosy_schema();
        let mut db = Database::new();
        s.create_all(&mut db).unwrap();
        assert_eq!(db.table_names().len(), 10);
        // Indexes exist: point query on an owner column uses them.
        let r = db
            .query("SELECT COUNT(*) FROM TotalTiming WHERE TotTimes_owner = 0")
            .unwrap();
        assert_eq!(r.stats.rows_scanned, 0);
    }

    #[test]
    fn double_membership_is_unsupported() {
        let spec = parse_and_check(
            "class A { setof C Items; } class B { setof C Others; } class C { int x; }",
        )
        .unwrap();
        let err = generate_schema(&spec.model).unwrap_err();
        assert!(matches!(err, SqlGenError::Unsupported(_)));
    }

    #[test]
    fn inheritance_flattens_into_subclass_table() {
        let spec =
            parse_and_check("class Base { int A; } class Sub extends Base { float B; }").unwrap();
        let s = generate_schema(&spec.model).unwrap();
        let sub = s.table("Sub").unwrap();
        assert!(sub.column_index("A").is_some());
        assert!(sub.column_index("B").is_some());
        assert!(s.binding("Sub", "A").is_some());
    }

    #[test]
    fn setof_of_builtin_is_unsupported() {
        let spec = parse_and_check("class A { setof int Xs; }").unwrap();
        assert!(generate_schema(&spec.model).is_err());
    }
}
