//! Incremental re-evaluation of the COSY property suite over a changing
//! store.
//!
//! The engine keeps, per test run, the set of property instances that
//! currently *hold* (as [`HeldEntry`] values keyed by property name and
//! context id). A [`StoreDelta`] names the contexts whose inputs changed;
//! only those instances are re-evaluated — through exactly the same
//! [`Analyzer::instances_scoped`] → [`Analyzer::evaluate_instances`] →
//! [`Analyzer::assemble_report`] path the batch analyzer uses — and the
//! results are merged into the held-set before the run's live
//! [`AnalysisReport`] is re-assembled. Because the assembly step sorts with
//! a total, deterministic order, an incrementally maintained report is
//! bit-identical to a batch re-analysis of the same store (enforced by the
//! equivalence proptest in `tests/`).

use crate::builder::StoreDelta;
use crate::error::FlushError;
use asl_core::check::CheckedSpec;
use asl_eval::{compile as compile_ir, CompiledSpec};
use cosy::backend::{Backend, PreparedBackend};
use cosy::{AnalysisReport, Analyzer, ContextScope, HeldEntry, ProblemThreshold};
use obs::{MetricsRegistry, MetricsSnapshot, MetricsSource};
use perfdata::{CallId, RegionId, Store, TestRunId, VersionId};
use rayon::prelude::*;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Counters describing the work the incremental engine actually did —
/// the observable difference to batch re-analysis.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IncrementalStats {
    /// Number of flushes processed.
    pub flushes: u64,
    /// Runs whose report was re-assembled.
    pub runs_reevaluated: u64,
    /// Runs that needed a full (all-context) evaluation.
    pub full_reevaluations: u64,
    /// Property instances evaluated (the dominant cost).
    pub instances_evaluated: u64,
}

impl MetricsSource for IncrementalStats {
    fn collect_into(&self, out: &mut MetricsSnapshot) {
        let IncrementalStats {
            flushes,
            runs_reevaluated,
            full_reevaluations,
            instances_evaluated,
        } = self;
        out.push_counter("kojak_eval_flushes_total", *flushes);
        out.push_counter("kojak_eval_runs_reevaluated_total", *runs_reevaluated);
        out.push_counter("kojak_eval_full_reevaluations_total", *full_reevaluations);
        out.push_counter("kojak_eval_instances_evaluated_total", *instances_evaluated);
    }
}

/// Identity of a held entry within one run: (property, region, call).
type EntryKey = (String, Option<u32>, Option<u32>);

#[derive(Debug, Default)]
struct RunState {
    entries: HashMap<EntryKey, HeldEntry>,
    report: Option<AnalysisReport>,
    /// The version's instance-universe size when `report` was assembled.
    /// Structure growth (a sibling run announcing a new call site) changes
    /// the universe — and therefore the report's `skipped` count — without
    /// dirtying this run's contexts; the flush re-assembles such reports
    /// so they stay bit-identical to a batch pass over the current store.
    instance_total: usize,
}

/// The live incremental analyzer. Owns no store — it is driven with
/// `(store, delta)` pairs by the session layer after each applied batch.
pub struct IncrementalAnalyzer {
    spec: Arc<CheckedSpec>,
    /// The suite lowered once to the slot-indexed IR; every flush re-binds
    /// this shared lowering instead of re-walking the AST.
    compiled: Arc<CompiledSpec>,
    backend: Backend,
    threshold: ProblemThreshold,
    states: HashMap<TestRunId, RunState>,
    basis: HashMap<VersionId, RegionId>,
    /// Runs whose version had no analyzable structure yet; retried on the
    /// next flush.
    pending_full: HashSet<TestRunId>,
    /// Runs whose producer declared them finished (`RunFinished` seen).
    finished: HashSet<TestRunId>,
    stats: IncrementalStats,
    /// Optional metric sink for per-property evaluation counters
    /// (`kojak_eval_property_evaluations_total{property="…"}`).
    registry: Option<Arc<MetricsRegistry>>,
}

impl IncrementalAnalyzer {
    /// Engine with the standard suite and the default (compiled) backend.
    pub fn new(threshold: ProblemThreshold) -> Self {
        Self::with_spec(Arc::new(cosy::suite::standard_suite()), threshold)
    }

    /// Engine with a shared pre-checked suite. The suite is lowered to the
    /// compiled IR once, here.
    pub fn with_spec(spec: Arc<CheckedSpec>, threshold: ProblemThreshold) -> Self {
        let compiled = Arc::new(compile_ir(&spec));
        IncrementalAnalyzer {
            spec,
            compiled,
            backend: Backend::default(),
            threshold,
            states: HashMap::new(),
            basis: HashMap::new(),
            pending_full: HashSet::new(),
            finished: HashSet::new(),
            stats: IncrementalStats::default(),
            registry: None,
        }
    }

    /// Use a different evaluation backend. The compiled IR is the default
    /// (preparation re-binds a shared lowering); the interpreter serves as
    /// a validation oracle, and the SQL backends reload the database on
    /// every flush so they only make sense for cross-checking.
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Record per-property evaluation counts into `registry` on every
    /// flush (one labelled counter per property of the suite).
    pub fn with_registry(mut self, registry: Arc<MetricsRegistry>) -> Self {
        self.registry = Some(registry);
        self
    }

    /// The engine's work counters.
    pub fn stats(&self) -> IncrementalStats {
        self.stats
    }

    /// The shared suite.
    pub fn spec(&self) -> Arc<CheckedSpec> {
        Arc::clone(&self.spec)
    }

    /// The live report of a run, if any data arrived for it.
    pub fn report(&self, run: TestRunId) -> Option<&AnalysisReport> {
        self.states.get(&run).and_then(|s| s.report.as_ref())
    }

    /// True once the run's producer declared it finished (its report is
    /// final unless a later run changes the version's reference
    /// configuration).
    pub fn is_finished(&self, run: TestRunId) -> bool {
        self.finished.contains(&run)
    }

    /// Number of finished runs.
    pub fn finished_count(&self) -> usize {
        self.finished.len()
    }

    /// The finished runs (unordered).
    pub fn finished_runs(&self) -> impl Iterator<Item = TestRunId> + '_ {
        self.finished.iter().copied()
    }

    /// Restore the finished-run set from a snapshot (recovery path).
    pub(crate) fn restore_finished(&mut self, runs: impl IntoIterator<Item = TestRunId>) {
        self.finished.extend(runs);
    }

    /// All live reports.
    pub fn reports(&self) -> impl Iterator<Item = (TestRunId, &AnalysisReport)> {
        self.states
            .iter()
            .filter_map(|(run, s)| s.report.as_ref().map(|r| (*run, r)))
    }

    /// Re-evaluate everything a delta invalidated and refresh the affected
    /// reports. Returns the runs whose report changed, in ascending order.
    pub fn flush(
        &mut self,
        store: &Store,
        delta: &StoreDelta,
    ) -> Result<Vec<TestRunId>, FlushError> {
        #[derive(Debug)]
        enum Scope {
            Full,
            Partial {
                regions: HashSet<RegionId>,
                calls: HashSet<CallId>,
            },
        }

        impl Scope {
            fn add_region(&mut self, r: RegionId) {
                if let Scope::Partial { regions, .. } = self {
                    regions.insert(r);
                }
            }
            fn add_calls(&mut self, cs: &HashSet<CallId>) {
                if let Scope::Partial { calls, .. } = self {
                    calls.extend(cs);
                }
            }
        }

        self.finished.extend(delta.finished_runs.iter().copied());

        let version_of_run = |r: TestRunId| store.runs[r.index()].version;
        let mut scopes: HashMap<VersionId, HashMap<TestRunId, Scope>> = HashMap::new();
        let mark_full = |scopes: &mut HashMap<VersionId, HashMap<TestRunId, Scope>>,
                         run: TestRunId| {
            scopes
                .entry(version_of_run(run))
                .or_default()
                .insert(run, Scope::Full);
        };
        let partial = || Scope::Partial {
            regions: HashSet::new(),
            calls: HashSet::new(),
        };

        for &run in delta.full_runs.iter().chain(self.pending_full.iter()) {
            mark_full(&mut scopes, run);
        }
        self.pending_full.clear();
        // Versions whose static structure grew take part in the flush even
        // with no dirty context: the basis identity is re-audited and any
        // report whose instance universe drifted is re-assembled below.
        for &v in &delta.touched_versions {
            scopes.entry(v).or_default();
        }
        for &v in &delta.full_versions {
            for &run in &store.versions[v.index()].runs {
                mark_full(&mut scopes, run);
            }
        }
        for &region in &delta.regions_all_runs {
            let function = store.regions[region.index()].function;
            let v = store.functions[function.index()].version;
            for &run in &store.versions[v.index()].runs {
                scopes
                    .entry(v)
                    .or_default()
                    .entry(run)
                    .or_insert_with(partial)
                    .add_region(region);
            }
        }
        for (&run, regions) in &delta.dirty_regions {
            let scope = scopes
                .entry(version_of_run(run))
                .or_default()
                .entry(run)
                .or_insert_with(partial);
            for &r in regions {
                scope.add_region(r);
            }
        }
        for (&run, calls) in &delta.dirty_calls {
            scopes
                .entry(version_of_run(run))
                .or_default()
                .entry(run)
                .or_insert_with(partial)
                .add_calls(calls);
        }

        // Ranking-basis audit: a changed basis identity re-bases every
        // severity of the version.
        let mut audit: HashSet<VersionId> = scopes.keys().copied().collect();
        audit.extend(delta.touched_versions.iter().copied());
        for v in audit {
            match (self.basis.get(&v).copied(), store.main_region(v)) {
                (_, None) => {
                    // No structure yet: requeue any marked runs.
                    if let Some(runs) = scopes.remove(&v) {
                        self.pending_full.extend(runs.into_keys());
                    }
                }
                (None, Some(b)) => {
                    self.basis.insert(v, b);
                }
                (Some(old), Some(new)) if old != new => {
                    self.basis.insert(v, new);
                    let entry = scopes.entry(v).or_default();
                    for &run in &store.versions[v.index()].runs {
                        entry.insert(run, Scope::Full);
                    }
                }
                _ => {}
            }
        }

        let spec = Arc::clone(&self.spec);
        let mut updated = Vec::new();
        // Per-property evaluation counts of this flush, applied to the
        // registry once at the end (never inside the merge loop — counter
        // lookup takes a lock).
        let mut property_counts: HashMap<String, u64> = HashMap::new();
        let count_properties = self.registry.is_some() && obs::enabled();
        let mut versions: Vec<VersionId> = scopes.keys().copied().collect();
        versions.sort();

        for v in versions {
            let mut runs = scopes.remove(&v).expect("version scope exists");
            let analyzer = match Analyzer::with_compiled(
                store,
                v,
                Arc::clone(&spec),
                Arc::clone(&self.compiled),
            ) {
                Ok(a) => a,
                Err(_) => {
                    self.pending_full.extend(runs.into_keys());
                    continue;
                }
            };
            let basis = analyzer.basis();

            // A dirty basis region re-bases the whole run.
            for scope in runs.values_mut() {
                if let Scope::Partial { regions, .. } = scope {
                    if regions.contains(&basis) {
                        *scope = Scope::Full;
                    }
                }
            }

            let mut work: Vec<(TestRunId, ContextScope)> = runs
                .into_iter()
                .map(|(run, scope)| {
                    let cs = match scope {
                        Scope::Full => ContextScope::All,
                        Scope::Partial { regions, calls } => ContextScope::Dirty { regions, calls },
                    };
                    (run, cs)
                })
                .collect();
            work.sort_by_key(|(run, _)| *run);

            // The instance universe is a property of the version's
            // structure, identical for every run: count it once per flush.
            let instance_total = analyzer.instance_universe();
            let mut touched_runs: HashSet<TestRunId> = HashSet::new();
            if !work.is_empty() {
                let prepared = match self.backend {
                    Backend::Compiled => {
                        PreparedBackend::from_compiled(Arc::clone(&self.compiled), store)?
                    }
                    other => PreparedBackend::prepare(other, &spec, store)?,
                };

                type Updates = Vec<(EntryKey, Option<HeldEntry>)>;
                let results: Vec<Result<(TestRunId, bool, usize, Updates), FlushError>> = work
                    .par_iter()
                    .map(|(run, scope)| {
                        let instances = analyzer.instances_scoped(*run, scope);
                        let outcomes = analyzer.evaluate_instances(&prepared, &instances)?;
                        let updates: Updates = instances
                            .iter()
                            .zip(outcomes)
                            .map(|((prop, _, ctx), outcome)| {
                                ((prop.clone(), ctx.region, ctx.call), outcome)
                            })
                            .collect();
                        Ok((*run, *scope == ContextScope::All, instances.len(), updates))
                    })
                    .collect();

                for result in results {
                    let (run, full, evaluated, updates) = result?;
                    let state = self.states.entry(run).or_default();
                    if full {
                        state.entries.clear();
                        self.stats.full_reevaluations += 1;
                    }
                    for (key, outcome) in updates {
                        if count_properties {
                            // get-then-insert instead of `entry(clone)`:
                            // one String clone per *distinct* property,
                            // not one per evaluated instance.
                            match property_counts.get_mut(&key.0) {
                                Some(n) => *n += 1,
                                None => {
                                    property_counts.insert(key.0.clone(), 1);
                                }
                            }
                        }
                        match outcome {
                            Some(entry) => {
                                state.entries.insert(key, entry);
                            }
                            None => {
                                state.entries.remove(&key);
                            }
                        }
                    }
                    let skipped = instance_total - state.entries.len();
                    let held: Vec<HeldEntry> = state.entries.values().cloned().collect();
                    state.report =
                        Some(analyzer.assemble_report(run, held, self.threshold, skipped));
                    state.instance_total = instance_total;
                    self.stats.instances_evaluated += evaluated as u64;
                    self.stats.runs_reevaluated += 1;
                    touched_runs.insert(run);
                    updated.push(run);
                }
            }

            // Structure growth re-sizes the instance universe of every run
            // of the version: re-assemble (without re-evaluating) any live
            // report whose cached universe size drifted, so `skipped`
            // counts stay bit-identical to a batch pass over the current
            // store. No held entry can change here — a brand-new context
            // has no data for untouched runs, so nothing new can hold.
            for &run in &store.versions[v.index()].runs {
                if touched_runs.contains(&run) {
                    continue;
                }
                let Some(state) = self.states.get_mut(&run) else {
                    continue;
                };
                if state.report.is_none() {
                    continue;
                }
                if state.instance_total != instance_total {
                    let skipped = instance_total - state.entries.len();
                    let held: Vec<HeldEntry> = state.entries.values().cloned().collect();
                    state.report =
                        Some(analyzer.assemble_report(run, held, self.threshold, skipped));
                    state.instance_total = instance_total;
                    updated.push(run);
                }
            }
        }

        if let Some(registry) = &self.registry {
            for (property, n) in property_counts {
                registry
                    .counter(&format!(
                        "kojak_eval_property_evaluations_total{{property=\"{property}\"}}"
                    ))
                    .add(n);
            }
        }
        self.stats.flushes += 1;
        updated.sort();
        Ok(updated)
    }
}
