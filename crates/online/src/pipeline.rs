//! The sharded ingestion pipeline.
//!
//! Events are routed to one of `shards` worker threads by a hash of their
//! [`RunKey`], so each run's stream is handled by exactly one worker (and
//! stays ordered). Producers that already hold a batch should use
//! [`IngestPipeline::submit_batch`]: the batch is routed in one pass and
//! each shard receives its whole group in a **single** channel send —
//! per-event sends are the regression the batched hot path removes.
//! Workers accumulate events into per-run batches and apply a batch to
//! the shared [`OnlineSession`] when it reaches `batch_size`, when the
//! run finishes, or on a flush barrier. Each shard's input queue is a
//! **bounded** channel: when ingestion outruns application,
//! [`IngestPipeline::submit`] blocks — backpressure flows to the producer
//! instead of growing memory.

use crate::error::FlushError;
use crate::event::{IngestError, RunKey, TraceEvent};
use crate::session::OnlineSession;
use obs::{MetricsSnapshot, MetricsSource};
use std::collections::HashMap;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;

/// The run-key shard router: a splitmix64-style finalizer over the raw
/// key, reduced modulo `shards`. Adjacent producer keys spread evenly.
/// Shared by the in-process [`IngestPipeline`] and the multi-WAL
/// `ShardedSession` of the engine facade, so both layers agree on where a
/// key lands.
pub fn shard_of(key: u64, shards: usize) -> usize {
    let mut h = key.wrapping_add(0x9e37_79b9_7f4a_7c15);
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    (h % shards.max(1) as u64) as usize
}

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Number of shard workers (≥ 1).
    pub shards: usize,
    /// Events buffered per run before the batch is applied.
    pub batch_size: usize,
    /// Bounded capacity of each shard's input queue.
    pub queue_capacity: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            shards: 4,
            batch_size: 256,
            queue_capacity: 1024,
        }
    }
}

/// Counters of one shard worker, aggregated in [`PipelineStats`].
#[derive(Debug, Clone, Default)]
struct ShardStats {
    events: u64,
    batches: u64,
    barrier_acks_lost: u64,
    errors: Vec<String>,
}

/// Aggregate pipeline outcome, returned by [`IngestPipeline::close`].
#[derive(Debug, Clone, Default)]
pub struct PipelineStats {
    /// Events routed through the pipeline.
    pub events: u64,
    /// Events the underlying session had already restored via the
    /// recovery path when this pipeline started — a pipeline over a
    /// recovered session reports its inherited history instead of zeros.
    /// (Named like [`crate::SessionStats::events_replayed`]; the two
    /// report the same quantity from different vantage points.)
    pub events_replayed: u64,
    /// Batches applied to the session.
    pub batches: u64,
    /// Flush-barrier acks a worker could not deliver because the flusher
    /// had already given up on the barrier (its receiver was dropped, e.g.
    /// after [`IngestPipeline::flush`] returned `WorkerLost` for another
    /// shard). The buffered events were still applied — only the
    /// completion signal was lost — but a nonzero count means some flush
    /// returned without proof that this shard had drained.
    pub barrier_acks_lost: u64,
    /// Ingestion errors reported by the session (capped at 32 messages).
    pub errors: Vec<String>,
}

impl MetricsSource for PipelineStats {
    fn collect_into(&self, out: &mut MetricsSnapshot) {
        let PipelineStats {
            events,
            events_replayed,
            batches,
            barrier_acks_lost,
            errors,
        } = self;
        out.push_counter("kojak_pipeline_events_total", *events);
        out.push_counter("kojak_pipeline_events_replayed_total", *events_replayed);
        out.push_counter("kojak_pipeline_batches_total", *batches);
        out.push_counter("kojak_pipeline_barrier_acks_lost_total", *barrier_acks_lost);
        out.push_counter("kojak_pipeline_errors_total", errors.len() as u64);
    }
}

enum ShardMsg {
    Event(TraceEvent),
    /// A pre-routed group of events, all belonging to this shard: one
    /// channel send carries the whole group (see
    /// [`IngestPipeline::submit_batch`]).
    Batch(Vec<TraceEvent>),
    /// Apply all buffered batches, then ack.
    Barrier(SyncSender<()>),
}

/// A running sharded ingestion front-end over an [`OnlineSession`].
pub struct IngestPipeline {
    session: Arc<OnlineSession>,
    senders: Vec<SyncSender<ShardMsg>>,
    workers: Vec<JoinHandle<ShardStats>>,
    /// Time a `submit` spent blocked on a full shard queue — the
    /// backpressure stage of the event lifecycle. Only actual waits are
    /// recorded; the uncontended `try_send` fast path never reads a clock.
    channel_wait_ns: Arc<obs::Histogram>,
}

impl IngestPipeline {
    /// Spawn the shard workers.
    pub fn new(session: Arc<OnlineSession>, config: PipelineConfig) -> Self {
        let shards = config.shards.max(1);
        let batch_size = config.batch_size.max(1);
        let capacity = config.queue_capacity.max(1);
        let mut senders = Vec::with_capacity(shards);
        let mut workers = Vec::with_capacity(shards);
        for _ in 0..shards {
            let (tx, rx) = sync_channel::<ShardMsg>(capacity);
            let session = Arc::clone(&session);
            senders.push(tx);
            workers.push(std::thread::spawn(move || {
                shard_worker(&session, rx, batch_size)
            }));
        }
        let channel_wait_ns = session
            .metrics_registry()
            .histogram("kojak_pipeline_channel_wait_ns");
        IngestPipeline {
            session,
            senders,
            workers,
            channel_wait_ns,
        }
    }

    /// The shared session this pipeline feeds.
    pub fn session(&self) -> &Arc<OnlineSession> {
        &self.session
    }

    fn shard_of(&self, key: RunKey) -> usize {
        shard_of(key.0, self.senders.len())
    }

    /// Submit one event. Blocks when the target shard's queue is full
    /// (bounded-channel backpressure).
    pub fn submit(&self, event: TraceEvent) -> Result<(), IngestError> {
        let shard = self.shard_of(event.run_key());
        self.send(shard, ShardMsg::Event(event))
    }

    /// Submit a batch of events: the batch is routed **once** — a single
    /// pass groups the events per shard — and each shard with work gets
    /// exactly one channel send carrying its whole group, instead of one
    /// send (lock + wake) per event. Per-run ordering is preserved: the
    /// single pass keeps each run's events in stream order, and a run
    /// always maps to the same shard.
    ///
    /// Blocks when a target shard's queue is full, like [`submit`].
    ///
    /// [`submit`]: IngestPipeline::submit
    pub fn submit_batch(&self, events: Vec<TraceEvent>) -> Result<(), IngestError> {
        let shards = self.senders.len();
        if shards == 1 {
            // Nothing to group: the whole batch is one send.
            if events.is_empty() {
                return Ok(());
            }
            return self.send(0, ShardMsg::Batch(events));
        }
        let mut groups: Vec<Vec<TraceEvent>> = vec![Vec::new(); shards];
        for event in events {
            groups[shard_of(event.run_key().0, shards)].push(event);
        }
        for (shard, group) in groups.into_iter().enumerate() {
            if !group.is_empty() {
                self.send(shard, ShardMsg::Batch(group))?;
            }
        }
        Ok(())
    }

    /// One routed send with bounded-channel backpressure; only an actual
    /// wait on a full queue is timed.
    fn send(&self, shard: usize, msg: ShardMsg) -> Result<(), IngestError> {
        match self.senders[shard].try_send(msg) {
            Ok(()) => Ok(()),
            Err(TrySendError::Disconnected(_)) => Err(IngestError::Closed),
            Err(TrySendError::Full(msg)) => {
                // The queue is full: this submit genuinely waits, and only
                // the wait is timed.
                let _stage = self.channel_wait_ns.start_timer();
                self.senders[shard]
                    .send(msg)
                    .map_err(|_| IngestError::Closed)
            }
        }
    }

    /// Drain every shard's buffers into the session, then run one analysis
    /// flush. Returns the runs whose report changed.
    pub fn flush(&self) -> Result<Vec<RunKey>, FlushError> {
        let mut acks = Vec::new();
        for tx in &self.senders {
            let (ack_tx, ack_rx) = sync_channel::<()>(1);
            tx.send(ShardMsg::Barrier(ack_tx))
                .map_err(|_| FlushError::Closed)?;
            acks.push(ack_rx);
        }
        for ack in acks {
            ack.recv().map_err(|_| FlushError::WorkerLost)?;
        }
        self.session.flush()
    }

    /// Shut down: drain all buffers, join the workers, run a final flush,
    /// and return the aggregate statistics.
    pub fn close(self) -> Result<PipelineStats, FlushError> {
        drop(self.senders);
        let mut stats = PipelineStats {
            events_replayed: self.session.stats().events_replayed,
            ..PipelineStats::default()
        };
        for worker in self.workers {
            let shard = worker.join().map_err(|_| FlushError::WorkerLost)?;
            stats.events += shard.events;
            stats.batches += shard.batches;
            stats.barrier_acks_lost += shard.barrier_acks_lost;
            stats.errors.extend(shard.errors);
            stats.errors.truncate(32);
        }
        if stats.barrier_acks_lost > 0 && stats.errors.len() < 32 {
            stats.errors.push(format!(
                "{} flush barrier ack(s) undeliverable: a flush returned \
                 without drain confirmation from every shard",
                stats.barrier_acks_lost
            ));
        }
        self.session.flush()?;
        Ok(stats)
    }
}

fn shard_worker(session: &OnlineSession, rx: Receiver<ShardMsg>, batch_size: usize) -> ShardStats {
    let mut stats = ShardStats::default();
    let mut buffers: HashMap<RunKey, Vec<TraceEvent>> = HashMap::new();

    let apply = |buf: &mut Vec<TraceEvent>, stats: &mut ShardStats| {
        if buf.is_empty() {
            return;
        }
        stats.batches += 1;
        if let Err(e) = session.ingest_batch(buf) {
            if stats.errors.len() < 32 {
                stats.errors.push(e.to_string());
            }
        }
        buf.clear();
    };

    let buffer = |event: TraceEvent,
                  buffers: &mut HashMap<RunKey, Vec<TraceEvent>>,
                  stats: &mut ShardStats| {
        stats.events += 1;
        let run = event.run_key();
        let finished = matches!(event, TraceEvent::RunFinished { .. });
        let buf = buffers.entry(run).or_default();
        buf.push(event);
        if buf.len() >= batch_size || finished {
            apply(buf, stats);
        }
    };

    while let Ok(msg) = rx.recv() {
        match msg {
            ShardMsg::Event(event) => buffer(event, &mut buffers, &mut stats),
            ShardMsg::Batch(events) => {
                for event in events {
                    buffer(event, &mut buffers, &mut stats);
                }
            }
            ShardMsg::Barrier(ack) => {
                for buf in buffers.values_mut() {
                    apply(buf, &mut stats);
                }
                if ack.send(()).is_err() {
                    // The flusher stopped listening before our drain
                    // finished — the apply happened, the proof was lost.
                    // Count it; `close` surfaces the total.
                    stats.barrier_acks_lost += 1;
                }
            }
        }
    }
    // Channel closed: drain what's left.
    for buf in buffers.values_mut() {
        apply(buf, &mut stats);
    }
    stats
}
