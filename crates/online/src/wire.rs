//! Binary wire primitives shared by the write-ahead log and the store
//! snapshot.
//!
//! The offline `serde` shim is marker-only (see `shims/serde`), so the
//! durable formats are hand-framed: little-endian fixed-width integers,
//! `f64` as IEEE-754 bit patterns (bit-exact round-trip, NaN included),
//! and length-prefixed UTF-8 strings. When the real `serde` + `bincode`
//! come back (ROADMAP "Real dependency swap"), this module shrinks to a
//! codec adapter while the frame/checksum layout of [`crate::wal`] stays.

use perfdata::RegionKind;
use std::fmt;

/// A decoding failure. Every variant names what the reader expected, so a
/// corrupt frame produces an actionable skip report instead of a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended inside a value.
    UnexpectedEof {
        /// What was being read.
        what: &'static str,
    },
    /// A version byte this build does not understand.
    UnsupportedVersion(u8),
    /// An unknown enum discriminant.
    BadEnum {
        /// Which enumeration.
        what: &'static str,
        /// The offending code.
        code: u8,
    },
    /// A string payload was not valid UTF-8.
    BadUtf8,
    /// Decoding finished with bytes left over (framing drift).
    TrailingBytes {
        /// How many bytes remained.
        remaining: usize,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnexpectedEof { what } => write!(f, "unexpected end of input in {what}"),
            WireError::UnsupportedVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::BadEnum { what, code } => write!(f, "invalid {what} code {code}"),
            WireError::BadUtf8 => write!(f, "string payload is not valid UTF-8"),
            WireError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after value")
            }
        }
    }
}

impl std::error::Error for WireError {}

// ------------------------------------------------------------ writing ----

/// Append a `u8`.
pub fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

/// Append a little-endian `u32`.
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append a little-endian `u64`.
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append a little-endian `i64`.
pub fn put_i64(buf: &mut Vec<u8>, v: i64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append an `f64` as its IEEE-754 bit pattern (bit-exact round-trip).
pub fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// Append a length-prefixed UTF-8 string.
///
/// The prefix is a `u32`: a string of 4 GiB or more cannot be framed (the
/// truncated prefix would desynchronize every later field), so it is
/// rejected loudly here instead of producing a corrupt encoding.
pub fn put_str(buf: &mut Vec<u8>, s: &str) {
    assert!(
        u32::try_from(s.len()).is_ok(),
        "string of {} bytes exceeds the u32 length prefix",
        s.len()
    );
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

/// Stable one-byte code of a [`RegionKind`] (wire + snapshot format).
pub fn region_kind_code(kind: RegionKind) -> u8 {
    match kind {
        RegionKind::Subprogram => 0,
        RegionKind::Loop => 1,
        RegionKind::IfBlock => 2,
        RegionKind::CallSite => 3,
        RegionKind::BasicBlock => 4,
    }
}

/// Inverse of [`region_kind_code`].
pub fn region_kind_from_code(code: u8) -> Option<RegionKind> {
    Some(match code {
        0 => RegionKind::Subprogram,
        1 => RegionKind::Loop,
        2 => RegionKind::IfBlock,
        3 => RegionKind::CallSite,
        4 => RegionKind::BasicBlock,
        _ => return None,
    })
}

// ------------------------------------------------------------ reading ----

/// A bounds-checked cursor over an encoded payload.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Error unless the payload was fully consumed.
    pub fn finish(&self) -> Result<(), WireError> {
        match self.remaining() {
            0 => Ok(()),
            remaining => Err(WireError::TrailingBytes { remaining }),
        }
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::UnexpectedEof { what });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read a `u8`.
    pub fn get_u8(&mut self, what: &'static str) -> Result<u8, WireError> {
        Ok(self.take(1, what)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn get_u32(&mut self, what: &'static str) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    /// Read a little-endian `u64`.
    pub fn get_u64(&mut self, what: &'static str) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    /// Read a little-endian `i64`.
    pub fn get_i64(&mut self, what: &'static str) -> Result<i64, WireError> {
        Ok(i64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    /// Read an `f64` bit pattern.
    pub fn get_f64(&mut self, what: &'static str) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.get_u64(what)?))
    }

    /// Read `n` raw bytes (a nested length-prefixed payload, e.g. one
    /// wire-encoded event inside a network frame). Bounds-checked like
    /// every other read: a declared length exceeding the remaining buffer
    /// is a typed [`WireError::UnexpectedEof`], never an over-read.
    pub fn get_bytes(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], WireError> {
        self.take(n, what)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn get_str(&mut self, what: &'static str) -> Result<String, WireError> {
        let len = self.get_u32(what)? as usize;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadUtf8)
    }
}

// ----------------------------------------------------------- checksum ----

/// CRC-32 (IEEE 802.3, reflected) lookup table, built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 {
                0xedb8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `bytes` — the per-frame checksum of the WAL and the
/// whole-payload checksum of the snapshot.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xffff_ffffu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    c ^ 0xffff_ffff
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 7);
        put_u32(&mut buf, 0xdead_beef);
        put_u64(&mut buf, u64::MAX - 1);
        put_i64(&mut buf, -42);
        put_f64(&mut buf, f64::NAN);
        put_f64(&mut buf, -0.0);
        put_str(&mut buf, "solver:loop@12");
        put_str(&mut buf, "");
        let mut r = Reader::new(&buf);
        assert_eq!(r.get_u8("a").unwrap(), 7);
        assert_eq!(r.get_u32("b").unwrap(), 0xdead_beef);
        assert_eq!(r.get_u64("c").unwrap(), u64::MAX - 1);
        assert_eq!(r.get_i64("d").unwrap(), -42);
        assert!(r.get_f64("e").unwrap().is_nan());
        assert_eq!(r.get_f64("f").unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.get_str("g").unwrap(), "solver:loop@12");
        assert_eq!(r.get_str("h").unwrap(), "");
        r.finish().unwrap();
    }

    #[test]
    fn truncation_and_trailing_are_typed() {
        let mut buf = Vec::new();
        put_u64(&mut buf, 9);
        let mut r = Reader::new(&buf[..5]);
        assert!(matches!(
            r.get_u64("x"),
            Err(WireError::UnexpectedEof { what: "x" })
        ));
        let mut r = Reader::new(&buf);
        r.get_u32("half").unwrap();
        assert_eq!(r.finish(), Err(WireError::TrailingBytes { remaining: 4 }));
    }

    #[test]
    fn bad_utf8_is_typed() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 2);
        buf.extend_from_slice(&[0xff, 0xfe]);
        let mut r = Reader::new(&buf);
        assert_eq!(r.get_str("s"), Err(WireError::BadUtf8));
    }

    #[test]
    fn region_kind_codes_roundtrip() {
        for kind in [
            RegionKind::Subprogram,
            RegionKind::Loop,
            RegionKind::IfBlock,
            RegionKind::CallSite,
            RegionKind::BasicBlock,
        ] {
            assert_eq!(region_kind_from_code(region_kind_code(kind)), Some(kind));
        }
        assert_eq!(region_kind_from_code(5), None);
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }
}
