//! The typed flush-failure hierarchy of the online engine.
//!
//! Everything that can go wrong *after* events were accepted — evaluating
//! the pending delta, draining the pipeline, writing the checkpoint that
//! rides on a flush — surfaces as a [`FlushError`] variant instead of a
//! formatted string, so callers (and the `kojak::engine` facade's
//! `EngineError`) can react to the machine-readable cause. Ingestion-time
//! failures remain [`crate::event::IngestError`]; recovery-time failures
//! remain [`crate::durable::RecoveryError`].

use crate::event::RunKey;
use crate::snapshot::SnapshotOp;
use cosy::{AnalysisError, SpecError};
use std::fmt;
use std::io;
use std::path::PathBuf;

/// Why a flush (or the checkpoint riding on it) failed.
///
/// On an [`Analysis`](FlushError::Analysis) or
/// [`Spec`](FlushError::Spec) failure the invalidated delta is re-queued,
/// so the next flush retries exactly the same work — nothing is
/// invalidated-and-forgotten.
#[derive(Debug)]
pub enum FlushError {
    /// Property evaluation failed (division by zero, ambiguous `UNIQUE`,
    /// a SQL execution failure — see [`cosy::AnalysisError`]).
    Analysis(AnalysisError),
    /// Re-binding the suite to the live store failed (backend
    /// preparation, see [`cosy::SpecError`]).
    Spec(SpecError),
    /// The ingestion pipeline's channels are closed; no shard can accept
    /// the flush barrier.
    Closed,
    /// A pipeline shard worker died or panicked before acknowledging the
    /// flush barrier.
    WorkerLost,
    /// Writing the checkpoint snapshot failed. The flush itself succeeded
    /// and durability is not compromised: before the rename commit point
    /// the WAL still holds the full history; a failed *directory sync*
    /// (the one post-commit step, see [`SnapshotOp::DirSync`]) means the
    /// snapshot is live and the log has been moved onto its epoch — only
    /// the rename's machine-crash durability is in doubt.
    Snapshot {
        /// The snapshot file being written.
        path: PathBuf,
        /// The step of the atomic-write protocol that failed (temp
        /// create/write/sync, rename, or directory sync).
        op: SnapshotOp,
        /// The I/O failure.
        source: io::Error,
        /// The runs whose report the *successful* analysis flush changed
        /// (empty for an explicit `checkpoint()` call). The pending delta
        /// was consumed, so these keys are not observable from a retried
        /// flush — consumers driving work off the changed-run list must
        /// take them from here.
        updated: Vec<RunKey>,
    },
    /// Truncating the write-ahead log behind a freshly written snapshot
    /// failed. The snapshot is valid; recovery detects the stale log by
    /// its older epoch and skips it, so no event is double-applied.
    WalTruncate {
        /// The log file being truncated.
        path: PathBuf,
        /// The I/O failure.
        source: io::Error,
        /// The changed runs of the successful analysis flush (see
        /// [`FlushError::Snapshot::updated`]).
        updated: Vec<RunKey>,
    },
}

impl FlushError {
    /// Attach the changed-run set of a successful analysis flush to the
    /// checkpoint failure that rode on it.
    pub(crate) fn with_updated(mut self, runs: Vec<RunKey>) -> Self {
        if let FlushError::Snapshot { updated, .. } | FlushError::WalTruncate { updated, .. } =
            &mut self
        {
            *updated = runs;
        }
        self
    }
}

impl fmt::Display for FlushError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlushError::Analysis(e) => write!(f, "analysis flush failed: {e}"),
            FlushError::Spec(e) => write!(f, "suite re-binding failed: {e}"),
            FlushError::Closed => write!(f, "ingestion pipeline is closed"),
            FlushError::WorkerLost => write!(f, "pipeline shard worker died"),
            FlushError::Snapshot {
                path, op, source, ..
            } => {
                write!(f, "snapshot {op} {} failed: {source}", path.display())
            }
            FlushError::WalTruncate { path, source, .. } => {
                write!(f, "wal truncate {} failed: {source}", path.display())
            }
        }
    }
}

impl std::error::Error for FlushError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FlushError::Analysis(e) => Some(e),
            FlushError::Spec(e) => Some(e),
            FlushError::Closed | FlushError::WorkerLost => None,
            FlushError::Snapshot { source, .. } | FlushError::WalTruncate { source, .. } => {
                Some(source)
            }
        }
    }
}

impl From<AnalysisError> for FlushError {
    fn from(e: AnalysisError) -> Self {
        // A preparation failure inside an analysis pass is a Spec failure;
        // keep the two distinguishable at this level too.
        match e {
            AnalysisError::Spec(s) => FlushError::Spec(s),
            other => FlushError::Analysis(other),
        }
    }
}

impl From<SpecError> for FlushError {
    fn from(e: SpecError) -> Self {
        FlushError::Spec(e)
    }
}
