//! The write-ahead event log.
//!
//! Every event a [`crate::DurableSession`] accepts is appended here
//! *before* it touches the live store, as one self-checking frame:
//!
//! ```text
//! ┌────────────┬─────────────┬──────────────────────────────┐
//! │ len: u32 LE│ crc32: u32  │ payload (wire-encoded event, │
//! │ of payload │ of payload  │ leading WIRE_VERSION byte)   │
//! └────────────┴─────────────┴──────────────────────────────┘
//! ```
//!
//! The file opens with a 13-byte header — magic, format version, and the
//! **checkpoint epoch** — and a truncation (after a snapshot superseded
//! the log) writes a fresh header with the epoch advanced. The snapshot
//! records the epoch it truncated to, which lets recovery tell a log tail
//! that *follows* the snapshot (same epoch: replay it) from a stale log
//! the snapshot already covers (older epoch: a crash hit the window
//! between the snapshot rename and the truncation — skip it, or counters
//! would double-count the whole log).
//!
//! Appends go straight to the file descriptor (no userspace buffering), so
//! an abandoned session — our crash model — loses nothing that `append`
//! returned `Ok` for, up to the configured [`FsyncPolicy`]. The reader
//! walks frames until the first torn or corrupt one and reports it as a
//! typed [`WalCorruption`] instead of trusting anything beyond it: a frame
//! after a bad checksum has an untrustworthy length prefix, so the log is
//! only ever recovered as a consistent prefix. Frames from a *newer wire
//! format* (or a foreign/damaged header) are classified separately from
//! torn-tail corruption, so the recovery layer can refuse them instead of
//! destructively truncating data a newer binary could still read.

use crate::event::TraceEvent;
use crate::wire::{self, WireError};
use faults::{Faults, Op as FaultOp};
use std::fs::{File, OpenOptions};
use std::io::{self, Read};
use std::path::{Path, PathBuf};

/// Magic prefix of a WAL file.
pub const WAL_MAGIC: &[u8; 4] = b"KJWL";
/// WAL container-format version (frame payloads carry their own
/// [`crate::event::WIRE_VERSION`] byte).
pub const WAL_FORMAT_VERSION: u8 = 1;
/// Byte length of the file header (magic + format version + epoch).
pub const WAL_HEADER_LEN: u64 = 13;

/// Render a WAL file header for `epoch` (also used by benches/tests that
/// build log images in memory).
pub fn wal_header(epoch: u64) -> Vec<u8> {
    let mut buf = Vec::with_capacity(WAL_HEADER_LEN as usize);
    buf.extend_from_slice(WAL_MAGIC);
    wire::put_u8(&mut buf, WAL_FORMAT_VERSION);
    wire::put_u64(&mut buf, epoch);
    buf
}

/// When the log file is flushed to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Never fsync; durability up to the OS page cache only (a machine
    /// crash may lose the tail, a process crash loses nothing).
    Never,
    /// Fsync once every `n` appended events (and on explicit [`WalWriter::sync`]).
    EveryN(u32),
    /// Fsync after every append batch — full durability, highest latency.
    Always,
}

impl Default for FsyncPolicy {
    fn default() -> Self {
        // One sync per default pipeline batch: bounded loss window without
        // paying a disk round-trip per event.
        FsyncPolicy::EveryN(256)
    }
}

/// The log-file operation a [`WalIoError`] failed in. Every I/O result
/// on the write path is attributed to exactly one of these — none is
/// collapsed into a catch-all or silently dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalOp {
    /// Opening (or creating/truncating-to-resume) the log file.
    Open,
    /// Appending framed events.
    Append,
    /// Forcing appended frames to stable storage (`fsync`).
    Sync,
    /// Truncating — either dropping a torn tail before appending resumes,
    /// or restarting the log behind a checkpoint.
    Truncate,
    /// Reading the log back (recovery / reintegration).
    Read,
}

impl std::fmt::Display for WalOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            WalOp::Open => "open",
            WalOp::Append => "append",
            WalOp::Sync => "sync",
            WalOp::Truncate => "truncate",
            WalOp::Read => "read",
        };
        f.write_str(name)
    }
}

/// A typed WAL I/O failure: which file operation failed, and the
/// underlying OS error.
#[derive(Debug)]
pub struct WalIoError {
    /// The operation that failed.
    pub op: WalOp,
    /// The underlying I/O error.
    pub source: io::Error,
}

impl WalIoError {
    fn new(op: WalOp) -> impl FnOnce(io::Error) -> WalIoError {
        move |source| WalIoError { op, source }
    }
}

impl std::fmt::Display for WalIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wal {} failed: {}", self.op, self.source)
    }
}

impl std::error::Error for WalIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// Why reading the log stopped early.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalCorruptionKind {
    /// The file header is missing, foreign, or of an unknown container
    /// version — the whole log is untrusted. Recovery refuses to proceed
    /// (and, crucially, to truncate) on this kind.
    BadHeader,
    /// The file ended inside a frame header.
    TruncatedHeader,
    /// The file ended inside a frame payload (torn final write).
    TruncatedFrame {
        /// Bytes the header promised.
        expected: u32,
        /// Bytes actually present.
        present: u32,
    },
    /// The payload does not match its checksum (bit rot or a torn
    /// overwrite).
    ChecksumMismatch,
    /// A checksum-valid frame written by a **newer wire format**. Not
    /// damage: a newer binary can read it, so recovery must refuse rather
    /// than truncate it away (binary-downgrade protection).
    UnsupportedFrameVersion(u8),
    /// The payload checksummed correctly but did not decode.
    Malformed(WireError),
}

impl std::fmt::Display for WalCorruptionKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalCorruptionKind::BadHeader => write!(f, "missing or foreign file header"),
            WalCorruptionKind::TruncatedHeader => write!(f, "truncated frame header"),
            WalCorruptionKind::TruncatedFrame { expected, present } => {
                write!(f, "truncated frame payload ({present}/{expected} bytes)")
            }
            WalCorruptionKind::ChecksumMismatch => write!(f, "frame checksum mismatch"),
            WalCorruptionKind::UnsupportedFrameVersion(v) => {
                write!(f, "frame written by newer wire format v{v}")
            }
            WalCorruptionKind::Malformed(e) => write!(f, "frame payload malformed: {e}"),
        }
    }
}

impl WalCorruptionKind {
    /// True for the kinds that mean "this build cannot read data a newer
    /// (or different) build wrote" rather than "the tail was torn" —
    /// recovery must hard-stop instead of recovering a prefix.
    pub fn is_incompatibility(&self) -> bool {
        matches!(
            self,
            WalCorruptionKind::BadHeader | WalCorruptionKind::UnsupportedFrameVersion(_)
        )
    }
}

/// A typed skip report: where the readable prefix of the log ends and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalCorruption {
    /// Index of the first unreadable frame.
    pub frame: usize,
    /// Byte offset of that frame's header.
    pub offset: u64,
    /// What was wrong with it.
    pub kind: WalCorruptionKind,
}

impl std::fmt::Display for WalCorruption {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "wal frame {} at byte {}: {}",
            self.frame, self.offset, self.kind
        )
    }
}

/// Result of reading a log: the checkpoint epoch, the consistent event
/// prefix, the byte length of that prefix, and the corruption (if any)
/// that ended it.
#[derive(Debug, Default)]
pub struct WalContents {
    /// Checkpoint epoch from the file header (0 for a missing/empty log).
    pub epoch: u64,
    /// Events of the consistent prefix, in append order.
    pub events: Vec<TraceEvent>,
    /// Byte length of the consistent prefix (header included) — the
    /// truncation point for a writer that wants to resume appending after
    /// recovery.
    pub valid_len: u64,
    /// Why reading stopped early, if it did.
    pub corruption: Option<WalCorruption>,
}

/// Parse a log image (header + frames) into the longest consistent frame
/// prefix. An empty image is a fresh epoch-0 log.
pub fn parse_frames(bytes: &[u8]) -> WalContents {
    let mut out = WalContents::default();
    if bytes.is_empty() {
        return out;
    }
    if bytes.len() < WAL_HEADER_LEN as usize
        || &bytes[..4] != WAL_MAGIC
        || bytes[4] != WAL_FORMAT_VERSION
    {
        out.corruption = Some(WalCorruption {
            frame: 0,
            offset: 0,
            kind: WalCorruptionKind::BadHeader,
        });
        return out;
    }
    out.epoch = u64::from_le_bytes(bytes[5..13].try_into().unwrap());
    out.valid_len = WAL_HEADER_LEN;
    let mut pos = WAL_HEADER_LEN as usize;
    let mut frame = 0usize;
    loop {
        let stop = |kind: WalCorruptionKind| {
            Some(WalCorruption {
                frame,
                offset: pos as u64,
                kind,
            })
        };
        if pos == bytes.len() {
            break;
        }
        if bytes.len() - pos < 8 {
            out.corruption = stop(WalCorruptionKind::TruncatedHeader);
            break;
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap());
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
        let body_start = pos + 8;
        if bytes.len() - body_start < len as usize {
            out.corruption = stop(WalCorruptionKind::TruncatedFrame {
                expected: len,
                present: (bytes.len() - body_start) as u32,
            });
            break;
        }
        let payload = &bytes[body_start..body_start + len as usize];
        if wire::crc32(payload) != crc {
            out.corruption = stop(WalCorruptionKind::ChecksumMismatch);
            break;
        }
        match TraceEvent::decode_wire(payload) {
            Ok(event) => out.events.push(event),
            Err(WireError::UnsupportedVersion(v)) => {
                out.corruption = stop(WalCorruptionKind::UnsupportedFrameVersion(v));
                break;
            }
            Err(e) => {
                out.corruption = stop(WalCorruptionKind::Malformed(e));
                break;
            }
        }
        pos = body_start + len as usize;
        out.valid_len = pos as u64;
        frame += 1;
    }
    out
}

/// Read a whole log file. A missing file is an empty log (fresh session),
/// not an error; any other I/O failure is.
pub fn read_wal(path: &Path) -> io::Result<WalContents> {
    read_wal_with(path, &Faults::none())
}

/// [`read_wal`] through a fault seam (recovery under chaos tests).
pub fn read_wal_with(path: &Path, faults: &Faults) -> io::Result<WalContents> {
    faults.check(FaultOp::WalRead)?;
    let mut file = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(WalContents::default()),
        Err(e) => return Err(e),
    };
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)?;
    Ok(parse_frames(&bytes))
}

/// Append one framed event to `buf` (shared by the WAL writer and tests).
///
/// The payload is wire-encoded **in place**: the frame header (length,
/// crc) is reserved up front and back-patched once the payload's extent
/// is known, so framing a whole batch into one scratch buffer performs
/// zero per-event allocations — the group-commit append's cost is one
/// buffer fill, one `write`, at most one fsync.
pub fn frame_event(buf: &mut Vec<u8>, event: &TraceEvent) {
    let header = buf.len();
    wire::put_u32(buf, 0); // length, back-patched below
    wire::put_u32(buf, 0); // crc32, back-patched below
    let body = buf.len();
    event.encode_wire(buf);
    let len = (buf.len() - body) as u32;
    let crc = wire::crc32(&buf[body..]);
    buf[header..header + 4].copy_from_slice(&len.to_le_bytes());
    buf[header + 4..header + 8].copy_from_slice(&crc.to_le_bytes());
}

/// Metric handles a [`WalWriter`] records into when its owner wires them
/// up (see [`WalWriter::set_metrics`]); all-`None` by default, so the
/// writer stays usable without any observability plumbing.
#[derive(Debug, Default)]
pub struct WalMetrics {
    /// Wall time of each `write` call appending a frame batch.
    pub append_ns: Option<std::sync::Arc<obs::Histogram>>,
    /// Wall time of each fsync (policy-driven or explicit).
    pub fsync_ns: Option<std::sync::Arc<obs::Histogram>>,
    /// Frames appended (one per logged event).
    pub frames: Option<std::sync::Arc<obs::Counter>>,
    /// Fsyncs performed.
    pub fsyncs: Option<std::sync::Arc<obs::Counter>>,
}

/// The repair an earlier failed mutation left behind; completed (or
/// re-failed, typed) before the next mutation touches the file.
#[derive(Debug, Clone, Copy)]
enum PendingRepair {
    /// A torn append: truncate the file back to this offset.
    Truncate(u64),
    /// A failed restart: redo the whole reset onto this epoch.
    Reset(u64),
}

/// An append-only frame writer over one log file.
///
/// Failed mutations never leave the writer silently inconsistent with
/// the file: a torn append is truncated away (immediately, or — if even
/// that fails — before the next mutation), so on `Ok` the log is always
/// exactly the frames of every `Ok`-returned append. That invariant is
/// what lets recovery replay the log as ground truth.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    path: PathBuf,
    policy: FsyncPolicy,
    epoch: u64,
    len: u64,
    appended_since_sync: u64,
    scratch: Vec<u8>,
    metrics: WalMetrics,
    faults: Faults,
    repair: Option<PendingRepair>,
}

impl WalWriter {
    /// Open (creating if missing) the log at `path` and resume appending
    /// at `valid_len` — bytes beyond it (a torn tail found by recovery)
    /// are truncated away so new frames start on a frame boundary. When
    /// `valid_len` leaves no header (fresh file, or a stale log a
    /// snapshot already covers), the file restarts with a header carrying
    /// `epoch`.
    pub fn open(
        path: &Path,
        valid_len: u64,
        epoch: u64,
        policy: FsyncPolicy,
    ) -> Result<WalWriter, WalIoError> {
        WalWriter::open_with(path, valid_len, epoch, policy, &Faults::none())
    }

    /// [`WalWriter::open`] through a fault seam: every subsequent file
    /// operation of this writer is gated on `faults`.
    pub fn open_with(
        path: &Path,
        valid_len: u64,
        epoch: u64,
        policy: FsyncPolicy,
        faults: &Faults,
    ) -> Result<WalWriter, WalIoError> {
        let wrap = WalIoError::new(WalOp::Open);
        faults.check(FaultOp::WalOpen).map_err(wrap)?;
        let file = OpenOptions::new()
            .create(true)
            .read(true)
            .write(true)
            .truncate(false)
            .open(path)
            .map_err(WalIoError::new(WalOp::Open))?;
        let mut w = WalWriter {
            file,
            path: path.to_path_buf(),
            policy,
            epoch,
            len: valid_len,
            appended_since_sync: 0,
            scratch: Vec::new(),
            metrics: WalMetrics::default(),
            faults: faults.clone(),
            repair: None,
        };
        use std::io::Seek;
        let wrap = WalIoError::new(WalOp::Open);
        if valid_len < WAL_HEADER_LEN {
            w.file.set_len(0).map_err(WalIoError::new(WalOp::Open))?;
            w.file.seek(io::SeekFrom::Start(0)).map_err(wrap)?;
            w.faults
                .write_all(FaultOp::WalOpen, &mut w.file, &wal_header(epoch))
                .map_err(WalIoError::new(WalOp::Open))?;
            w.len = WAL_HEADER_LEN;
        } else {
            w.file
                .set_len(valid_len)
                .map_err(WalIoError::new(WalOp::Open))?;
            w.file.seek(io::SeekFrom::Start(valid_len)).map_err(wrap)?;
        }
        Ok(w)
    }

    /// Complete whatever repair an earlier failed mutation deferred.
    fn complete_repair(&mut self) -> Result<(), WalIoError> {
        match self.repair {
            None => Ok(()),
            Some(PendingRepair::Truncate(off)) => {
                self.truncate_to(off)
                    .map_err(WalIoError::new(WalOp::Truncate))?;
                self.repair = None;
                Ok(())
            }
            Some(PendingRepair::Reset(epoch)) => self.reset(epoch),
        }
    }

    /// Truncate the file to `off` and reposition the cursor there.
    fn truncate_to(&mut self, off: u64) -> io::Result<()> {
        use std::io::Seek;
        self.file.set_len(off)?;
        self.file.seek(io::SeekFrom::Start(off))?;
        self.len = off;
        Ok(())
    }

    /// An append tore the file (an error after a possibly-partial
    /// write): truncate the torn bytes away now, or — if the repair
    /// itself fails — remember to before the next mutation.
    fn mark_torn(&mut self, valid: u64) {
        if self.truncate_to(valid).is_err() {
            self.repair = Some(PendingRepair::Truncate(valid));
        }
        self.len = valid;
    }

    /// Record append/fsync timings and frame counts into the given metric
    /// handles from now on (typically a durable session's registry).
    pub fn set_metrics(&mut self, metrics: WalMetrics) {
        self.metrics = metrics;
    }

    /// The log file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The checkpoint epoch the log is currently on.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Current log length in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when the log holds no frames.
    pub fn is_empty(&self) -> bool {
        self.len <= WAL_HEADER_LEN
    }

    /// Append a batch of events as consecutive frames with one `write`
    /// call, then apply the fsync policy. On `Ok`, every event is at least
    /// in the OS page cache (crash-of-this-process durable). On `Err`,
    /// *no* frame of the batch remains in the log (a torn prefix is
    /// truncated away), so the caller can safely not apply the events and
    /// later retry the whole batch without double-logging.
    pub fn append_batch(&mut self, events: &[TraceEvent]) -> Result<(), WalIoError> {
        if events.is_empty() {
            return Ok(());
        }
        self.complete_repair()?;
        self.scratch.clear();
        for event in events {
            frame_event(&mut self.scratch, event);
        }
        let before = self.len;
        let written = {
            let _stage = obs::StageTimer::maybe(self.metrics.append_ns.as_deref());
            self.faults
                .write_all(FaultOp::WalAppend, &mut self.file, &self.scratch)
        };
        if let Err(source) = written {
            self.mark_torn(before);
            return Err(WalIoError {
                op: WalOp::Append,
                source,
            });
        }
        self.len += self.scratch.len() as u64;
        self.appended_since_sync += events.len() as u64;
        let due = match self.policy {
            FsyncPolicy::Never => false,
            FsyncPolicy::Always => true,
            FsyncPolicy::EveryN(n) => self.appended_since_sync >= n.max(1) as u64,
        };
        if due {
            if let Err(e) = self.sync() {
                // The frames are intact on disk but the caller treats an
                // erroring append as not-applied; truncate them away so
                // the log stays exactly the applied history.
                self.mark_torn(before);
                return Err(e);
            }
        }
        // Counted only now: a frame that was appended but torn away by a
        // failed policy-fsync never happened as far as the ledger
        // (`kojak_wal_appended_frames_total == events applied`) goes.
        if let Some(frames) = &self.metrics.frames {
            frames.add(events.len() as u64);
        }
        Ok(())
    }

    /// Force the log to stable storage.
    pub fn sync(&mut self) -> Result<(), WalIoError> {
        let wrap = WalIoError::new(WalOp::Sync);
        {
            let _stage = obs::StageTimer::maybe(self.metrics.fsync_ns.as_deref());
            self.faults.check(FaultOp::WalSync).map_err(wrap)?;
            self.file
                .sync_data()
                .map_err(WalIoError::new(WalOp::Sync))?;
        }
        if let Some(fsyncs) = &self.metrics.fsyncs {
            fsyncs.inc();
        }
        self.appended_since_sync = 0;
        Ok(())
    }

    /// Drop every frame and advance to `epoch`: the snapshot that was
    /// just written (recording the same epoch) now covers them. Syncs, so
    /// the truncation cannot be reordered after a crash into "snapshot
    /// missing *and* log empty".
    ///
    /// A failed reset leaves the file in a state recovery already
    /// handles (either the old epoch-covered content or an empty
    /// epoch-0 stub — both read as stale next to the newer snapshot)
    /// and is re-driven to completion before the next append, so events
    /// accepted after the failure can never land in a log a snapshot
    /// already covers.
    pub fn reset(&mut self, epoch: u64) -> Result<(), WalIoError> {
        use std::io::Seek;
        let result = (|| {
            self.faults.check(FaultOp::WalTruncate)?;
            self.file.set_len(0)?;
            self.file.seek(io::SeekFrom::Start(0))?;
            self.faults
                .write_all(FaultOp::WalTruncate, &mut self.file, &wal_header(epoch))?;
            self.file.sync_data()?;
            Ok(())
        })();
        if let Err(source) = result {
            self.repair = Some(PendingRepair::Reset(epoch));
            return Err(WalIoError {
                op: WalOp::Truncate,
                source,
            });
        }
        self.repair = None;
        self.epoch = epoch;
        self.len = WAL_HEADER_LEN;
        self.appended_since_sync = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{RunKey, TraceEvent};

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("kojak-wal-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("wal.log")
    }

    fn finished(n: u64) -> Vec<TraceEvent> {
        (0..n)
            .map(|i| TraceEvent::RunFinished { run: RunKey(i) })
            .collect()
    }

    #[test]
    fn append_read_roundtrip_and_resume() {
        let path = tmp("roundtrip");
        let events = finished(5);
        {
            let mut w = WalWriter::open(&path, 0, 7, FsyncPolicy::Always).unwrap();
            w.append_batch(&events[..3]).unwrap();
            w.append_batch(&events[3..]).unwrap();
        }
        let contents = read_wal(&path).unwrap();
        assert_eq!(contents.events, events);
        assert_eq!(contents.epoch, 7);
        assert!(contents.corruption.is_none());
        // Resume appending at the valid length (header + epoch preserved).
        {
            let mut w = WalWriter::open(
                &path,
                contents.valid_len,
                contents.epoch,
                FsyncPolicy::Never,
            )
            .unwrap();
            w.append_batch(&finished(1)).unwrap();
        }
        let resumed = read_wal(&path).unwrap();
        assert_eq!(resumed.events.len(), 6);
        assert_eq!(resumed.epoch, 7);
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn missing_file_is_an_empty_log() {
        let path = tmp("missing");
        let contents = read_wal(&path.with_file_name("nope.log")).unwrap();
        assert!(contents.events.is_empty());
        assert!(contents.corruption.is_none());
        assert_eq!(contents.valid_len, 0);
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn torn_tail_is_reported_and_prefix_kept() {
        let mut bytes = wal_header(0);
        for e in finished(3) {
            frame_event(&mut bytes, &e);
        }
        let header = WAL_HEADER_LEN as usize;
        let frame_len = (bytes.len() - header) / 3;
        bytes.truncate(bytes.len() - 3);
        let contents = parse_frames(&bytes);
        assert_eq!(contents.events.len(), 2);
        let c = contents.corruption.expect("tail reported");
        assert!(matches!(c.kind, WalCorruptionKind::TruncatedFrame { .. }));
        assert_eq!(c.frame, 2);
        assert_eq!(contents.valid_len as usize, header + frame_len * 2);
    }

    #[test]
    fn flipped_byte_stops_at_checksum() {
        let mut bytes = wal_header(0);
        for e in finished(3) {
            frame_event(&mut bytes, &e);
        }
        // Flip one payload byte of the middle frame.
        let header = WAL_HEADER_LEN as usize;
        let frame_len = (bytes.len() - header) / 3;
        bytes[header + frame_len + 10] ^= 0xff;
        let contents = parse_frames(&bytes);
        assert_eq!(contents.events.len(), 1);
        let c = contents.corruption.expect("corruption reported");
        assert_eq!(c.kind, WalCorruptionKind::ChecksumMismatch);
        assert_eq!(c.frame, 1);
        assert_eq!(contents.valid_len as usize, header + frame_len);
    }

    #[test]
    fn bad_header_and_newer_frames_are_incompatibilities_not_torn_tails() {
        // Foreign header: whole log untrusted.
        let contents = parse_frames(b"NOPE_not_a_wal_file");
        let c = contents.corruption.expect("bad header reported");
        assert_eq!(c.kind, WalCorruptionKind::BadHeader);
        assert!(c.kind.is_incompatibility());
        assert_eq!(contents.valid_len, 0);

        // A checksum-valid frame from a future wire version.
        let mut bytes = wal_header(0);
        frame_event(&mut bytes, &TraceEvent::RunFinished { run: RunKey(1) });
        let mut payload = Vec::new();
        TraceEvent::RunFinished { run: RunKey(2) }.encode_wire(&mut payload);
        payload[0] = 9; // future WIRE_VERSION, re-checksummed below
        wire::put_u32(&mut bytes, payload.len() as u32);
        wire::put_u32(&mut bytes, wire::crc32(&payload));
        bytes.extend_from_slice(&payload);
        let contents = parse_frames(&bytes);
        assert_eq!(contents.events.len(), 1);
        let c = contents.corruption.expect("newer frame reported");
        assert_eq!(c.kind, WalCorruptionKind::UnsupportedFrameVersion(9));
        assert!(c.kind.is_incompatibility());
        // Torn tails, by contrast, are recoverable.
        assert!(!WalCorruptionKind::TruncatedHeader.is_incompatibility());
        assert!(!WalCorruptionKind::ChecksumMismatch.is_incompatibility());
    }

    #[test]
    fn reset_empties_the_log_and_advances_the_epoch() {
        let path = tmp("reset");
        let mut w = WalWriter::open(&path, 0, 0, FsyncPolicy::Never).unwrap();
        w.append_batch(&finished(4)).unwrap();
        assert!(!w.is_empty());
        w.reset(1).unwrap();
        assert!(w.is_empty());
        assert_eq!(w.epoch(), 1);
        let contents = read_wal(&path).unwrap();
        assert!(contents.events.is_empty());
        assert_eq!(contents.epoch, 1);
        // Appending after a reset works.
        w.append_batch(&finished(2)).unwrap();
        assert_eq!(read_wal(&path).unwrap().events.len(), 2);
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }
}
