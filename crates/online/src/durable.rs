//! Durable online sessions: write-ahead logging, snapshotting, recovery.
//!
//! ```text
//!            ingest                       flush (+every N: checkpoint)
//!  producer ───────▶ wal.log ──▶ store ──▶ live reports
//!                      │           │
//!                      │      snapshot.bin (atomic tmp+rename;
//!                      │◀──── truncates the log behind it)
//!                      ▼
//!    recover = load snapshot ▸ replay log tail ▸ one full flush
//! ```
//!
//! [`DurableSession`] wraps an [`OnlineSession`] with a [`WalWriter`]:
//! every event batch is framed to disk *before* it is applied
//! (write-ahead), and a checkpoint — taken automatically every
//! `snapshot_every_flushes` flushes or explicitly via
//! [`DurableSession::checkpoint`] — serializes the builder state and
//! finished-run set, then truncates the log. [`OnlineSession::recover`]
//! inverts the process: load the latest valid snapshot, replay the log
//! tail through the ordinary `StoreBuilder::apply` path, and run one full
//! flush, after which the live reports are **bit-identical** to what an
//! uninterrupted session over the same events would show (the
//! crash-recovery proptest in `tests/crash_recovery.rs` enforces this).
//!
//! A torn or corrupt log tail is recovered up to the last consistent
//! frame and reported as a typed [`WalCorruption`]; a corrupt snapshot is
//! a hard [`RecoveryError`] (its history is not reconstructible from a
//! truncated log). Neither ever panics.

use crate::error::FlushError;
use crate::event::{IngestError, RunKey, TraceEvent};
use crate::session::{OnlineSession, SessionConfig, SessionStats};
use crate::snapshot::{
    encode_snapshot, read_snapshot_with, write_snapshot_bytes_with, SnapshotError, SnapshotOp,
};
use crate::wal::{read_wal_with, FsyncPolicy, WalCorruption, WalIoError, WalMetrics, WalWriter};
use cosy::AnalysisReport;
use faults::Faults;
use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard};

/// File name of the write-ahead log inside a session directory.
pub const WAL_FILE: &str = "wal.log";
/// File name of the snapshot inside a session directory.
pub const SNAPSHOT_FILE: &str = "snapshot.bin";

/// Configuration of a durable session.
#[derive(Debug, Clone)]
pub struct DurableConfig {
    /// The wrapped analysis session's configuration.
    pub session: SessionConfig,
    /// When WAL appends reach stable storage.
    pub fsync: FsyncPolicy,
    /// Write a snapshot (and truncate the log) every this many successful
    /// [`DurableSession::flush`]es; `0` disables automatic checkpoints
    /// (use [`DurableSession::checkpoint`]).
    pub snapshot_every_flushes: u32,
    /// Fault seam every file operation of this session (WAL and
    /// snapshot, recovery included) is gated through. The default is
    /// inert; chaos tests pass a seeded [`faults::FaultPlan`] handle.
    pub faults: Faults,
}

impl Default for DurableConfig {
    fn default() -> Self {
        DurableConfig {
            session: SessionConfig::default(),
            fsync: FsyncPolicy::default(),
            snapshot_every_flushes: 32,
            faults: Faults::none(),
        }
    }
}

/// Why a session directory could not be recovered.
#[derive(Debug)]
pub enum RecoveryError {
    /// Filesystem failure.
    Io(io::Error),
    /// The snapshot file exists but cannot be trusted. Unlike a torn WAL
    /// tail this is fatal: the log was truncated when the snapshot was
    /// written, so the snapshot's history exists nowhere else.
    CorruptSnapshot {
        /// The snapshot file.
        path: PathBuf,
        /// What was wrong with it.
        detail: String,
    },
    /// The durable state was written by an incompatible (newer or
    /// foreign) build, or its snapshot/log epochs disagree in a way that
    /// means history is missing — e.g. checksum-valid WAL frames from a
    /// newer wire format after a binary downgrade, or a log whose epoch
    /// says a snapshot once existed but the snapshot file is gone.
    /// Recovery refuses rather than silently truncating data another
    /// build could still read.
    Incompatible {
        /// The offending file.
        path: PathBuf,
        /// What is incompatible.
        detail: String,
    },
    /// The recovery flush failed (property evaluation error).
    Analysis(FlushError),
}

impl std::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryError::Io(e) => write!(f, "recovery I/O: {e}"),
            RecoveryError::CorruptSnapshot { path, detail } => {
                write!(f, "corrupt snapshot {}: {detail}", path.display())
            }
            RecoveryError::Incompatible { path, detail } => {
                write!(f, "incompatible durable state {}: {detail}", path.display())
            }
            RecoveryError::Analysis(e) => write!(f, "recovery flush failed: {e}"),
        }
    }
}

impl std::error::Error for RecoveryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RecoveryError::Io(e) => Some(e),
            RecoveryError::Analysis(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for RecoveryError {
    fn from(e: io::Error) -> Self {
        RecoveryError::Io(e)
    }
}

impl From<WalIoError> for RecoveryError {
    fn from(e: WalIoError) -> Self {
        // Preserve the OS classification on the outside and the typed
        // WalIoError (op + source chain) as the payload.
        RecoveryError::Io(io::Error::new(e.source.kind(), e))
    }
}

/// What recovery found and did.
#[derive(Debug, Clone, Default)]
pub struct RecoveryStats {
    /// Was a snapshot loaded?
    pub used_snapshot: bool,
    /// Lifetime applied-event count restored from the snapshot (0 without
    /// one).
    pub snapshot_events: u64,
    /// WAL-tail events replayed through the ingestion path.
    pub wal_events_replayed: u64,
    /// WAL-tail events the replay rejected (deterministically the same
    /// rejections the original session counted).
    pub wal_events_rejected: u64,
    /// Byte length of the consistent WAL prefix (where appending resumes;
    /// 0 when the log must be restarted on the snapshot's epoch).
    pub wal_valid_len: u64,
    /// The checkpoint epoch appends continue under.
    pub epoch: u64,
    /// True when the log predates the snapshot (the crash hit the window
    /// between the snapshot rename and the log truncation): its events
    /// are already covered by the snapshot and were skipped, and the log
    /// is restarted on the snapshot's epoch.
    pub wal_stale: bool,
    /// The skip report for a torn/corrupt WAL tail, if one was found.
    pub wal_corruption: Option<WalCorruption>,
    /// Runs with a live report after the recovery flush.
    pub runs_recovered: usize,
}

impl OnlineSession {
    /// Recover a session from the durable state in `dir` (missing files
    /// mean a fresh, empty session): load the snapshot, replay the WAL
    /// tail, flush once. The returned session's live reports are
    /// bit-identical to an uninterrupted session over the same recovered
    /// event history.
    pub fn recover(
        dir: &Path,
        config: SessionConfig,
    ) -> Result<(OnlineSession, RecoveryStats), RecoveryError> {
        OnlineSession::recover_with(dir, config, &Faults::none())
    }

    /// [`OnlineSession::recover`] through a fault seam: the snapshot and
    /// WAL reads are gated on `faults` (chaos tests inject read errors
    /// into recovery itself).
    pub fn recover_with(
        dir: &Path,
        config: SessionConfig,
        faults: &Faults,
    ) -> Result<(OnlineSession, RecoveryStats), RecoveryError> {
        let snapshot_path = dir.join(SNAPSHOT_FILE);
        let wal_path = dir.join(WAL_FILE);
        let mut stats = RecoveryStats::default();
        let snapshot = match read_snapshot_with(&snapshot_path, faults) {
            Ok(data) => data,
            Err(SnapshotError::Io(e)) => return Err(RecoveryError::Io(e)),
            Err(SnapshotError::Corrupt(detail)) => {
                return Err(RecoveryError::CorruptSnapshot {
                    path: snapshot_path,
                    detail,
                })
            }
        };
        let wal = read_wal_with(&wal_path, faults)?;
        // An unreadable-by-design log (foreign header, frames from a newer
        // wire format) must not be "recovered" by truncating it away.
        if let Some(c) = &wal.corruption {
            if c.kind.is_incompatibility() {
                return Err(RecoveryError::Incompatible {
                    path: wal_path,
                    detail: c.to_string(),
                });
            }
        }

        // Reconcile the checkpoint epochs. The log's epoch can lag the
        // snapshot's by exactly one crash window (snapshot renamed, log
        // not yet truncated): those frames are already covered by the
        // snapshot and replaying them would double-count history.
        let snapshot_epoch = snapshot.as_ref().map(|s| s.wal_epoch).unwrap_or(0);
        match &snapshot {
            Some(_) if wal.epoch > snapshot_epoch => {
                return Err(RecoveryError::Incompatible {
                    path: snapshot_path,
                    detail: format!(
                        "snapshot epoch {snapshot_epoch} older than log epoch {} — \
                         the snapshot covering the truncated history is missing",
                        wal.epoch
                    ),
                })
            }
            None if wal.epoch > 0 => {
                return Err(RecoveryError::Incompatible {
                    path: snapshot_path,
                    detail: format!(
                        "log epoch {} says a snapshot truncated it, but no snapshot exists",
                        wal.epoch
                    ),
                })
            }
            _ => {}
        }
        stats.wal_stale = snapshot.is_some() && wal.epoch < snapshot_epoch;
        stats.epoch = snapshot_epoch.max(wal.epoch);
        stats.wal_valid_len = if stats.wal_stale { 0 } else { wal.valid_len };
        stats.wal_corruption = wal.corruption;

        let session = match snapshot {
            Some(data) => {
                stats.used_snapshot = true;
                stats.snapshot_events = data.events_applied;
                OnlineSession::from_recovered(
                    config,
                    data.builder,
                    data.finished,
                    data.events_rejected,
                )
            }
            None => OnlineSession::new(config),
        };

        if !stats.wal_stale && !wal.events.is_empty() {
            stats.wal_events_replayed = wal.events.len() as u64;
            let before = session.stats().events_rejected;
            // Rejected events are counted and skipped exactly as they were
            // live; the first error is not fatal to the rest of the tail.
            let _ = session.ingest_batch(&wal.events);
            stats.wal_events_rejected = session.stats().events_rejected - before;
        }
        session.note_replayed(stats.snapshot_events + stats.wal_events_replayed);
        session.flush().map_err(RecoveryError::Analysis)?;
        stats.runs_recovered = session.reports().len();
        Ok((session, stats))
    }
}

struct DurableInner {
    wal: WalWriter,
    flushes_since_snapshot: u32,
    /// Current checkpoint epoch (== the WAL header's epoch; the next
    /// snapshot records `epoch + 1` and the log restarts under it).
    epoch: u64,
}

/// An [`OnlineSession`] whose state survives a process kill.
///
/// All mutation must go through this wrapper (the write-ahead invariant
/// is: no event reaches the store unless its frame is on disk first);
/// [`DurableSession::session`] hands out the inner session for reads.
pub struct DurableSession {
    session: Arc<OnlineSession>,
    inner: Mutex<DurableInner>,
    dir: PathBuf,
    snapshot_every_flushes: u32,
    recovery: RecoveryStats,
    faults: Faults,
    snapshot_write_ns: Arc<obs::Histogram>,
    snapshot_writes: Arc<obs::Counter>,
}

impl DurableSession {
    /// Open (or create) the durable session stored in `dir`, recovering
    /// any existing state. A torn WAL tail found by recovery is truncated
    /// so appending resumes on a frame boundary.
    pub fn open(dir: impl Into<PathBuf>, config: DurableConfig) -> Result<Self, RecoveryError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let (session, recovery) =
            OnlineSession::recover_with(&dir, config.session, &config.faults)?;
        // A stale log (crash between snapshot rename and truncation) has
        // wal_valid_len == 0: opening at that length completes the
        // interrupted checkpoint by restarting the log on the snapshot's
        // epoch.
        let mut wal = WalWriter::open_with(
            &dir.join(WAL_FILE),
            recovery.wal_valid_len,
            recovery.epoch,
            config.fsync,
            &config.faults,
        )?;
        // The WAL records into the wrapped session's registry, so one
        // snapshot covers the whole durable stack.
        let registry = session.metrics_registry();
        wal.set_metrics(WalMetrics {
            append_ns: Some(registry.histogram("kojak_wal_append_ns")),
            fsync_ns: Some(registry.histogram("kojak_wal_fsync_ns")),
            frames: Some(registry.counter("kojak_wal_appended_frames_total")),
            fsyncs: Some(registry.counter("kojak_wal_fsyncs_total")),
        });
        let snapshot_write_ns = registry.histogram("kojak_snapshot_write_ns");
        let snapshot_writes = registry.counter("kojak_snapshot_writes_total");
        Ok(DurableSession {
            session: Arc::new(session),
            inner: Mutex::new(DurableInner {
                wal,
                flushes_since_snapshot: 0,
                epoch: recovery.epoch,
            }),
            dir,
            snapshot_every_flushes: config.snapshot_every_flushes,
            recovery,
            faults: config.faults,
            snapshot_write_ns,
            snapshot_writes,
        })
    }

    fn lock(&self) -> MutexGuard<'_, DurableInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The session directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// What recovery found when this session was opened.
    pub fn recovery(&self) -> &RecoveryStats {
        &self.recovery
    }

    /// The wrapped live session (shared for concurrent readers).
    pub fn session(&self) -> &Arc<OnlineSession> {
        &self.session
    }

    /// Current WAL length in bytes (events logged since the last
    /// checkpoint).
    pub fn wal_len(&self) -> u64 {
        self.lock().wal.len()
    }

    /// Ingest one event durably.
    pub fn ingest(&self, event: &TraceEvent) -> Result<(), IngestError> {
        self.ingest_batch(std::slice::from_ref(event)).map(|_| ())
    }

    /// Ingest a batch durably: the frames hit the log (and, per policy,
    /// the disk) before any event is applied. Rejected events stay in the
    /// log — replay re-rejects them deterministically, keeping recovered
    /// counters truthful.
    pub fn ingest_batch(&self, events: &[TraceEvent]) -> Result<usize, IngestError> {
        let mut inner = self.lock();
        inner.wal.append_batch(events).map_err(IngestError::from)?;
        self.session.ingest_batch(events)
    }

    /// Analyze everything pending (see [`OnlineSession::flush`]); every
    /// `snapshot_every_flushes` successful flushes, also checkpoint.
    ///
    /// If the analysis flush succeeds but the checkpoint riding on it
    /// fails, the returned [`FlushError::Snapshot`]/
    /// [`FlushError::WalTruncate`] carries the flush's changed-run set in
    /// its `updated` field — the pending delta was consumed, so those
    /// keys are not observable from a retried flush. The checkpoint
    /// itself retries on the next flush (the cadence counter is not
    /// reset), and the WAL still holds the full history.
    pub fn flush(&self) -> Result<Vec<RunKey>, FlushError> {
        let mut inner = self.lock();
        let updated = self.session.flush()?;
        inner.flushes_since_snapshot += 1;
        if self.snapshot_every_flushes > 0
            && inner.flushes_since_snapshot >= self.snapshot_every_flushes
        {
            if let Err(e) = self.checkpoint_locked(&mut inner) {
                return Err(e.with_updated(updated));
            }
        }
        Ok(updated)
    }

    /// Flush, then write a snapshot and truncate the log behind it.
    pub fn checkpoint(&self) -> Result<(), FlushError> {
        let mut inner = self.lock();
        self.session.flush()?;
        self.checkpoint_locked(&mut inner)
    }

    fn checkpoint_locked(&self, inner: &mut DurableInner) -> Result<(), FlushError> {
        let path = self.dir.join(SNAPSHOT_FILE);
        let next_epoch = inner.epoch + 1;
        // Encode under the session lock (consistent read), but do the
        // file write + fsyncs after releasing it so concurrent report()
        // readers never wait on the disk. The durable lock (held by our
        // caller) still serializes writers.
        let bytes = self.session.snapshot_state(|builder, finished, rejected| {
            encode_snapshot(builder, finished, rejected, next_epoch)
        });
        let write_result = {
            let _stage = self.snapshot_write_ns.start_timer();
            write_snapshot_bytes_with(&path, &bytes, &self.faults)
        };
        if let Err(e) = write_result {
            // Every step up to the rename leaves the previous snapshot
            // and the log authoritative — bail with the epoch untouched.
            // The directory sync is *after* the commit point: the new
            // snapshot IS live, so the log must still move onto the new
            // epoch below, or every future append would land in a file
            // recovery skips as stale (silent loss of acknowledged
            // events). Only the rename's machine-crash durability is in
            // doubt; the caller still sees the typed failure.
            if e.op != SnapshotOp::DirSync {
                return Err(FlushError::Snapshot {
                    path,
                    op: e.op,
                    source: e.source,
                    updated: Vec::new(),
                });
            }
            self.snapshot_writes.inc();
            // A failed reset schedules its own pending repair (re-driven
            // before the next append); the dir-sync failure outranks it
            // as the reported error either way.
            let _ = inner.wal.reset(next_epoch);
            inner.epoch = next_epoch;
            inner.flushes_since_snapshot = 0;
            return Err(FlushError::Snapshot {
                path,
                op: SnapshotOp::DirSync,
                source: e.source,
                updated: Vec::new(),
            });
        }
        self.snapshot_writes.inc();
        // The snapshot is committed: advance the epoch bookkeeping even
        // when the truncation fails, so the *next* checkpoint's snapshot
        // epoch stays strictly ahead of a log the pending repair has
        // meanwhile reset onto `next_epoch` — an equal-epoch snapshot
        // would make recovery double-apply that log's tail.
        let reset = inner.wal.reset(next_epoch);
        inner.epoch = next_epoch;
        inner.flushes_since_snapshot = 0;
        reset.map_err(|e| FlushError::WalTruncate {
            path: inner.wal.path().to_path_buf(),
            source: e.source,
            updated: Vec::new(),
        })?;
        Ok(())
    }

    /// Force logged frames to stable storage regardless of fsync policy.
    pub fn sync(&self) -> Result<(), WalIoError> {
        self.lock().wal.sync()
    }

    /// The live report of a run (as of the last flush).
    pub fn report(&self, run: RunKey) -> Option<AnalysisReport> {
        self.session.report(run)
    }

    /// All live reports keyed by producer run key.
    pub fn reports(&self) -> HashMap<RunKey, AnalysisReport> {
        self.session.reports()
    }

    /// Aggregate counters of the wrapped session.
    pub fn stats(&self) -> SessionStats {
        self.session.stats()
    }

    /// The wrapped session's metric snapshot. The WAL and snapshot stages
    /// record into the same registry, so this is the whole durable
    /// stack's view (see [`OnlineSession::metrics`]); a fault seam that is
    /// actually injecting contributes its `kojak_faults_*` series too.
    pub fn metrics(&self) -> obs::MetricsSnapshot {
        let mut out = self.session.metrics();
        obs::MetricsSource::collect_into(&self.faults, &mut out);
        out
    }
}
