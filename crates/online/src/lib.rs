//! # `cosy-online` — streaming trace ingestion + incremental analysis
//!
//! The paper's COSY workflow (§3–§4) is batch: build the complete
//! performance database, then evaluate the ASL property suite over it.
//! This crate turns that one-shot analyzer into an **always-on service
//! core**: measurement events stream in from many concurrent test runs,
//! the performance database grows live, and the ranked analysis reports
//! stay continuously up to date — re-evaluating only what each change can
//! actually affect.
//!
//! ## The event model
//!
//! A producer (instrumented run or monitoring daemon) emits
//! [`TraceEvent`]s: `RunStarted`, `RegionEntered` (introducing structure),
//! `RegionExited` (total timings), `TypedSample` (per-category overhead),
//! `CallSiteStat` (per-call statistics) and `RunFinished`. Events are
//! self-describing — structure is keyed by names and source lines, not
//! database ids — so producers never coordinate id allocation; the only
//! producer-side identifiers are a per-run [`RunKey`] and a per-build
//! [`VersionTag`].
//!
//! ## Architecture
//!
//! ```text
//!  producers ──▶ IngestPipeline ──▶ OnlineSession ──▶ live AnalysisReports
//!               (sharded, bounded    (StoreBuilder      (rank-stable,
//!                queues, per-run      + Incremental-     batch-identical)
//!                batching)            Analyzer)
//! ```
//!
//! * [`IngestPipeline`] hashes each event's run key to one of N shard
//!   workers; shards buffer per-run batches and apply them to the session.
//!   Queues are bounded (`std::sync::mpsc::sync_channel`), so overload
//!   produces backpressure instead of unbounded memory growth.
//! * [`StoreBuilder`] applies events to the live [`perfdata::Store`] via
//!   its upsert hooks and records each change's analytical blast radius in
//!   a [`StoreDelta`].
//! * [`IncrementalAnalyzer`] maintains, per run, the set of property
//!   instances that currently hold. A flush re-evaluates exactly the dirty
//!   contexts — through the same `cosy` evaluation path the batch analyzer
//!   uses — and re-assembles the affected reports.
//! * [`DurableSession`] makes the session survive a process kill: events
//!   are framed into a checksummed write-ahead log *before* they are
//!   applied, snapshots of the builder state truncate the log at
//!   checkpoint boundaries, and [`OnlineSession::recover`] resumes with
//!   live reports bit-identical to an uninterrupted session (see
//!   [`crate::wal`], [`crate::snapshot`], [`crate::durable`]).
//!
//! ## Dirty-context tracking
//!
//! A delta names dirty `(run, region)` and `(run, call)` contexts, plus
//! three escalations derived from the data dependencies of the standard
//! suite: a region whose **min-PE total** changed is dirty in every run
//! (`SublinearSpeedup` compares all runs against it); a run at or below
//! the version's smallest processor count dirties the **whole version**
//! (the reference configuration changed); and a timing of the ranking
//! **basis** region — or a change of basis identity as functions stream
//! in — dirties whole runs, since every severity is a fraction of
//! `Duration(Basis, t)`. These rules are what make incremental results
//! *equal* to batch results (see `tests/equivalence.rs`), not just close.
//!
//! ## Example
//!
//! ```
//! use online::{IngestPipeline, OnlineSession, PipelineConfig, SessionConfig, replay};
//! use apprentice_sim::{archetypes, simulate_program, MachineModel};
//! use std::sync::Arc;
//!
//! // A batch store stands in for a live producer via replay.
//! let mut store = perfdata::Store::new();
//! let version = simulate_program(
//!     &mut store,
//!     &archetypes::particle_mc(7),
//!     &MachineModel::t3e_900(),
//!     &[1, 4, 16],
//! );
//!
//! let session = Arc::new(OnlineSession::new(SessionConfig::default()));
//! let pipeline = IngestPipeline::new(Arc::clone(&session), PipelineConfig::default());
//! for event in replay::replay_store(&store) {
//!     pipeline.submit(event).unwrap();
//! }
//! let stats = pipeline.close().unwrap();
//! assert!(stats.errors.is_empty());
//!
//! let run = store.versions[version.index()].runs[2];
//! let report = session.report(online::replay::replay_run_key(run)).unwrap();
//! assert!(report.bottleneck().is_some());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod builder;
pub mod durable;
pub mod error;
pub mod event;
pub mod incremental;
pub mod pipeline;
pub mod replay;
pub mod session;
pub mod snapshot;
pub mod wal;
pub mod wire;

pub use builder::{StoreBuilder, StoreDelta};

/// The compiled evaluator's process-global memoization-cache counters as
/// a metric snapshot (`kojak_eval_cache_{hits,misses}_total`).
///
/// These counters are **process-wide** — every evaluator of every shard
/// bumps the same pair — so they are deliberately excluded from
/// [`OnlineSession::metrics`] (a sharded engine merges per-shard
/// snapshots, and a global added per shard would multiply). Add this
/// snapshot exactly once at the top of whatever aggregation you ship:
/// the net-layer server does so in its `Introspect` reply.
pub fn eval_cache_metrics() -> obs::MetricsSnapshot {
    let (hits, misses) = asl_eval::cache_counters();
    let mut out = obs::MetricsSnapshot::default();
    out.push_counter("kojak_eval_cache_hits_total", hits);
    out.push_counter("kojak_eval_cache_misses_total", misses);
    let (memo_hits, memo_misses) = asl_eval::filter_memo_counters();
    out.push_counter("kojak_eval_filter_memo_hits_total", memo_hits);
    out.push_counter("kojak_eval_filter_memo_misses_total", memo_misses);
    let (fn_hits, fn_misses) = asl_eval::fn_memo_counters();
    out.push_counter("kojak_eval_fn_memo_hits_total", fn_hits);
    out.push_counter("kojak_eval_fn_memo_misses_total", fn_misses);
    out
}
pub use durable::{DurableConfig, DurableSession, RecoveryError, RecoveryStats};
pub use error::FlushError;
pub use event::{
    CallStats, IngestError, RegionDef, RegionRef, RunKey, TraceEvent, VersionTag, WIRE_VERSION,
};
pub use incremental::{IncrementalAnalyzer, IncrementalStats};
pub use pipeline::{IngestPipeline, PipelineConfig, PipelineStats};
pub use session::{OnlineSession, SessionConfig, SessionStats};
pub use snapshot::{SnapshotOp, SnapshotWriteError};
pub use wal::{FsyncPolicy, WalCorruption, WalCorruptionKind, WalIoError, WalOp};
pub use wire::WireError;
