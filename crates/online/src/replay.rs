//! Replaying a materialized [`Store`] as an event stream.
//!
//! The bridge between the batch world and the online engine: any store —
//! e.g. one produced by the `apprentice-sim` simulator — can be decomposed
//! into the [`TraceEvent`] stream a live producer would have emitted.
//! Producer keys are derived from the store ids ([`RunKey`] = run index,
//! [`VersionTag`] = version index), so replaying a whole store into a fresh
//! [`crate::StoreBuilder`] reconstructs an identical arena layout. This is
//! the foundation of the batch≡online equivalence tests and of the
//! ingestion benchmarks.

use crate::event::{CallStats, RegionRef, RunKey, TraceEvent, VersionTag};
use perfdata::{RegionId, Store, TestRunId};

/// The producer key replay assigns to a store run.
pub fn replay_run_key(run: TestRunId) -> RunKey {
    RunKey(run.0 as u64)
}

fn region_ref(store: &Store, r: RegionId) -> RegionRef {
    let reg = &store.regions[r.index()];
    RegionRef::new(reg.name.clone(), reg.first_line)
}

/// The event stream of one run: `RunStarted`, the full static structure of
/// its version (idempotent re-announcements when replayed after a sibling
/// run), the run's timings and call statistics, and `RunFinished`.
pub fn events_for_run(store: &Store, run: TestRunId) -> Vec<TraceEvent> {
    let key = replay_run_key(run);
    let run_rec = &store.runs[run.index()];
    let vid = run_rec.version;
    let version = &store.versions[vid.index()];
    let program = &store.programs[version.program.index()];
    let mut events = vec![TraceEvent::RunStarted {
        run: key,
        version: VersionTag(vid.0 as u64),
        program: program.name.clone(),
        compiled_at: version.compilation,
        source: store.sources[version.code.index()].text.clone(),
        start: run_rec.start,
        no_pe: run_rec.no_pe,
        clockspeed: run_rec.clockspeed,
    }];

    // Structure, in creation (pre-)order so parents precede children.
    for &f in &version.functions {
        let function = &store.functions[f.index()];
        for &r in &function.regions {
            let reg = &store.regions[r.index()];
            events.push(TraceEvent::RegionEntered {
                run: key,
                function: function.name.clone(),
                region: crate::event::RegionDef {
                    name: reg.name.clone(),
                    parent: reg.parent.map(|p| region_ref(store, p)),
                    kind: reg.kind,
                    first_line: reg.first_line,
                    last_line: reg.last_line,
                },
            });
        }
    }

    // Timings of this run.
    for &f in &version.functions {
        let function = &store.functions[f.index()];
        for &r in &function.regions {
            let reg = &store.regions[r.index()];
            if let Some(t) = store.total_timing(r, run) {
                events.push(TraceEvent::RegionExited {
                    run: key,
                    function: function.name.clone(),
                    region: RegionRef::new(reg.name.clone(), reg.first_line),
                    excl: t.excl,
                    incl: t.incl,
                    ovhd: t.ovhd,
                });
            }
            for &tt in &reg.typ_times {
                let typed = &store.typed_timings[tt.index()];
                if typed.run == run {
                    events.push(TraceEvent::TypedSample {
                        run: key,
                        function: function.name.clone(),
                        region: RegionRef::new(reg.name.clone(), reg.first_line),
                        ty: typed.ty,
                        time: typed.time,
                    });
                }
            }
        }
    }

    // Call statistics of this run, in call-site creation order so a replay
    // interns call sites in the same arena order the batch builder used.
    for call in &store.calls {
        let caller = &store.functions[call.caller.index()];
        if caller.version != vid {
            continue;
        }
        for &ct in &call.sums {
            let s = &store.call_timings[ct.index()];
            if s.run != run {
                continue;
            }
            events.push(TraceEvent::CallSiteStat {
                run: key,
                caller: caller.name.clone(),
                callee: store.functions[call.callee.index()].name.clone(),
                site: region_ref(store, call.calling_reg),
                stats: CallStats {
                    min_count: s.min_count,
                    max_count: s.max_count,
                    mean_count: s.mean_count,
                    stdev_count: s.stdev_count,
                    min_count_pe: s.min_count_pe,
                    max_count_pe: s.max_count_pe,
                    min_time: s.min_time,
                    max_time: s.max_time,
                    mean_time: s.mean_time,
                    stdev_time: s.stdev_time,
                    min_time_pe: s.min_time_pe,
                    max_time_pe: s.max_time_pe,
                },
            });
        }
    }

    events.push(TraceEvent::RunFinished { run: key });
    events
}

/// The event stream of a whole store: every run, in store (chronological)
/// order. Versions without runs are not representable as events and are
/// skipped.
pub fn replay_store(store: &Store) -> Vec<TraceEvent> {
    (0..store.runs.len() as u32)
        .flat_map(|r| events_for_run(store, TestRunId(r)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{StoreBuilder, StoreDelta};

    fn sample() -> Store {
        use perfdata::{DateTime, RegionKind, TimingType};
        let mut s = Store::new();
        let p = s.add_program("app");
        let v = s.add_version(p, DateTime::from_secs(10), "src");
        let r1 = s.add_run(v, DateTime::from_secs(20), 1, 450);
        let r2 = s.add_run(v, DateTime::from_secs(30), 8, 450);
        let f = s.add_function(v, "main");
        let root = s.add_region(f, None, RegionKind::Subprogram, "main", (1, 90));
        let lp = s.add_region(f, Some(root), RegionKind::Loop, "main:loop@5", (5, 50));
        // Run-major insertion order, as a live stream (and summarize_run)
        // would produce it.
        s.add_total_timing(root, r1, 1.0, 10.0, 0.2);
        s.add_total_timing(lp, r1, 5.0, 9.0, 0.1);
        s.add_total_timing(root, r2, 1.4, 13.0, 0.9);
        s.add_total_timing(lp, r2, 7.0, 12.0, 0.8);
        s.add_typed_timing(lp, r2, TimingType::Barrier, 2.0);
        s
    }

    #[test]
    fn replay_reconstructs_identical_store() {
        let original = sample();
        let mut builder = StoreBuilder::new();
        let mut delta = StoreDelta::new();
        for event in replay_store(&original) {
            builder.apply(&event, &mut delta).unwrap();
        }
        assert_eq!(builder.store(), &original);
    }

    #[test]
    fn run_stream_is_self_describing() {
        let store = sample();
        let events = events_for_run(&store, TestRunId(1));
        assert!(matches!(
            events.first(),
            Some(TraceEvent::RunStarted { .. })
        ));
        assert!(matches!(
            events.last(),
            Some(TraceEvent::RunFinished { .. })
        ));
        // Structure precedes measurements.
        let first_exit = events
            .iter()
            .position(|e| matches!(e, TraceEvent::RegionExited { .. }))
            .unwrap();
        let last_enter = events
            .iter()
            .rposition(|e| matches!(e, TraceEvent::RegionEntered { .. }))
            .unwrap();
        assert!(last_enter < first_exit);
    }
}
