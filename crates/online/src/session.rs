//! The session layer: one always-on analysis service core multiplexing
//! many concurrent measurement streams.
//!
//! [`OnlineSession`] is the shared, thread-safe object the ingestion
//! pipeline's shard workers feed. It owns the [`StoreBuilder`] (live store
//! and interning) and the [`IncrementalAnalyzer`] (live reports) behind one
//! mutex; ingestion appends events and accumulates the pending
//! [`StoreDelta`], and [`OnlineSession::flush`] turns the pending delta
//! into refreshed reports (per-run evaluation fans out through rayon
//! inside the incremental engine).

use crate::builder::{StoreBuilder, StoreDelta};
use crate::error::FlushError;
use crate::event::{IngestError, RunKey, TraceEvent};
use crate::incremental::{IncrementalAnalyzer, IncrementalStats};
use asl_core::check::CheckedSpec;
use cosy::{AnalysisReport, Backend, ProblemThreshold};
use obs::{MetricsRegistry, MetricsSnapshot, MetricsSource};
use perfdata::Store;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Session configuration.
#[derive(Debug, Clone, Default)]
pub struct SessionConfig {
    /// Severity threshold above which a property is a performance problem.
    pub threshold: ProblemThreshold,
    /// Flush automatically once this many events are pending (0 disables
    /// auto-flush; the pipeline and `flush()` remain the triggers).
    pub auto_flush_events: usize,
    /// Evaluation backend for the incremental engine. Defaults to the
    /// compiled IR; the interpreter remains available as a reference
    /// oracle for validation and baselining.
    pub backend: Backend,
    /// The property suite to evaluate. `None` means the standard suite;
    /// a custom pre-checked suite is shared (and lowered to the compiled
    /// IR once) across the session's whole life, recovery included.
    pub spec: Option<Arc<CheckedSpec>>,
}

/// Aggregate observability counters of a session.
///
/// `events_applied`/`events_rejected`/`runs_finished` are **lifetime**
/// counters: a recovered session restores them from the snapshot and
/// continues counting through the replayed WAL tail, so a restart reports
/// its true history instead of zeros. `flushes` and the incremental
/// counters describe work done by *this* process (recovery's replay flush
/// included).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Events applied to the store.
    pub events_applied: u64,
    /// Events rejected with an [`IngestError`].
    pub events_rejected: u64,
    /// Events restored at startup by the recovery path (snapshot events
    /// plus replayed WAL-tail events); 0 for a session born empty.
    pub events_replayed: u64,
    /// Analysis flushes performed.
    pub flushes: u64,
    /// Runs declared finished by their producer.
    pub runs_finished: u64,
    /// Incremental-engine counters.
    pub incremental: IncrementalStats,
}

impl MetricsSource for SessionStats {
    fn collect_into(&self, out: &mut MetricsSnapshot) {
        let SessionStats {
            events_applied,
            events_rejected,
            events_replayed,
            flushes,
            runs_finished,
            incremental,
        } = self;
        out.push_counter("kojak_online_events_applied_total", *events_applied);
        out.push_counter("kojak_online_events_rejected_total", *events_rejected);
        out.push_counter("kojak_online_events_replayed_total", *events_replayed);
        out.push_counter("kojak_online_flushes_total", *flushes);
        out.push_counter("kojak_online_runs_finished_total", *runs_finished);
        incremental.collect_into(out);
    }
}

struct SessionInner {
    builder: StoreBuilder,
    analyzer: IncrementalAnalyzer,
    pending: StoreDelta,
    pending_events: usize,
    rejected: u64,
    replayed: u64,
}

/// A live, thread-safe online analysis session.
pub struct OnlineSession {
    inner: Mutex<SessionInner>,
    config: SessionConfig,
    /// Per-session metric set (shared with the durable wrapper, the WAL
    /// writer and the pipeline; merged across shards by the engine layer).
    registry: Arc<MetricsRegistry>,
    /// Pre-created stage handles — the hot path never takes the registry
    /// lock.
    apply_ns: Arc<obs::Histogram>,
    flush_ns: Arc<obs::Histogram>,
}

impl OnlineSession {
    fn analyzer_for(
        config: &SessionConfig,
        registry: &Arc<MetricsRegistry>,
    ) -> IncrementalAnalyzer {
        let analyzer = match &config.spec {
            Some(spec) => IncrementalAnalyzer::with_spec(Arc::clone(spec), config.threshold),
            None => IncrementalAnalyzer::new(config.threshold),
        };
        analyzer
            .with_backend(config.backend)
            .with_registry(Arc::clone(registry))
    }

    fn assemble(
        config: SessionConfig,
        inner: SessionInner,
        registry: Arc<MetricsRegistry>,
    ) -> Self {
        let apply_ns = registry.histogram("kojak_online_apply_ns");
        let flush_ns = registry.histogram("kojak_online_flush_ns");
        OnlineSession {
            inner: Mutex::new(inner),
            config,
            registry,
            apply_ns,
            flush_ns,
        }
    }

    /// Create a session with the configured suite (the standard one unless
    /// [`SessionConfig::spec`] overrides it).
    pub fn new(config: SessionConfig) -> Self {
        let registry = Arc::new(MetricsRegistry::new());
        let analyzer = Self::analyzer_for(&config, &registry);
        Self::assemble(
            config,
            SessionInner {
                builder: StoreBuilder::new(),
                analyzer,
                pending: StoreDelta::new(),
                pending_events: 0,
                rejected: 0,
                replayed: 0,
            },
            registry,
        )
    }

    /// Rebuild a session from recovered state: the snapshotted builder,
    /// the finished-run set, and the restored lifetime counters. The
    /// pending delta is seeded with a full re-evaluation of every known
    /// run, so the first flush recomputes every live report from the
    /// recovered store (deterministically identical to the reports the
    /// crashed session would have shown after its own next flush).
    pub(crate) fn from_recovered(
        config: SessionConfig,
        builder: StoreBuilder,
        finished: Vec<perfdata::TestRunId>,
        rejected: u64,
    ) -> Self {
        let registry = Arc::new(MetricsRegistry::new());
        let mut analyzer = Self::analyzer_for(&config, &registry);
        analyzer.restore_finished(finished.iter().copied());
        let mut pending = StoreDelta::new();
        for (_, run, version) in builder.runs() {
            pending.full_runs.insert(run);
            pending.touched_versions.insert(version);
        }
        pending.finished_runs.extend(finished);
        Self::assemble(
            config,
            SessionInner {
                builder,
                analyzer,
                pending,
                pending_events: 0,
                rejected,
                replayed: 0,
            },
            registry,
        )
    }

    /// Record how many events the recovery path restored (for
    /// [`SessionStats::events_replayed`]).
    pub(crate) fn note_replayed(&self, n: u64) {
        self.lock().replayed += n;
    }

    /// Run `f` over the session's persistent state — builder, finished
    /// runs, rejected counter — under the session lock (the snapshot
    /// writer's consistent read).
    pub(crate) fn snapshot_state<R>(
        &self,
        f: impl FnOnce(&StoreBuilder, &[perfdata::TestRunId], u64) -> R,
    ) -> R {
        let inner = self.lock();
        let finished: Vec<perfdata::TestRunId> = inner.analyzer.finished_runs().collect();
        f(&inner.builder, &finished, inner.rejected)
    }

    /// Producer keys of every run the session knows about (unordered).
    /// The sharded engine rebuilds its run→shard affinity map from this
    /// after recovery.
    pub fn run_keys(&self) -> Vec<RunKey> {
        self.lock().builder.runs().map(|(k, _, _)| k).collect()
    }

    /// Producer keys of the runs declared finished (and flushed).
    pub fn finished_run_keys(&self) -> Vec<RunKey> {
        let inner = self.lock();
        inner
            .analyzer
            .finished_runs()
            .filter_map(|id| inner.builder.run_key_of(id))
            .collect()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, SessionInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Ingest one event. Structural/timing effects are applied to the live
    /// store immediately; analysis is deferred to the next flush.
    pub fn ingest(&self, event: &TraceEvent) -> Result<(), IngestError> {
        self.ingest_batch(std::slice::from_ref(event)).map(|_| ())
    }

    /// Ingest a batch of events (the pipeline's unit of work). Events are
    /// isolated: a rejected event is counted and skipped, the rest of the
    /// batch still applies. Returns the number of applied events, or the
    /// *first* rejection (after the whole batch was attempted).
    pub fn ingest_batch(&self, events: &[TraceEvent]) -> Result<usize, IngestError> {
        let mut inner = self.lock();
        let SessionInner {
            builder, pending, ..
        } = &mut *inner;
        let (applied, failure) = {
            let _stage = self.apply_ns.start_timer();
            builder.apply_batch(events, pending)
        };
        inner.rejected += (events.len() - applied) as u64;
        inner.pending_events += applied;
        let auto = self.config.auto_flush_events;
        if auto > 0 && inner.pending_events >= auto {
            // On failure the delta is re-queued (see `flush_inner`), so the
            // error genuinely resurfaces on the next explicit flush.
            let _ = self.flush_inner(&mut inner);
        }
        match failure {
            Some(e) => Err(e),
            None => Ok(applied),
        }
    }

    fn flush_inner(&self, inner: &mut SessionInner) -> Result<Vec<RunKey>, FlushError> {
        let delta = std::mem::take(&mut inner.pending);
        inner.pending_events = 0;
        if delta.is_empty() {
            return Ok(Vec::new());
        }
        let _stage = self.flush_ns.start_timer();
        let SessionInner {
            builder,
            analyzer,
            pending,
            ..
        } = inner;
        match analyzer.flush(builder.store(), &delta) {
            Ok(updated) => Ok(updated
                .into_iter()
                .filter_map(|run| builder.run_key_of(run))
                .collect()),
            Err(e) => {
                // Nothing was invalidated-and-forgotten: re-queue the delta
                // so the next flush retries the same work.
                pending.merge(delta);
                Err(e)
            }
        }
    }

    /// Analyze everything pending. Returns the producer keys of the runs
    /// whose live report changed. On failure the invalidated delta is
    /// re-queued, so the same [`FlushError`] resurfaces (and the same work
    /// retries) on the next flush.
    pub fn flush(&self) -> Result<Vec<RunKey>, FlushError> {
        self.flush_inner(&mut self.lock())
    }

    /// True once the run's producer declared it finished and that event
    /// has been flushed.
    pub fn is_finished(&self, run: RunKey) -> bool {
        let inner = self.lock();
        inner
            .builder
            .run_id(run)
            .is_some_and(|id| inner.analyzer.is_finished(id))
    }

    /// The live report of a run (as of the last flush).
    pub fn report(&self, run: RunKey) -> Option<AnalysisReport> {
        let inner = self.lock();
        let id = inner.builder.run_id(run)?;
        inner.analyzer.report(id).cloned()
    }

    /// All live reports keyed by producer run key.
    pub fn reports(&self) -> HashMap<RunKey, AnalysisReport> {
        let inner = self.lock();
        inner
            .analyzer
            .reports()
            .filter_map(|(id, r)| inner.builder.run_key_of(id).map(|k| (k, r.clone())))
            .collect()
    }

    /// A snapshot of the live store (clone; the live store keeps moving).
    pub fn store_snapshot(&self) -> Store {
        self.lock().builder.store().clone()
    }

    /// Aggregate counters.
    pub fn stats(&self) -> SessionStats {
        let inner = self.lock();
        SessionStats {
            events_applied: inner.builder.events_applied(),
            events_rejected: inner.rejected,
            events_replayed: inner.replayed,
            flushes: inner.analyzer.stats().flushes,
            runs_finished: inner.analyzer.finished_count() as u64,
            incremental: inner.analyzer.stats(),
        }
    }

    /// The session's metric registry: the stage histograms this session
    /// records into, shared with its durable wrapper, WAL writer and any
    /// pipeline feeding it. Hold handles from it rather than re-looking
    /// names up per event.
    pub fn metrics_registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// One composable snapshot of everything this session knows about
    /// itself: the [`SessionStats`] counters plus the registry's stage
    /// histograms. Process-global metrics (the compiled-eval cache) are
    /// deliberately *not* included — a sharded engine merges many of
    /// these snapshots, and globals must be added exactly once at the top
    /// (see `eval_cache_metrics` in the crate root).
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut out = self.stats().metrics();
        self.registry.collect_into(&mut out);
        out
    }

    /// The configured problem threshold.
    pub fn threshold(&self) -> ProblemThreshold {
        self.config.threshold
    }
}

impl Default for OnlineSession {
    fn default() -> Self {
        OnlineSession::new(SessionConfig::default())
    }
}
