//! Point-in-time store snapshots.
//!
//! A snapshot serializes the full [`StoreBuilder`] state — the store's
//! primary arenas plus the producer-key maps ([`RunKey`]→run,
//! [`VersionTag`]→version) — and the [`crate::IncrementalAnalyzer`]'s
//! finished-run set. Only the arenas are written; backlink vectors and the
//! store's secondary indexes are **reconstructed by replaying the public
//! `Store::add_*` builders in arena order**, which reproduces ids,
//! backlink orders, and index tie-breaking exactly. A recovered store is
//! therefore arena-identical to the snapshotted one, which is what makes
//! recovered analysis reports bit-identical (down to `ContextDesc` ids)
//! rather than merely equivalent.
//!
//! ## File format
//!
//! ```text
//! ┌───────┬────────────┬────────────┬─────────────┬─────────┐
//! │ magic │ version u8 │ len u32 LE │ crc32 u32 LE│ payload │
//! │ KJSN  │    = 1     │ of payload │ of payload  │         │
//! └───────┴────────────┴────────────┴─────────────┴─────────┘
//! ```
//!
//! The whole payload is covered by one checksum: a snapshot is either
//! loaded in full or rejected as corrupt — unlike the WAL there is no
//! meaningful prefix to fall back to, so corruption surfaces as a typed
//! [`SnapshotError::Corrupt`] for the recovery layer to report.
//!
//! Writes are atomic: payload to `snapshot.tmp`, fsync, rename over
//! `snapshot.bin`, fsync the directory. A crash mid-write leaves either
//! the old snapshot or the new one, never a torn file.

use crate::builder::StoreBuilder;
use crate::event::{RunKey, VersionTag};
use crate::wire::{self, Reader, WireError};
use faults::{Faults, Op as FaultOp};
use perfdata::{
    CallTiming, DateTime, FunctionId, RegionId, Store, TestRunId, TimingType, VersionId,
};
use std::collections::HashMap;
use std::fs::File;
use std::io::{self, Read};
use std::path::Path;

/// Magic prefix of a snapshot file.
pub const SNAPSHOT_MAGIC: &[u8; 4] = b"KJSN";
/// Snapshot format version.
pub const SNAPSHOT_VERSION: u8 = 1;

/// Why a snapshot could not be loaded.
#[derive(Debug)]
pub enum SnapshotError {
    /// Filesystem failure.
    Io(io::Error),
    /// The file exists but is not a loadable snapshot (bad magic, bad
    /// checksum, truncated, or internally inconsistent ids).
    Corrupt(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O: {e}"),
            SnapshotError::Corrupt(why) => write!(f, "snapshot corrupt: {why}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

impl From<WireError> for SnapshotError {
    fn from(e: WireError) -> Self {
        SnapshotError::Corrupt(e.to_string())
    }
}

/// The step of the atomic snapshot-write protocol a
/// [`SnapshotWriteError`] failed in. Every I/O result of the protocol
/// is attributed to exactly one of these.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotOp {
    /// Creating the temp file.
    Create,
    /// Writing the image into the temp file.
    Write,
    /// Fsyncing the temp file before the rename.
    Sync,
    /// Renaming the temp file over the live snapshot — the commit point.
    Rename,
    /// Fsyncing the directory after the rename. The snapshot content is
    /// already committed; only the *rename's* machine-crash durability
    /// is in doubt.
    DirSync,
}

impl std::fmt::Display for SnapshotOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            SnapshotOp::Create => "create temp",
            SnapshotOp::Write => "write temp",
            SnapshotOp::Sync => "sync temp",
            SnapshotOp::Rename => "rename",
            SnapshotOp::DirSync => "sync directory",
        };
        f.write_str(name)
    }
}

/// A typed snapshot-write failure: which protocol step failed, and the
/// underlying OS error. Steps before [`SnapshotOp::Rename`] leave the
/// previous snapshot untouched; recovery falls back to it plus the
/// longer WAL tail.
#[derive(Debug)]
pub struct SnapshotWriteError {
    /// The protocol step that failed.
    pub op: SnapshotOp,
    /// The underlying I/O error.
    pub source: io::Error,
}

impl std::fmt::Display for SnapshotWriteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "snapshot {} failed: {}", self.op, self.source)
    }
}

impl std::error::Error for SnapshotWriteError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// Everything a snapshot restores.
#[derive(Debug)]
pub struct SnapshotData {
    /// The reconstructed builder (store + key maps + event counter).
    pub builder: StoreBuilder,
    /// Runs whose producer had declared them finished.
    pub finished: Vec<TestRunId>,
    /// Lifetime count of rejected events at snapshot time.
    pub events_rejected: u64,
    /// Lifetime count of applied events at snapshot time (also available
    /// as `builder.events_applied()`; kept separate for reporting).
    pub events_applied: u64,
    /// The checkpoint epoch this snapshot truncated the WAL to: a log
    /// whose header carries an *older* epoch is entirely covered by this
    /// snapshot (the crash hit the rename→truncate window) and must be
    /// skipped, not replayed.
    pub wal_epoch: u64,
}

// ------------------------------------------------------------- encode ----

fn encode_payload(
    builder: &StoreBuilder,
    finished: &[TestRunId],
    events_rejected: u64,
    wal_epoch: u64,
) -> Vec<u8> {
    let store = builder.store();
    let mut buf = Vec::with_capacity(4096);
    wire::put_u64(&mut buf, builder.events_applied());
    wire::put_u64(&mut buf, events_rejected);
    wire::put_u64(&mut buf, wal_epoch);

    wire::put_u32(&mut buf, store.programs.len() as u32);
    for p in &store.programs {
        wire::put_str(&mut buf, &p.name);
    }
    wire::put_u32(&mut buf, store.versions.len() as u32);
    for v in &store.versions {
        wire::put_u32(&mut buf, v.program.0);
        wire::put_i64(&mut buf, v.compilation.micros());
        wire::put_str(&mut buf, &store.sources[v.code.index()].text);
    }
    wire::put_u32(&mut buf, store.runs.len() as u32);
    for r in &store.runs {
        wire::put_u32(&mut buf, r.version.0);
        wire::put_i64(&mut buf, r.start.micros());
        wire::put_u32(&mut buf, r.no_pe);
        wire::put_u32(&mut buf, r.clockspeed);
    }
    wire::put_u32(&mut buf, store.functions.len() as u32);
    for f in &store.functions {
        wire::put_u32(&mut buf, f.version.0);
        wire::put_str(&mut buf, &f.name);
    }
    wire::put_u32(&mut buf, store.regions.len() as u32);
    for reg in &store.regions {
        wire::put_u32(&mut buf, reg.function.0);
        match reg.parent {
            None => wire::put_u8(&mut buf, 0),
            Some(p) => {
                wire::put_u8(&mut buf, 1);
                wire::put_u32(&mut buf, p.0);
            }
        }
        wire::put_u8(&mut buf, wire::region_kind_code(reg.kind));
        wire::put_str(&mut buf, &reg.name);
        wire::put_u32(&mut buf, reg.first_line);
        wire::put_u32(&mut buf, reg.last_line);
    }
    wire::put_u32(&mut buf, store.total_timings.len() as u32);
    for t in &store.total_timings {
        wire::put_u32(&mut buf, t.region.0);
        wire::put_u32(&mut buf, t.run.0);
        wire::put_f64(&mut buf, t.excl);
        wire::put_f64(&mut buf, t.incl);
        wire::put_f64(&mut buf, t.ovhd);
    }
    wire::put_u32(&mut buf, store.typed_timings.len() as u32);
    for t in &store.typed_timings {
        wire::put_u32(&mut buf, t.region.0);
        wire::put_u32(&mut buf, t.run.0);
        wire::put_u8(&mut buf, t.ty.code());
        wire::put_f64(&mut buf, t.time);
    }
    wire::put_u32(&mut buf, store.calls.len() as u32);
    for c in &store.calls {
        wire::put_u32(&mut buf, c.caller.0);
        wire::put_u32(&mut buf, c.callee.0);
        wire::put_u32(&mut buf, c.calling_reg.0);
    }
    wire::put_u32(&mut buf, store.call_timings.len() as u32);
    for s in &store.call_timings {
        wire::put_u32(&mut buf, s.call.0);
        wire::put_u32(&mut buf, s.run.0);
        wire::put_f64(&mut buf, s.min_count);
        wire::put_f64(&mut buf, s.max_count);
        wire::put_f64(&mut buf, s.mean_count);
        wire::put_f64(&mut buf, s.stdev_count);
        wire::put_u32(&mut buf, s.min_count_pe);
        wire::put_u32(&mut buf, s.max_count_pe);
        wire::put_f64(&mut buf, s.min_time);
        wire::put_f64(&mut buf, s.max_time);
        wire::put_f64(&mut buf, s.mean_time);
        wire::put_f64(&mut buf, s.stdev_time);
        wire::put_u32(&mut buf, s.min_time_pe);
        wire::put_u32(&mut buf, s.max_time_pe);
    }

    // Key maps, sorted by store id for byte-stable output.
    let mut tags: Vec<(VersionTag, VersionId)> = builder.version_tags().collect();
    tags.sort_by_key(|(_, v)| *v);
    wire::put_u32(&mut buf, tags.len() as u32);
    for (tag, vid) in tags {
        wire::put_u64(&mut buf, tag.0);
        wire::put_u32(&mut buf, vid.0);
    }
    let mut keys: Vec<(RunKey, TestRunId)> = builder.runs().map(|(k, r, _)| (k, r)).collect();
    keys.sort_by_key(|(_, r)| *r);
    wire::put_u32(&mut buf, keys.len() as u32);
    for (key, rid) in keys {
        wire::put_u64(&mut buf, key.0);
        wire::put_u32(&mut buf, rid.0);
    }
    let mut finished: Vec<TestRunId> = finished.to_vec();
    finished.sort();
    wire::put_u32(&mut buf, finished.len() as u32);
    for r in finished {
        wire::put_u32(&mut buf, r.0);
    }
    buf
}

/// Serialize a complete snapshot file image (header + checksummed
/// payload) of `builder` + `finished`. Pure in-memory encoding: callers
/// hold whatever lock guards the builder only for this call and do the
/// file I/O ([`write_snapshot_bytes`]) after releasing it.
pub fn encode_snapshot(
    builder: &StoreBuilder,
    finished: &[TestRunId],
    events_rejected: u64,
    wal_epoch: u64,
) -> Vec<u8> {
    let payload = encode_payload(builder, finished, events_rejected, wal_epoch);
    let mut file_bytes = Vec::with_capacity(payload.len() + 13);
    file_bytes.extend_from_slice(SNAPSHOT_MAGIC);
    wire::put_u8(&mut file_bytes, SNAPSHOT_VERSION);
    wire::put_u32(&mut file_bytes, payload.len() as u32);
    wire::put_u32(&mut file_bytes, wire::crc32(&payload));
    file_bytes.extend_from_slice(&payload);
    file_bytes
}

/// Atomically persist an encoded snapshot image to `path` (write to a
/// temp file, fsync, rename over, fsync the directory).
pub fn write_snapshot_bytes(path: &Path, file_bytes: &[u8]) -> Result<(), SnapshotWriteError> {
    write_snapshot_bytes_with(path, file_bytes, &Faults::none())
}

/// [`write_snapshot_bytes`] through a fault seam: each protocol step is
/// individually injectable, and each failure is attributed to its
/// [`SnapshotOp`].
pub fn write_snapshot_bytes_with(
    path: &Path,
    file_bytes: &[u8],
    faults: &Faults,
) -> Result<(), SnapshotWriteError> {
    let step = |op: SnapshotOp| move |source: io::Error| SnapshotWriteError { op, source };
    let tmp = path.with_extension("tmp");
    {
        faults
            .check(FaultOp::SnapshotCreate)
            .and_then(|()| File::create(&tmp))
            .map_err(step(SnapshotOp::Create))
            .and_then(|mut f| {
                faults
                    .write_all(FaultOp::SnapshotWrite, &mut f, file_bytes)
                    .map_err(step(SnapshotOp::Write))?;
                faults
                    .check(FaultOp::SnapshotSync)
                    .and_then(|()| f.sync_all())
                    .map_err(step(SnapshotOp::Sync))
            })?;
    }
    faults
        .rename(FaultOp::SnapshotRename, &tmp, path)
        .map_err(step(SnapshotOp::Rename))?;
    // Persist the rename itself. Failing to *open* the directory is
    // tolerated (not every filesystem allows it — there is nothing to
    // report), but once open, a failing sync is a real durability signal
    // and surfaces typed instead of being swallowed.
    if let Some(dir) = path.parent() {
        if let Ok(d) = File::open(dir) {
            faults
                .check(FaultOp::SnapshotDirSync)
                .and_then(|()| d.sync_all())
                .map_err(step(SnapshotOp::DirSync))?;
        }
    }
    Ok(())
}

// ------------------------------------------------------------- decode ----

/// A bounds-checked arena id read.
fn get_id(r: &mut Reader<'_>, what: &'static str, limit: usize) -> Result<u32, SnapshotError> {
    let id = r.get_u32(what)?;
    if id as usize >= limit {
        return Err(SnapshotError::Corrupt(format!(
            "{what} {id} out of range (< {limit})"
        )));
    }
    Ok(id)
}

fn decode_payload(payload: &[u8]) -> Result<SnapshotData, SnapshotError> {
    let mut r = Reader::new(payload);
    let events_applied = r.get_u64("events_applied")?;
    let events_rejected = r.get_u64("events_rejected")?;
    let wal_epoch = r.get_u64("wal_epoch")?;

    let mut store = Store::new();
    let n_programs = r.get_u32("program count")?;
    for _ in 0..n_programs {
        let name = r.get_str("program name")?;
        store.add_program(name);
    }
    let n_versions = r.get_u32("version count")?;
    for _ in 0..n_versions {
        let program = get_id(&mut r, "version program id", store.programs.len())?;
        let compilation = DateTime(r.get_i64("compilation")?);
        let source = r.get_str("source")?;
        store.add_version(perfdata::ProgramId(program), compilation, source);
    }
    let n_runs = r.get_u32("run count")?;
    for _ in 0..n_runs {
        let version = get_id(&mut r, "run version id", store.versions.len())?;
        let start = DateTime(r.get_i64("run start")?);
        let no_pe = r.get_u32("no_pe")?;
        let clockspeed = r.get_u32("clockspeed")?;
        store.add_run(VersionId(version), start, no_pe, clockspeed);
    }
    let n_functions = r.get_u32("function count")?;
    for _ in 0..n_functions {
        let version = get_id(&mut r, "function version id", store.versions.len())?;
        let name = r.get_str("function name")?;
        store.add_function(VersionId(version), name);
    }
    let n_regions = r.get_u32("region count")?;
    for _ in 0..n_regions {
        let function = get_id(&mut r, "region function id", store.functions.len())?;
        let parent = match r.get_u8("parent flag")? {
            0 => None,
            1 => Some(RegionId(get_id(
                &mut r,
                "region parent id",
                store.regions.len(),
            )?)),
            code => {
                return Err(SnapshotError::Corrupt(format!("parent flag {code}")));
            }
        };
        let kind_code = r.get_u8("region kind")?;
        let kind = wire::region_kind_from_code(kind_code)
            .ok_or_else(|| SnapshotError::Corrupt(format!("region kind {kind_code}")))?;
        let name = r.get_str("region name")?;
        let first = r.get_u32("first_line")?;
        let last = r.get_u32("last_line")?;
        store.add_region(FunctionId(function), parent, kind, name, (first, last));
    }
    let n_tot = r.get_u32("total timing count")?;
    for _ in 0..n_tot {
        let region = get_id(&mut r, "timing region id", store.regions.len())?;
        let run = get_id(&mut r, "timing run id", store.runs.len())?;
        let excl = r.get_f64("excl")?;
        let incl = r.get_f64("incl")?;
        let ovhd = r.get_f64("ovhd")?;
        store.add_total_timing(RegionId(region), TestRunId(run), excl, incl, ovhd);
    }
    let n_typed = r.get_u32("typed timing count")?;
    for _ in 0..n_typed {
        let region = get_id(&mut r, "typed region id", store.regions.len())?;
        let run = get_id(&mut r, "typed run id", store.runs.len())?;
        let ty_code = r.get_u8("timing type")?;
        let ty = TimingType::from_code(ty_code)
            .ok_or_else(|| SnapshotError::Corrupt(format!("timing type {ty_code}")))?;
        let time = r.get_f64("typed time")?;
        store.add_typed_timing(RegionId(region), TestRunId(run), ty, time);
    }
    let n_calls = r.get_u32("call count")?;
    for _ in 0..n_calls {
        let caller = get_id(&mut r, "caller id", store.functions.len())?;
        let callee = get_id(&mut r, "callee id", store.functions.len())?;
        let site = get_id(&mut r, "call site region id", store.regions.len())?;
        store.add_call(FunctionId(caller), FunctionId(callee), RegionId(site));
    }
    let n_ct = r.get_u32("call timing count")?;
    for _ in 0..n_ct {
        let call = get_id(&mut r, "call timing call id", store.calls.len())?;
        let run = get_id(&mut r, "call timing run id", store.runs.len())?;
        let ct = CallTiming {
            call: perfdata::CallId(call),
            run: TestRunId(run),
            min_count: r.get_f64("min_count")?,
            max_count: r.get_f64("max_count")?,
            mean_count: r.get_f64("mean_count")?,
            stdev_count: r.get_f64("stdev_count")?,
            min_count_pe: r.get_u32("min_count_pe")?,
            max_count_pe: r.get_u32("max_count_pe")?,
            min_time: r.get_f64("min_time")?,
            max_time: r.get_f64("max_time")?,
            mean_time: r.get_f64("mean_time")?,
            stdev_time: r.get_f64("stdev_time")?,
            min_time_pe: r.get_u32("min_time_pe")?,
            max_time_pe: r.get_u32("max_time_pe")?,
        };
        store.add_call_timing(ct);
    }

    let n_tags = r.get_u32("version tag count")?;
    let mut versions = HashMap::with_capacity(n_tags as usize);
    for _ in 0..n_tags {
        let tag = VersionTag(r.get_u64("version tag")?);
        let vid = get_id(&mut r, "tagged version id", store.versions.len())?;
        versions.insert(tag, VersionId(vid));
    }
    let n_keys = r.get_u32("run key count")?;
    let mut runs = HashMap::with_capacity(n_keys as usize);
    for _ in 0..n_keys {
        let key = RunKey(r.get_u64("run key")?);
        let rid = get_id(&mut r, "keyed run id", store.runs.len())?;
        runs.insert(key, TestRunId(rid));
    }
    if runs.len() != store.runs.len() {
        return Err(SnapshotError::Corrupt(format!(
            "{} run keys for {} runs",
            runs.len(),
            store.runs.len()
        )));
    }
    let n_finished = r.get_u32("finished count")?;
    let mut finished = Vec::with_capacity(n_finished as usize);
    for _ in 0..n_finished {
        finished.push(TestRunId(get_id(
            &mut r,
            "finished run id",
            store.runs.len(),
        )?));
    }
    r.finish()?;

    Ok(SnapshotData {
        builder: StoreBuilder::from_parts(store, versions, runs, events_applied),
        finished,
        events_rejected,
        events_applied,
        wal_epoch,
    })
}

/// Load the snapshot at `path`. `Ok(None)` when the file does not exist
/// (a fresh session); [`SnapshotError::Corrupt`] when it exists but cannot
/// be trusted.
pub fn read_snapshot(path: &Path) -> Result<Option<SnapshotData>, SnapshotError> {
    read_snapshot_with(path, &Faults::none())
}

/// [`read_snapshot`] through a fault seam (recovery under chaos tests).
pub fn read_snapshot_with(
    path: &Path,
    faults: &Faults,
) -> Result<Option<SnapshotData>, SnapshotError> {
    faults.check(FaultOp::SnapshotRead)?;
    let mut file = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(SnapshotError::Io(e)),
    };
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)?;
    if bytes.len() < 13 {
        return Err(SnapshotError::Corrupt(format!(
            "file too short ({} bytes)",
            bytes.len()
        )));
    }
    if &bytes[..4] != SNAPSHOT_MAGIC {
        return Err(SnapshotError::Corrupt("bad magic".into()));
    }
    let version = bytes[4];
    if version != SNAPSHOT_VERSION {
        return Err(SnapshotError::Corrupt(format!(
            "unsupported snapshot version {version}"
        )));
    }
    let len = u32::from_le_bytes(bytes[5..9].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(bytes[9..13].try_into().unwrap());
    let payload = bytes
        .get(13..13 + len)
        .ok_or_else(|| SnapshotError::Corrupt("truncated payload".into()))?;
    if wire::crc32(payload) != crc {
        return Err(SnapshotError::Corrupt("payload checksum mismatch".into()));
    }
    decode_payload(payload).map(Some)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::StoreDelta;
    use crate::event::{RegionDef, RegionRef, TraceEvent};
    use perfdata::RegionKind;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("kojak-snap-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("snapshot.bin")
    }

    fn sample_builder() -> StoreBuilder {
        let mut b = StoreBuilder::new();
        let mut d = StoreDelta::new();
        for (key, no_pe) in [(7u64, 2u32), (9, 8)] {
            b.apply(
                &TraceEvent::RunStarted {
                    run: RunKey(key),
                    version: VersionTag(55),
                    program: "app".into(),
                    compiled_at: DateTime::from_secs(10),
                    source: "program app".into(),
                    start: DateTime::from_secs(20 + key as i64),
                    no_pe,
                    clockspeed: 450,
                },
                &mut d,
            )
            .unwrap();
        }
        b.apply(
            &TraceEvent::RegionEntered {
                run: RunKey(7),
                function: "main".into(),
                region: RegionDef {
                    name: "main".into(),
                    parent: None,
                    kind: RegionKind::Subprogram,
                    first_line: 1,
                    last_line: 90,
                },
            },
            &mut d,
        )
        .unwrap();
        b.apply(
            &TraceEvent::RegionExited {
                run: RunKey(7),
                function: "main".into(),
                region: RegionRef::new("main", 1),
                excl: 1.0,
                incl: 10.0,
                ovhd: 0.5,
            },
            &mut d,
        )
        .unwrap();
        b.apply(
            &TraceEvent::TypedSample {
                run: RunKey(9),
                function: "main".into(),
                region: RegionRef::new("main", 1),
                ty: TimingType::Barrier,
                time: 0.25,
            },
            &mut d,
        )
        .unwrap();
        b
    }

    #[test]
    fn snapshot_roundtrips_builder_state() {
        let path = tmp("roundtrip");
        let builder = sample_builder();
        let finished = vec![TestRunId(1)];
        write_snapshot_bytes(&path, &encode_snapshot(&builder, &finished, 3, 5)).unwrap();
        let data = read_snapshot(&path).unwrap().expect("snapshot present");
        assert_eq!(data.builder.store(), builder.store());
        assert_eq!(data.events_applied, builder.events_applied());
        assert_eq!(data.events_rejected, 3);
        assert_eq!(data.wal_epoch, 5);
        assert_eq!(data.finished, finished);
        // Key maps round-trip.
        let mut orig: Vec<_> = builder.runs().collect();
        let mut back: Vec<_> = data.builder.runs().collect();
        orig.sort();
        back.sort();
        assert_eq!(orig, back);
        assert_eq!(
            data.builder.version_id(VersionTag(55)),
            builder.version_id(VersionTag(55))
        );
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn missing_snapshot_is_none() {
        let path = tmp("missing");
        assert!(read_snapshot(&path.with_file_name("none.bin"))
            .unwrap()
            .is_none());
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn corruption_is_typed_not_a_panic() {
        let path = tmp("corrupt");
        let builder = sample_builder();
        write_snapshot_bytes(&path, &encode_snapshot(&builder, &[], 0, 0)).unwrap();
        let good = std::fs::read(&path).unwrap();

        // Flip one payload byte: checksum catches it.
        let mut bad = good.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x40;
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(
            read_snapshot(&path),
            Err(SnapshotError::Corrupt(_))
        ));

        // Truncate mid-payload.
        std::fs::write(&path, &good[..good.len() / 2]).unwrap();
        assert!(matches!(
            read_snapshot(&path),
            Err(SnapshotError::Corrupt(_))
        ));

        // Bad magic.
        let mut bad = good.clone();
        bad[0] = b'X';
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(
            read_snapshot(&path),
            Err(SnapshotError::Corrupt(_))
        ));

        // Future format version.
        let mut bad = good;
        bad[4] = 9;
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(
            read_snapshot(&path),
            Err(SnapshotError::Corrupt(_))
        ));
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }
}
