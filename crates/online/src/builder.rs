//! Applying trace events to a [`Store`] while tracking what the change
//! invalidates.
//!
//! [`StoreBuilder`] owns the live store plus the name→id interning maps
//! that let events (which carry names and source lines) resolve to arena
//! ids. Every application records its analytical blast radius in a
//! [`StoreDelta`]; the incremental analyzer consumes deltas to re-evaluate
//! only affected property instances.
//!
//! ## Dirtiness rules
//!
//! Derived from the data dependencies of the standard suite (§4.2):
//!
//! * a total/typed timing or call statistic dirties its own
//!   `(run, context)` — every property reads its context's records for the
//!   analyzed run;
//! * a **total** timing for region `r` in run `t` additionally dirties `r`
//!   in *all* runs when `t`'s processor count does not exceed the smallest
//!   among `r`'s other totals — `SublinearSpeedup`/`UnmeasuredCost` compare
//!   every run against the region's min-PE total (`MinPeSum`), so a new or
//!   refined minimum invalidates the comparison everywhere;
//! * a new run whose processor count does not exceed the version's current
//!   minimum dirties the **whole version** — the reference configuration
//!   (and `UNIQUE` min-PE selection) changes for every region;
//! * any timing of the version's ranking-basis region dirties its whole
//!   run — all severities are fractions of `Duration(Basis, t)`. (Detected
//!   by the incremental analyzer, which also watches for basis identity
//!   changes as functions stream in.)

use crate::event::{CallStats, IngestError, RegionRef, RunKey, TraceEvent, VersionTag};
use perfdata::{CallId, CallTiming, FunctionId, RegionId, Store, TestRunId, VersionId};
use std::collections::{HashMap, HashSet};

/// The analytical blast radius of a batch of applied events.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StoreDelta {
    /// Region contexts to re-evaluate, per run.
    pub dirty_regions: HashMap<TestRunId, HashSet<RegionId>>,
    /// Call-site contexts to re-evaluate, per run.
    pub dirty_calls: HashMap<TestRunId, HashSet<CallId>>,
    /// Runs needing a full re-evaluation (new runs, basis changes).
    pub full_runs: HashSet<TestRunId>,
    /// Versions where every run needs a full re-evaluation (reference
    /// configuration changed).
    pub full_versions: HashSet<VersionId>,
    /// Regions dirty in **every** run of their version (min-PE total
    /// changed).
    pub regions_all_runs: HashSet<RegionId>,
    /// Versions whose static structure grew (new function, region or call
    /// site). The incremental analyzer re-checks the ranking-basis identity
    /// of these versions — a newly announced `main` function re-bases every
    /// severity of the version.
    pub touched_versions: HashSet<VersionId>,
    /// Runs for which a `RunFinished` was seen in this delta.
    pub finished_runs: HashSet<TestRunId>,
}

impl StoreDelta {
    /// An empty delta.
    pub fn new() -> Self {
        StoreDelta::default()
    }

    /// True when nothing was invalidated.
    pub fn is_empty(&self) -> bool {
        self.dirty_regions.is_empty()
            && self.dirty_calls.is_empty()
            && self.full_runs.is_empty()
            && self.full_versions.is_empty()
            && self.regions_all_runs.is_empty()
            && self.touched_versions.is_empty()
            && self.finished_runs.is_empty()
    }

    /// Fold `other` into `self`.
    pub fn merge(&mut self, other: StoreDelta) {
        for (run, regions) in other.dirty_regions {
            self.dirty_regions.entry(run).or_default().extend(regions);
        }
        for (run, calls) in other.dirty_calls {
            self.dirty_calls.entry(run).or_default().extend(calls);
        }
        self.full_runs.extend(other.full_runs);
        self.full_versions.extend(other.full_versions);
        self.regions_all_runs.extend(other.regions_all_runs);
        self.touched_versions.extend(other.touched_versions);
        self.finished_runs.extend(other.finished_runs);
    }

    fn dirty_region(&mut self, run: TestRunId, region: RegionId) {
        self.dirty_regions.entry(run).or_default().insert(region);
    }

    fn dirty_call(&mut self, run: TestRunId, call: CallId) {
        self.dirty_calls.entry(run).or_default().insert(call);
    }
}

/// Applies [`TraceEvent`]s to an owned [`Store`], interning structure by
/// name and recording dirtiness deltas.
#[derive(Debug, Default)]
pub struct StoreBuilder {
    store: Store,
    versions: HashMap<VersionTag, VersionId>,
    runs: HashMap<RunKey, TestRunId>,
    run_keys: HashMap<TestRunId, RunKey>,
    run_version: HashMap<TestRunId, VersionId>,
    events_applied: u64,
}

impl StoreBuilder {
    /// A builder over an empty store.
    pub fn new() -> Self {
        StoreBuilder::default()
    }

    /// The live store.
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// Number of events applied so far.
    pub fn events_applied(&self) -> u64 {
        self.events_applied
    }

    /// Resolve a producer run key to its store id.
    pub fn run_id(&self, key: RunKey) -> Option<TestRunId> {
        self.runs.get(&key).copied()
    }

    /// Reverse lookup: the producer key of a store run.
    pub fn run_key_of(&self, run: TestRunId) -> Option<RunKey> {
        self.run_keys.get(&run).copied()
    }

    /// Resolve a version tag to its store id.
    pub fn version_id(&self, tag: VersionTag) -> Option<VersionId> {
        self.versions.get(&tag).copied()
    }

    /// The version a run belongs to.
    pub fn version_of_run(&self, run: TestRunId) -> Option<VersionId> {
        self.run_version.get(&run).copied()
    }

    /// All known (key, store id, version) run triples.
    pub fn runs(&self) -> impl Iterator<Item = (RunKey, TestRunId, VersionId)> + '_ {
        self.runs.iter().map(|(k, r)| (*k, *r, self.run_version[r]))
    }

    /// All known (producer tag, store id) version pairs.
    pub fn version_tags(&self) -> impl Iterator<Item = (VersionTag, VersionId)> + '_ {
        self.versions.iter().map(|(t, v)| (*t, *v))
    }

    /// Rebuild a builder from snapshot parts: the reconstructed store, the
    /// producer key maps, and the lifetime applied-event counter. The
    /// derived maps (reverse run keys, run→version) are recomputed from
    /// the store, so a round-tripped builder is indistinguishable from the
    /// one that was snapshotted.
    pub(crate) fn from_parts(
        store: Store,
        versions: HashMap<VersionTag, VersionId>,
        runs: HashMap<RunKey, TestRunId>,
        events_applied: u64,
    ) -> StoreBuilder {
        let run_keys = runs.iter().map(|(k, r)| (*r, *k)).collect();
        let run_version = runs
            .values()
            .map(|r| (*r, store.runs[r.index()].version))
            .collect();
        StoreBuilder {
            store,
            versions,
            runs,
            run_keys,
            run_version,
            events_applied,
        }
    }

    fn resolve_run(&self, key: RunKey) -> Result<(TestRunId, VersionId), IngestError> {
        let run = self.run_id(key).ok_or(IngestError::UnknownRun(key))?;
        Ok((run, self.run_version[&run]))
    }

    fn resolve_function(
        &self,
        run: RunKey,
        version: VersionId,
        name: &str,
    ) -> Result<FunctionId, IngestError> {
        self.store
            .function_by_name(version, name)
            .ok_or_else(|| IngestError::UnknownFunction {
                run,
                function: name.to_string(),
            })
    }

    fn resolve_region(
        &self,
        run: RunKey,
        function: FunctionId,
        function_name: &str,
        rref: &RegionRef,
    ) -> Result<RegionId, IngestError> {
        self.store
            .region_by_name(function, &rref.name, rref.first_line)
            .ok_or_else(|| IngestError::UnknownRegion {
                run,
                function: function_name.to_string(),
                region: rref.clone(),
            })
    }

    /// Apply a batch with per-event isolation — the shared contract of
    /// every engine's `ingest_batch`: a rejected event is skipped (store
    /// and delta untouched by it), the rest of the batch still applies.
    /// Returns the number of applied events and the *first* rejection
    /// (after the whole batch was attempted).
    pub fn apply_batch(
        &mut self,
        events: &[TraceEvent],
        delta: &mut StoreDelta,
    ) -> (usize, Option<IngestError>) {
        let mut applied = 0usize;
        let mut failure = None;
        for event in events {
            match self.apply(event, delta) {
                Ok(()) => applied += 1,
                Err(e) => {
                    failure.get_or_insert(e);
                }
            }
        }
        (applied, failure)
    }

    /// Apply one event, accumulating its blast radius into `delta`.
    /// Rejected events leave both the store and the delta untouched.
    pub fn apply(&mut self, event: &TraceEvent, delta: &mut StoreDelta) -> Result<(), IngestError> {
        match event {
            TraceEvent::RunStarted {
                run,
                version,
                program,
                compiled_at,
                source,
                start,
                no_pe,
                clockspeed,
            } => {
                if self.runs.contains_key(run) {
                    return Err(IngestError::DuplicateRun(*run));
                }
                let vid = match self.versions.get(version) {
                    Some(v) => *v,
                    None => {
                        let pid = self
                            .store
                            .program_by_name(program)
                            .unwrap_or_else(|| self.store.add_program(program.clone()));
                        let vid = self.store.add_version(pid, *compiled_at, source.clone());
                        self.versions.insert(*version, vid);
                        vid
                    }
                };
                // A run at (or below) the current minimum processor count
                // changes the reference configuration of the version.
                if let Some(min) = self.store.min_pe_of_version(vid) {
                    if *no_pe <= min {
                        delta.full_versions.insert(vid);
                    }
                }
                let rid = self.store.add_run(vid, *start, *no_pe, *clockspeed);
                self.runs.insert(*run, rid);
                self.run_keys.insert(rid, *run);
                self.run_version.insert(rid, vid);
                delta.full_runs.insert(rid);
                delta.touched_versions.insert(vid);
            }

            TraceEvent::RegionEntered {
                run,
                function,
                region,
            } => {
                let (_, vid) = self.resolve_run(*run)?;
                // Validate the parent reference *before* creating anything,
                // so a rejected event leaves no phantom function behind. A
                // parent inside a not-yet-known function cannot exist.
                let existing_fid = self.store.function_by_name(vid, function);
                let parent = match (&region.parent, existing_fid) {
                    (None, _) => None,
                    (Some(p), None) => {
                        return Err(IngestError::UnknownParent {
                            run: *run,
                            function: function.clone(),
                            parent: p.clone(),
                        })
                    }
                    (Some(p), Some(fid)) => {
                        Some(self.resolve_region(*run, fid, function, p).map_err(|_| {
                            IngestError::UnknownParent {
                                run: *run,
                                function: function.clone(),
                                parent: p.clone(),
                            }
                        })?)
                    }
                };
                let fid = match existing_fid {
                    Some(f) => f,
                    None => {
                        delta.touched_versions.insert(vid);
                        self.store.add_function(vid, function.clone())
                    }
                };
                if self
                    .store
                    .region_by_name(fid, &region.name, region.first_line)
                    .is_none()
                {
                    delta.touched_versions.insert(vid);
                    self.store.add_region(
                        fid,
                        parent,
                        region.kind,
                        region.name.clone(),
                        (region.first_line, region.last_line),
                    );
                }
            }

            TraceEvent::RegionExited {
                run,
                function,
                region,
                excl,
                incl,
                ovhd,
            } => {
                let (rid, vid) = self.resolve_run(*run)?;
                let fid = self.resolve_function(*run, vid, function)?;
                let reg = self.resolve_region(*run, fid, function, region)?;
                // Does this total (re)define the region's min-PE record?
                let no_pe = self.store.runs[rid.index()].no_pe;
                let min_other = self.store.regions[reg.index()]
                    .tot_times
                    .iter()
                    .map(|id| {
                        let t = &self.store.total_timings[id.index()];
                        (t.run, self.store.runs[t.run.index()].no_pe)
                    })
                    .filter(|(r, _)| *r != rid)
                    .map(|(_, pe)| pe)
                    .min();
                self.store
                    .upsert_total_timing(reg, rid, *excl, *incl, *ovhd);
                match min_other {
                    Some(min) if no_pe <= min => {
                        delta.regions_all_runs.insert(reg);
                    }
                    _ => {}
                }
                delta.dirty_region(rid, reg);
            }

            TraceEvent::TypedSample {
                run,
                function,
                region,
                ty,
                time,
            } => {
                let (rid, vid) = self.resolve_run(*run)?;
                let fid = self.resolve_function(*run, vid, function)?;
                let reg = self.resolve_region(*run, fid, function, region)?;
                self.store.upsert_typed_timing(reg, rid, *ty, *time);
                delta.dirty_region(rid, reg);
            }

            TraceEvent::CallSiteStat {
                run,
                caller,
                callee,
                site,
                stats,
            } => {
                let (rid, vid) = self.resolve_run(*run)?;
                let caller_id = self.resolve_function(*run, vid, caller)?;
                // Resolve the site before interning the callee, so a
                // rejected event creates no phantom callee function.
                let site_id = self.resolve_region(*run, caller_id, caller, site)?;
                let callee_id = match self.store.function_by_name(vid, callee) {
                    Some(f) => f,
                    // Runtime routines (`barrier`, …) may never announce
                    // regions of their own; introduce them on first call.
                    None => {
                        delta.touched_versions.insert(vid);
                        self.store.add_function(vid, callee.clone())
                    }
                };
                let call = match self.store.call_site(caller_id, callee_id, site_id) {
                    Some(c) => c,
                    // A new call site enlarges the instance universe of
                    // every run of the version (its `skipped` counts), so
                    // the structure growth must be visible to the
                    // analyzer even when the callee already existed.
                    None => {
                        delta.touched_versions.insert(vid);
                        self.store.add_call(caller_id, callee_id, site_id)
                    }
                };
                self.store
                    .upsert_call_timing(to_call_timing(call, rid, stats));
                delta.dirty_call(rid, call);
            }

            TraceEvent::RunFinished { run } => {
                let (rid, _) = self.resolve_run(*run)?;
                delta.finished_runs.insert(rid);
            }
        }
        self.events_applied += 1;
        Ok(())
    }
}

fn to_call_timing(call: CallId, run: TestRunId, s: &CallStats) -> CallTiming {
    CallTiming {
        call,
        run,
        min_count: s.min_count,
        max_count: s.max_count,
        mean_count: s.mean_count,
        stdev_count: s.stdev_count,
        min_count_pe: s.min_count_pe,
        max_count_pe: s.max_count_pe,
        min_time: s.min_time,
        max_time: s.max_time,
        mean_time: s.mean_time,
        stdev_time: s.stdev_time,
        min_time_pe: s.min_time_pe,
        max_time_pe: s.max_time_pe,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfdata::{DateTime, RegionKind, TimingType};

    fn run_started(key: u64, tag: u64, no_pe: u32) -> TraceEvent {
        TraceEvent::RunStarted {
            run: RunKey(key),
            version: VersionTag(tag),
            program: "app".into(),
            compiled_at: DateTime::from_secs(100),
            source: "program app".into(),
            start: DateTime::from_secs(200 + key as i64),
            no_pe,
            clockspeed: 450,
        }
    }

    fn region_entered(key: u64, name: &str, parent: Option<(&str, u32)>, line: u32) -> TraceEvent {
        TraceEvent::RegionEntered {
            run: RunKey(key),
            function: "main".into(),
            region: RegionDef {
                name: name.into(),
                parent: parent.map(|(n, l)| RegionRef::new(n, l)),
                kind: if parent.is_none() {
                    RegionKind::Subprogram
                } else {
                    RegionKind::Loop
                },
                first_line: line,
                last_line: line + 10,
            },
        }
    }
    use crate::event::RegionDef;

    #[test]
    fn run_and_structure_creation() {
        let mut b = StoreBuilder::new();
        let mut d = StoreDelta::new();
        b.apply(&run_started(1, 9, 4), &mut d).unwrap();
        b.apply(&region_entered(1, "main", None, 1), &mut d)
            .unwrap();
        b.apply(
            &region_entered(1, "main:loop@10", Some(("main", 1)), 10),
            &mut d,
        )
        .unwrap();
        assert_eq!(b.store().programs.len(), 1);
        assert_eq!(b.store().regions.len(), 2);
        let rid = b.run_id(RunKey(1)).unwrap();
        assert!(d.full_runs.contains(&rid));
        assert_eq!(b.run_key_of(rid), Some(RunKey(1)));
        // Re-announcing is idempotent.
        b.apply(&region_entered(1, "main", None, 1), &mut d)
            .unwrap();
        assert_eq!(b.store().regions.len(), 2);
    }

    #[test]
    fn unknown_references_are_rejected() {
        let mut b = StoreBuilder::new();
        let mut d = StoreDelta::new();
        let err = b
            .apply(&region_entered(1, "main", None, 1), &mut d)
            .unwrap_err();
        assert_eq!(err, IngestError::UnknownRun(RunKey(1)));
        b.apply(&run_started(1, 9, 4), &mut d).unwrap();
        let err = b.apply(&run_started(1, 9, 4), &mut d).unwrap_err();
        assert_eq!(err, IngestError::DuplicateRun(RunKey(1)));
        let err = b
            .apply(
                &TraceEvent::TypedSample {
                    run: RunKey(1),
                    function: "nope".into(),
                    region: RegionRef::new("r", 1),
                    ty: TimingType::Barrier,
                    time: 0.1,
                },
                &mut d,
            )
            .unwrap_err();
        assert!(matches!(err, IngestError::UnknownFunction { .. }));
    }

    #[test]
    fn rejected_events_leave_no_phantom_structure() {
        let mut b = StoreBuilder::new();
        let mut d = StoreDelta::new();
        b.apply(&run_started(1, 9, 4), &mut d).unwrap();
        let mut d2 = StoreDelta::new();
        // RegionEntered naming a brand-new function but an unknown parent:
        // must reject without creating the function or touching the delta.
        let err = b
            .apply(
                &region_entered(1, "main:loop@9", Some(("main", 1)), 9),
                &mut d2,
            )
            .unwrap_err();
        assert!(matches!(err, IngestError::UnknownParent { .. }));
        assert!(b.store().functions.is_empty());
        assert!(d2.is_empty());
        // CallSiteStat with an unknown site: must not intern the callee.
        b.apply(&region_entered(1, "main", None, 1), &mut d2)
            .unwrap();
        let err = b
            .apply(
                &TraceEvent::CallSiteStat {
                    run: RunKey(1),
                    caller: "main".into(),
                    callee: "barrier".into(),
                    site: RegionRef::new("nope", 77),
                    stats: CallStats {
                        min_count: 0.0,
                        max_count: 0.0,
                        mean_count: 0.0,
                        stdev_count: 0.0,
                        min_count_pe: 0,
                        max_count_pe: 0,
                        min_time: 0.0,
                        max_time: 0.0,
                        mean_time: 0.0,
                        stdev_time: 0.0,
                        min_time_pe: 0,
                        max_time_pe: 0,
                    },
                },
                &mut d2,
            )
            .unwrap_err();
        assert!(matches!(err, IngestError::UnknownRegion { .. }));
        assert!(b
            .store()
            .function_by_name(b.version_id(VersionTag(9)).unwrap(), "barrier")
            .is_none());
    }

    #[test]
    fn smaller_pe_run_dirties_whole_version() {
        let mut b = StoreBuilder::new();
        let mut d = StoreDelta::new();
        b.apply(&run_started(1, 9, 8), &mut d).unwrap();
        assert!(d.full_versions.is_empty());
        b.apply(&run_started(2, 9, 2), &mut d).unwrap();
        let vid = b.version_id(VersionTag(9)).unwrap();
        assert!(d.full_versions.contains(&vid));
        // A larger run does not.
        let mut d2 = StoreDelta::new();
        b.apply(&run_started(3, 9, 16), &mut d2).unwrap();
        assert!(d2.full_versions.is_empty());
    }

    #[test]
    fn min_pe_total_dirties_region_in_all_runs() {
        let mut b = StoreBuilder::new();
        let mut d = StoreDelta::new();
        b.apply(&run_started(1, 9, 2), &mut d).unwrap();
        b.apply(&run_started(2, 9, 8), &mut d).unwrap();
        b.apply(&region_entered(1, "main", None, 1), &mut d)
            .unwrap();
        let exited = |key: u64, incl: f64| TraceEvent::RegionExited {
            run: RunKey(key),
            function: "main".into(),
            region: RegionRef::new("main", 1),
            excl: 1.0,
            incl,
            ovhd: 0.1,
        };
        // First total of the region: no other totals, only locally dirty.
        let mut d1 = StoreDelta::new();
        b.apply(&exited(2, 12.0), &mut d1).unwrap();
        assert!(d1.regions_all_runs.is_empty());
        // A total from the 2-PE run undercuts the 8-PE record: dirty everywhere.
        let mut d2 = StoreDelta::new();
        b.apply(&exited(1, 10.0), &mut d2).unwrap();
        assert_eq!(d2.regions_all_runs.len(), 1);
    }

    #[test]
    fn call_stats_create_callee_and_site() {
        let mut b = StoreBuilder::new();
        let mut d = StoreDelta::new();
        b.apply(&run_started(1, 9, 4), &mut d).unwrap();
        b.apply(&region_entered(1, "main", None, 1), &mut d)
            .unwrap();
        let stat = TraceEvent::CallSiteStat {
            run: RunKey(1),
            caller: "main".into(),
            callee: "barrier".into(),
            site: RegionRef::new("main", 1),
            stats: CallStats {
                min_count: 1.0,
                max_count: 1.0,
                mean_count: 1.0,
                stdev_count: 0.0,
                min_count_pe: 0,
                max_count_pe: 0,
                min_time: 0.1,
                max_time: 0.3,
                mean_time: 0.2,
                stdev_time: 0.1,
                min_time_pe: 0,
                max_time_pe: 3,
            },
        };
        b.apply(&stat, &mut d).unwrap();
        assert_eq!(b.store().functions.len(), 2);
        assert_eq!(b.store().calls.len(), 1);
        assert_eq!(b.store().call_timings.len(), 1);
        // Re-applying updates in place.
        b.apply(&stat, &mut d).unwrap();
        assert_eq!(b.store().call_timings.len(), 1);
        let rid = b.run_id(RunKey(1)).unwrap();
        assert_eq!(d.dirty_calls[&rid].len(), 1);
    }

    #[test]
    fn delta_merge_accumulates() {
        let mut a = StoreDelta::new();
        let mut b = StoreDelta::new();
        a.dirty_region(TestRunId(0), RegionId(1));
        b.dirty_region(TestRunId(0), RegionId(2));
        b.full_runs.insert(TestRunId(3));
        a.merge(b);
        assert_eq!(a.dirty_regions[&TestRunId(0)].len(), 2);
        assert!(a.full_runs.contains(&TestRunId(3)));
        assert!(!a.is_empty());
        assert!(StoreDelta::new().is_empty());
    }
}
