//! The streaming trace-event model.
//!
//! A measurement producer (an instrumented run, or a monitoring daemon
//! forwarding Apprentice summaries) emits a stream of [`TraceEvent`]s. The
//! model is *self-describing*: static structure (functions, regions, call
//! sites) is introduced by the events that first mention it, keyed by
//! stable names and source lines rather than database ids, so independent
//! producers never need to coordinate id allocation. Only two producer-side
//! identifiers exist: a [`RunKey`] unique per test run and a [`VersionTag`]
//! unique per program build, both plain `u64`s minted by the producer.

use crate::wire::{self, Reader, WireError};
use perfdata::{DateTime, RegionKind, TimingType};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Version byte leading every wire-encoded event. Bump on any layout
/// change; decoders reject unknown versions with a typed error instead of
/// misreading bytes (the WAL and snapshot formats both embed it).
pub const WIRE_VERSION: u8 = 1;

/// Producer-assigned identifier of one test run, unique within a session.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct RunKey(pub u64);

impl fmt::Display for RunKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "runkey{}", self.0)
    }
}

/// Producer-assigned identifier of one program build (version), unique
/// within a session. Two runs of the same build share a tag.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct VersionTag(pub u64);

impl fmt::Display for VersionTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vtag{}", self.0)
    }
}

/// Stable identity of a region inside its function: name + first source
/// line (names alone may repeat between loop nests).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RegionRef {
    /// Region name (e.g. `solver:loop@12`).
    pub name: String,
    /// First source line.
    pub first_line: u32,
}

impl RegionRef {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, first_line: u32) -> Self {
        RegionRef {
            name: name.into(),
            first_line,
        }
    }
}

/// Full definition of a region, carried by [`TraceEvent::RegionEntered`]
/// the first time the region is observed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegionDef {
    /// Region name.
    pub name: String,
    /// Enclosing region, `None` for the subprogram root. Must refer to a
    /// region already introduced for the same function (streams describe
    /// structure top-down).
    pub parent: Option<RegionRef>,
    /// Construct kind.
    pub kind: RegionKind,
    /// First source line.
    pub first_line: u32,
    /// Last source line.
    pub last_line: u32,
}

/// Across-process statistics of one call site in one run — the streaming
/// form of [`perfdata::CallTiming`] without database ids.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CallStats {
    /// Minimum pass count over processes.
    pub min_count: f64,
    /// Maximum pass count over processes.
    pub max_count: f64,
    /// Mean pass count over processes.
    pub mean_count: f64,
    /// Standard deviation of the pass count.
    pub stdev_count: f64,
    /// Processor with the minimum pass count.
    pub min_count_pe: u32,
    /// Processor with the maximum pass count.
    pub max_count_pe: u32,
    /// Minimum time spent in the callee (seconds).
    pub min_time: f64,
    /// Maximum time spent in the callee.
    pub max_time: f64,
    /// Mean time spent in the callee.
    pub mean_time: f64,
    /// Standard deviation of the time spent.
    pub stdev_time: f64,
    /// Processor with the minimum time.
    pub min_time_pe: u32,
    /// Processor with the maximum time.
    pub max_time_pe: u32,
}

/// One event of a measurement stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A test run began. Introduces the run, and — on first sight of the
    /// version tag — the program version itself.
    RunStarted {
        /// Producer id of the run.
        run: RunKey,
        /// Producer id of the build.
        version: VersionTag,
        /// Application name.
        program: String,
        /// Compilation timestamp of the build.
        compiled_at: DateTime,
        /// Source text (or structural sketch) of the build; only consulted
        /// the first time the version tag is seen.
        source: String,
        /// Run start timestamp.
        start: DateTime,
        /// Processor count of the run.
        no_pe: u32,
        /// Clock speed in MHz.
        clockspeed: u32,
    },
    /// A region was entered for the first time in a run: carries the
    /// region definition. Idempotent — re-announcing a known region is a
    /// no-op, so every run can (and should) describe its full structure.
    RegionEntered {
        /// The announcing run.
        run: RunKey,
        /// Containing function name.
        function: String,
        /// The region definition.
        region: RegionDef,
    },
    /// A region's summed-over-processes timing totals, emitted when the
    /// region completed (or as a running refinement: later events for the
    /// same region overwrite earlier totals).
    RegionExited {
        /// The measured run.
        run: RunKey,
        /// Containing function name.
        function: String,
        /// Which region.
        region: RegionRef,
        /// Exclusive computing time (seconds, summed over processes).
        excl: f64,
        /// Inclusive computing time.
        incl: f64,
        /// Measured overhead (inclusive of the subtree).
        ovhd: f64,
    },
    /// Time spent in one overhead category by a region (summed over
    /// processes). Later samples for the same (region, type) overwrite.
    TypedSample {
        /// The measured run.
        run: RunKey,
        /// Containing function name.
        function: String,
        /// Which region.
        region: RegionRef,
        /// Overhead category.
        ty: TimingType,
        /// Seconds, summed over all processes.
        time: f64,
    },
    /// Call-site statistics for one run. Introduces the call site (and the
    /// callee function) on first sight.
    CallSiteStat {
        /// The measured run.
        run: RunKey,
        /// Calling function name.
        caller: String,
        /// Called function name (e.g. the `barrier` runtime routine).
        callee: String,
        /// Region containing the call site.
        site: RegionRef,
        /// The statistics.
        stats: CallStats,
    },
    /// The run completed; its report can be finalized.
    RunFinished {
        /// The finished run.
        run: RunKey,
    },
}

impl TraceEvent {
    /// The run this event belongs to — the sharding key of the ingestion
    /// pipeline.
    pub fn run_key(&self) -> RunKey {
        match self {
            TraceEvent::RunStarted { run, .. }
            | TraceEvent::RegionEntered { run, .. }
            | TraceEvent::RegionExited { run, .. }
            | TraceEvent::TypedSample { run, .. }
            | TraceEvent::CallSiteStat { run, .. }
            | TraceEvent::RunFinished { run } => *run,
        }
    }

    /// The same event re-addressed to another run (producer-side retry and
    /// replay tooling).
    pub fn with_run(mut self, key: RunKey) -> TraceEvent {
        match &mut self {
            TraceEvent::RunStarted { run, .. }
            | TraceEvent::RegionEntered { run, .. }
            | TraceEvent::RegionExited { run, .. }
            | TraceEvent::TypedSample { run, .. }
            | TraceEvent::CallSiteStat { run, .. }
            | TraceEvent::RunFinished { run } => *run = key,
        }
        self
    }

    /// Append the stable wire encoding of this event to `buf`: a
    /// [`WIRE_VERSION`] byte, a variant tag, then the fields in declaration
    /// order (little-endian integers, `f64` bit patterns, length-prefixed
    /// UTF-8 strings — see [`crate::wire`]).
    pub fn encode_wire(&self, buf: &mut Vec<u8>) {
        wire::put_u8(buf, WIRE_VERSION);
        match self {
            TraceEvent::RunStarted {
                run,
                version,
                program,
                compiled_at,
                source,
                start,
                no_pe,
                clockspeed,
            } => {
                wire::put_u8(buf, 0);
                wire::put_u64(buf, run.0);
                wire::put_u64(buf, version.0);
                wire::put_str(buf, program);
                wire::put_i64(buf, compiled_at.micros());
                wire::put_str(buf, source);
                wire::put_i64(buf, start.micros());
                wire::put_u32(buf, *no_pe);
                wire::put_u32(buf, *clockspeed);
            }
            TraceEvent::RegionEntered {
                run,
                function,
                region,
            } => {
                wire::put_u8(buf, 1);
                wire::put_u64(buf, run.0);
                wire::put_str(buf, function);
                wire::put_str(buf, &region.name);
                match &region.parent {
                    None => wire::put_u8(buf, 0),
                    Some(p) => {
                        wire::put_u8(buf, 1);
                        wire::put_str(buf, &p.name);
                        wire::put_u32(buf, p.first_line);
                    }
                }
                wire::put_u8(buf, wire::region_kind_code(region.kind));
                wire::put_u32(buf, region.first_line);
                wire::put_u32(buf, region.last_line);
            }
            TraceEvent::RegionExited {
                run,
                function,
                region,
                excl,
                incl,
                ovhd,
            } => {
                wire::put_u8(buf, 2);
                wire::put_u64(buf, run.0);
                wire::put_str(buf, function);
                wire::put_str(buf, &region.name);
                wire::put_u32(buf, region.first_line);
                wire::put_f64(buf, *excl);
                wire::put_f64(buf, *incl);
                wire::put_f64(buf, *ovhd);
            }
            TraceEvent::TypedSample {
                run,
                function,
                region,
                ty,
                time,
            } => {
                wire::put_u8(buf, 3);
                wire::put_u64(buf, run.0);
                wire::put_str(buf, function);
                wire::put_str(buf, &region.name);
                wire::put_u32(buf, region.first_line);
                wire::put_u8(buf, ty.code());
                wire::put_f64(buf, *time);
            }
            TraceEvent::CallSiteStat {
                run,
                caller,
                callee,
                site,
                stats,
            } => {
                wire::put_u8(buf, 4);
                wire::put_u64(buf, run.0);
                wire::put_str(buf, caller);
                wire::put_str(buf, callee);
                wire::put_str(buf, &site.name);
                wire::put_u32(buf, site.first_line);
                wire::put_f64(buf, stats.min_count);
                wire::put_f64(buf, stats.max_count);
                wire::put_f64(buf, stats.mean_count);
                wire::put_f64(buf, stats.stdev_count);
                wire::put_u32(buf, stats.min_count_pe);
                wire::put_u32(buf, stats.max_count_pe);
                wire::put_f64(buf, stats.min_time);
                wire::put_f64(buf, stats.max_time);
                wire::put_f64(buf, stats.mean_time);
                wire::put_f64(buf, stats.stdev_time);
                wire::put_u32(buf, stats.min_time_pe);
                wire::put_u32(buf, stats.max_time_pe);
            }
            TraceEvent::RunFinished { run } => {
                wire::put_u8(buf, 5);
                wire::put_u64(buf, run.0);
            }
        }
    }

    /// Decode one event from its wire encoding. The whole of `bytes` must
    /// be consumed; partial or trailing input is a [`WireError`].
    pub fn decode_wire(bytes: &[u8]) -> Result<TraceEvent, WireError> {
        let mut r = Reader::new(bytes);
        let version = r.get_u8("wire version")?;
        if version != WIRE_VERSION {
            return Err(WireError::UnsupportedVersion(version));
        }
        let tag = r.get_u8("event tag")?;
        let event = match tag {
            0 => TraceEvent::RunStarted {
                run: RunKey(r.get_u64("run key")?),
                version: VersionTag(r.get_u64("version tag")?),
                program: r.get_str("program")?,
                compiled_at: DateTime(r.get_i64("compiled_at")?),
                source: r.get_str("source")?,
                start: DateTime(r.get_i64("start")?),
                no_pe: r.get_u32("no_pe")?,
                clockspeed: r.get_u32("clockspeed")?,
            },
            1 => {
                let run = RunKey(r.get_u64("run key")?);
                let function = r.get_str("function")?;
                let name = r.get_str("region name")?;
                let parent = match r.get_u8("parent flag")? {
                    0 => None,
                    1 => Some(RegionRef {
                        name: r.get_str("parent name")?,
                        first_line: r.get_u32("parent line")?,
                    }),
                    code => {
                        return Err(WireError::BadEnum {
                            what: "parent flag",
                            code,
                        })
                    }
                };
                let kind_code = r.get_u8("region kind")?;
                let kind = wire::region_kind_from_code(kind_code).ok_or(WireError::BadEnum {
                    what: "region kind",
                    code: kind_code,
                })?;
                TraceEvent::RegionEntered {
                    run,
                    function,
                    region: RegionDef {
                        name,
                        parent,
                        kind,
                        first_line: r.get_u32("first_line")?,
                        last_line: r.get_u32("last_line")?,
                    },
                }
            }
            2 => TraceEvent::RegionExited {
                run: RunKey(r.get_u64("run key")?),
                function: r.get_str("function")?,
                region: RegionRef {
                    name: r.get_str("region name")?,
                    first_line: r.get_u32("region line")?,
                },
                excl: r.get_f64("excl")?,
                incl: r.get_f64("incl")?,
                ovhd: r.get_f64("ovhd")?,
            },
            3 => {
                let run = RunKey(r.get_u64("run key")?);
                let function = r.get_str("function")?;
                let region = RegionRef {
                    name: r.get_str("region name")?,
                    first_line: r.get_u32("region line")?,
                };
                let ty_code = r.get_u8("timing type")?;
                let ty = TimingType::from_code(ty_code).ok_or(WireError::BadEnum {
                    what: "timing type",
                    code: ty_code,
                })?;
                TraceEvent::TypedSample {
                    run,
                    function,
                    region,
                    ty,
                    time: r.get_f64("time")?,
                }
            }
            4 => TraceEvent::CallSiteStat {
                run: RunKey(r.get_u64("run key")?),
                caller: r.get_str("caller")?,
                callee: r.get_str("callee")?,
                site: RegionRef {
                    name: r.get_str("site name")?,
                    first_line: r.get_u32("site line")?,
                },
                stats: CallStats {
                    min_count: r.get_f64("min_count")?,
                    max_count: r.get_f64("max_count")?,
                    mean_count: r.get_f64("mean_count")?,
                    stdev_count: r.get_f64("stdev_count")?,
                    min_count_pe: r.get_u32("min_count_pe")?,
                    max_count_pe: r.get_u32("max_count_pe")?,
                    min_time: r.get_f64("min_time")?,
                    max_time: r.get_f64("max_time")?,
                    mean_time: r.get_f64("mean_time")?,
                    stdev_time: r.get_f64("stdev_time")?,
                    min_time_pe: r.get_u32("min_time_pe")?,
                    max_time_pe: r.get_u32("max_time_pe")?,
                },
            },
            5 => TraceEvent::RunFinished {
                run: RunKey(r.get_u64("run key")?),
            },
            code => {
                return Err(WireError::BadEnum {
                    what: "event tag",
                    code,
                })
            }
        };
        r.finish()?;
        Ok(event)
    }

    /// Short event-kind name for diagnostics.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::RunStarted { .. } => "run-started",
            TraceEvent::RegionEntered { .. } => "region-entered",
            TraceEvent::RegionExited { .. } => "region-exited",
            TraceEvent::TypedSample { .. } => "typed-sample",
            TraceEvent::CallSiteStat { .. } => "call-site-stat",
            TraceEvent::RunFinished { .. } => "run-finished",
        }
    }
}

/// An ingestion failure. Events referring to structure that was never
/// announced are rejected rather than guessed at.
#[derive(Debug, Clone, PartialEq)]
pub enum IngestError {
    /// An event referenced a run with no preceding `RunStarted`.
    UnknownRun(RunKey),
    /// A run key was reused by a second `RunStarted`.
    DuplicateRun(RunKey),
    /// An event referenced a function never introduced for its version.
    UnknownFunction {
        /// The offending run.
        run: RunKey,
        /// The unresolved function name.
        function: String,
    },
    /// An event referenced a region never introduced.
    UnknownRegion {
        /// The offending run.
        run: RunKey,
        /// Containing function name.
        function: String,
        /// The unresolved region reference.
        region: RegionRef,
    },
    /// A `RegionEntered` referenced an unknown parent region.
    UnknownParent {
        /// The offending run.
        run: RunKey,
        /// Containing function name.
        function: String,
        /// The unresolved parent reference.
        parent: RegionRef,
    },
    /// The ingestion pipeline is shut down.
    Closed,
    /// The durable session could not append to its write-ahead log (the
    /// event was **not** applied: write-ahead means no event reaches the
    /// store unless it is on disk first — and on this error, no frame of
    /// the batch remains in the log either, so a retry cannot
    /// double-log).
    Wal {
        /// The WAL operation that failed (append, the fsync riding on
        /// it, or the repair of an earlier torn append).
        op: crate::wal::WalOp,
        /// The OS error category ([`std::io::ErrorKind`] — the error
        /// itself is not `Clone`, its classification is).
        kind: std::io::ErrorKind,
        /// Rendered description of the underlying error.
        detail: String,
    },
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::UnknownRun(k) => write!(f, "unknown run {k}"),
            IngestError::DuplicateRun(k) => write!(f, "duplicate RunStarted for {k}"),
            IngestError::UnknownFunction { run, function } => {
                write!(f, "unknown function `{function}` in {run}")
            }
            IngestError::UnknownRegion {
                run,
                function,
                region,
            } => write!(
                f,
                "unknown region `{}`@{} of `{function}` in {run}",
                region.name, region.first_line
            ),
            IngestError::UnknownParent {
                run,
                function,
                parent,
            } => write!(
                f,
                "unknown parent region `{}`@{} of `{function}` in {run}",
                parent.name, parent.first_line
            ),
            IngestError::Closed => write!(f, "ingestion pipeline is closed"),
            IngestError::Wal { op, kind, detail } => {
                write!(f, "write-ahead log {op} failed ({kind:?}): {detail}")
            }
        }
    }
}

impl std::error::Error for IngestError {}

impl From<crate::wal::WalIoError> for IngestError {
    fn from(e: crate::wal::WalIoError) -> Self {
        IngestError::Wal {
            op: e.op,
            kind: e.source.kind(),
            detail: e.source.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_key_extraction_covers_all_variants() {
        let k = RunKey(7);
        let events = [
            TraceEvent::RunStarted {
                run: k,
                version: VersionTag(1),
                program: "x".into(),
                compiled_at: DateTime::from_secs(0),
                source: String::new(),
                start: DateTime::from_secs(1),
                no_pe: 4,
                clockspeed: 450,
            },
            TraceEvent::RunFinished { run: k },
            TraceEvent::TypedSample {
                run: k,
                function: "main".into(),
                region: RegionRef::new("main", 1),
                ty: TimingType::Barrier,
                time: 0.5,
            },
        ];
        for e in &events {
            assert_eq!(e.run_key(), k, "{}", e.kind());
        }
    }

    #[test]
    fn wire_roundtrip_covers_all_variants() {
        let events = [
            TraceEvent::RunStarted {
                run: RunKey(u64::MAX),
                version: VersionTag(3),
                program: "app".into(),
                compiled_at: DateTime::from_secs(-7),
                source: "program app\n".into(),
                start: DateTime::from_secs(99),
                no_pe: 64,
                clockspeed: 450,
            },
            TraceEvent::RegionEntered {
                run: RunKey(1),
                function: "main".into(),
                region: RegionDef {
                    name: "main:loop@5".into(),
                    parent: Some(RegionRef::new("main", 1)),
                    kind: RegionKind::Loop,
                    first_line: 5,
                    last_line: 50,
                },
            },
            TraceEvent::RegionEntered {
                run: RunKey(1),
                function: "main".into(),
                region: RegionDef {
                    name: "main".into(),
                    parent: None,
                    kind: RegionKind::Subprogram,
                    first_line: 1,
                    last_line: 90,
                },
            },
            TraceEvent::RegionExited {
                run: RunKey(2),
                function: "main".into(),
                region: RegionRef::new("main", 1),
                excl: -0.0,
                incl: 1.5e-300,
                ovhd: f64::INFINITY,
            },
            TraceEvent::TypedSample {
                run: RunKey(2),
                function: "main".into(),
                region: RegionRef::new("main", 1),
                ty: TimingType::Instrumentation,
                time: 0.25,
            },
            TraceEvent::CallSiteStat {
                run: RunKey(2),
                caller: "main".into(),
                callee: "barrier".into(),
                site: RegionRef::new("main", 1),
                stats: CallStats {
                    min_count: 1.0,
                    max_count: 2.0,
                    mean_count: 1.5,
                    stdev_count: 0.5,
                    min_count_pe: 0,
                    max_count_pe: 3,
                    min_time: 0.1,
                    max_time: 0.4,
                    mean_time: 0.2,
                    stdev_time: 0.1,
                    min_time_pe: 1,
                    max_time_pe: 2,
                },
            },
            TraceEvent::RunFinished { run: RunKey(2) },
        ];
        for event in &events {
            let mut buf = Vec::new();
            event.encode_wire(&mut buf);
            let back =
                TraceEvent::decode_wire(&buf).unwrap_or_else(|e| panic!("{}: {e}", event.kind()));
            assert_eq!(&back, event, "{}", event.kind());
        }
    }

    #[test]
    fn wire_decode_rejects_bad_input() {
        use crate::wire::WireError;
        let mut buf = Vec::new();
        TraceEvent::RunFinished { run: RunKey(9) }.encode_wire(&mut buf);
        // Unknown version byte.
        let mut bad = buf.clone();
        bad[0] = 99;
        assert_eq!(
            TraceEvent::decode_wire(&bad),
            Err(WireError::UnsupportedVersion(99))
        );
        // Unknown variant tag.
        let mut bad = buf.clone();
        bad[1] = 200;
        assert!(matches!(
            TraceEvent::decode_wire(&bad),
            Err(WireError::BadEnum {
                what: "event tag",
                ..
            })
        ));
        // Truncated payload.
        assert!(matches!(
            TraceEvent::decode_wire(&buf[..buf.len() - 1]),
            Err(WireError::UnexpectedEof { .. })
        ));
        // Trailing garbage.
        let mut bad = buf.clone();
        bad.push(0);
        assert!(matches!(
            TraceEvent::decode_wire(&bad),
            Err(WireError::TrailingBytes { remaining: 1 })
        ));
    }

    #[test]
    fn errors_render() {
        let e = IngestError::UnknownRegion {
            run: RunKey(3),
            function: "main".into(),
            region: RegionRef::new("loop", 10),
        };
        assert!(e.to_string().contains("loop"));
        assert!(e.to_string().contains("runkey3"));
    }
}
