//! The streaming trace-event model.
//!
//! A measurement producer (an instrumented run, or a monitoring daemon
//! forwarding Apprentice summaries) emits a stream of [`TraceEvent`]s. The
//! model is *self-describing*: static structure (functions, regions, call
//! sites) is introduced by the events that first mention it, keyed by
//! stable names and source lines rather than database ids, so independent
//! producers never need to coordinate id allocation. Only two producer-side
//! identifiers exist: a [`RunKey`] unique per test run and a [`VersionTag`]
//! unique per program build, both plain `u64`s minted by the producer.

use perfdata::{DateTime, RegionKind, TimingType};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Producer-assigned identifier of one test run, unique within a session.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct RunKey(pub u64);

impl fmt::Display for RunKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "runkey{}", self.0)
    }
}

/// Producer-assigned identifier of one program build (version), unique
/// within a session. Two runs of the same build share a tag.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct VersionTag(pub u64);

impl fmt::Display for VersionTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vtag{}", self.0)
    }
}

/// Stable identity of a region inside its function: name + first source
/// line (names alone may repeat between loop nests).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RegionRef {
    /// Region name (e.g. `solver:loop@12`).
    pub name: String,
    /// First source line.
    pub first_line: u32,
}

impl RegionRef {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, first_line: u32) -> Self {
        RegionRef {
            name: name.into(),
            first_line,
        }
    }
}

/// Full definition of a region, carried by [`TraceEvent::RegionEntered`]
/// the first time the region is observed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegionDef {
    /// Region name.
    pub name: String,
    /// Enclosing region, `None` for the subprogram root. Must refer to a
    /// region already introduced for the same function (streams describe
    /// structure top-down).
    pub parent: Option<RegionRef>,
    /// Construct kind.
    pub kind: RegionKind,
    /// First source line.
    pub first_line: u32,
    /// Last source line.
    pub last_line: u32,
}

/// Across-process statistics of one call site in one run — the streaming
/// form of [`perfdata::CallTiming`] without database ids.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CallStats {
    /// Minimum pass count over processes.
    pub min_count: f64,
    /// Maximum pass count over processes.
    pub max_count: f64,
    /// Mean pass count over processes.
    pub mean_count: f64,
    /// Standard deviation of the pass count.
    pub stdev_count: f64,
    /// Processor with the minimum pass count.
    pub min_count_pe: u32,
    /// Processor with the maximum pass count.
    pub max_count_pe: u32,
    /// Minimum time spent in the callee (seconds).
    pub min_time: f64,
    /// Maximum time spent in the callee.
    pub max_time: f64,
    /// Mean time spent in the callee.
    pub mean_time: f64,
    /// Standard deviation of the time spent.
    pub stdev_time: f64,
    /// Processor with the minimum time.
    pub min_time_pe: u32,
    /// Processor with the maximum time.
    pub max_time_pe: u32,
}

/// One event of a measurement stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A test run began. Introduces the run, and — on first sight of the
    /// version tag — the program version itself.
    RunStarted {
        /// Producer id of the run.
        run: RunKey,
        /// Producer id of the build.
        version: VersionTag,
        /// Application name.
        program: String,
        /// Compilation timestamp of the build.
        compiled_at: DateTime,
        /// Source text (or structural sketch) of the build; only consulted
        /// the first time the version tag is seen.
        source: String,
        /// Run start timestamp.
        start: DateTime,
        /// Processor count of the run.
        no_pe: u32,
        /// Clock speed in MHz.
        clockspeed: u32,
    },
    /// A region was entered for the first time in a run: carries the
    /// region definition. Idempotent — re-announcing a known region is a
    /// no-op, so every run can (and should) describe its full structure.
    RegionEntered {
        /// The announcing run.
        run: RunKey,
        /// Containing function name.
        function: String,
        /// The region definition.
        region: RegionDef,
    },
    /// A region's summed-over-processes timing totals, emitted when the
    /// region completed (or as a running refinement: later events for the
    /// same region overwrite earlier totals).
    RegionExited {
        /// The measured run.
        run: RunKey,
        /// Containing function name.
        function: String,
        /// Which region.
        region: RegionRef,
        /// Exclusive computing time (seconds, summed over processes).
        excl: f64,
        /// Inclusive computing time.
        incl: f64,
        /// Measured overhead (inclusive of the subtree).
        ovhd: f64,
    },
    /// Time spent in one overhead category by a region (summed over
    /// processes). Later samples for the same (region, type) overwrite.
    TypedSample {
        /// The measured run.
        run: RunKey,
        /// Containing function name.
        function: String,
        /// Which region.
        region: RegionRef,
        /// Overhead category.
        ty: TimingType,
        /// Seconds, summed over all processes.
        time: f64,
    },
    /// Call-site statistics for one run. Introduces the call site (and the
    /// callee function) on first sight.
    CallSiteStat {
        /// The measured run.
        run: RunKey,
        /// Calling function name.
        caller: String,
        /// Called function name (e.g. the `barrier` runtime routine).
        callee: String,
        /// Region containing the call site.
        site: RegionRef,
        /// The statistics.
        stats: CallStats,
    },
    /// The run completed; its report can be finalized.
    RunFinished {
        /// The finished run.
        run: RunKey,
    },
}

impl TraceEvent {
    /// The run this event belongs to — the sharding key of the ingestion
    /// pipeline.
    pub fn run_key(&self) -> RunKey {
        match self {
            TraceEvent::RunStarted { run, .. }
            | TraceEvent::RegionEntered { run, .. }
            | TraceEvent::RegionExited { run, .. }
            | TraceEvent::TypedSample { run, .. }
            | TraceEvent::CallSiteStat { run, .. }
            | TraceEvent::RunFinished { run } => *run,
        }
    }

    /// The same event re-addressed to another run (producer-side retry and
    /// replay tooling).
    pub fn with_run(mut self, key: RunKey) -> TraceEvent {
        match &mut self {
            TraceEvent::RunStarted { run, .. }
            | TraceEvent::RegionEntered { run, .. }
            | TraceEvent::RegionExited { run, .. }
            | TraceEvent::TypedSample { run, .. }
            | TraceEvent::CallSiteStat { run, .. }
            | TraceEvent::RunFinished { run } => *run = key,
        }
        self
    }

    /// Short event-kind name for diagnostics.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::RunStarted { .. } => "run-started",
            TraceEvent::RegionEntered { .. } => "region-entered",
            TraceEvent::RegionExited { .. } => "region-exited",
            TraceEvent::TypedSample { .. } => "typed-sample",
            TraceEvent::CallSiteStat { .. } => "call-site-stat",
            TraceEvent::RunFinished { .. } => "run-finished",
        }
    }
}

/// An ingestion failure. Events referring to structure that was never
/// announced are rejected rather than guessed at.
#[derive(Debug, Clone, PartialEq)]
pub enum IngestError {
    /// An event referenced a run with no preceding `RunStarted`.
    UnknownRun(RunKey),
    /// A run key was reused by a second `RunStarted`.
    DuplicateRun(RunKey),
    /// An event referenced a function never introduced for its version.
    UnknownFunction {
        /// The offending run.
        run: RunKey,
        /// The unresolved function name.
        function: String,
    },
    /// An event referenced a region never introduced.
    UnknownRegion {
        /// The offending run.
        run: RunKey,
        /// Containing function name.
        function: String,
        /// The unresolved region reference.
        region: RegionRef,
    },
    /// A `RegionEntered` referenced an unknown parent region.
    UnknownParent {
        /// The offending run.
        run: RunKey,
        /// Containing function name.
        function: String,
        /// The unresolved parent reference.
        parent: RegionRef,
    },
    /// The ingestion pipeline is shut down.
    Closed,
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::UnknownRun(k) => write!(f, "unknown run {k}"),
            IngestError::DuplicateRun(k) => write!(f, "duplicate RunStarted for {k}"),
            IngestError::UnknownFunction { run, function } => {
                write!(f, "unknown function `{function}` in {run}")
            }
            IngestError::UnknownRegion {
                run,
                function,
                region,
            } => write!(
                f,
                "unknown region `{}`@{} of `{function}` in {run}",
                region.name, region.first_line
            ),
            IngestError::UnknownParent {
                run,
                function,
                parent,
            } => write!(
                f,
                "unknown parent region `{}`@{} of `{function}` in {run}",
                parent.name, parent.first_line
            ),
            IngestError::Closed => write!(f, "ingestion pipeline is closed"),
        }
    }
}

impl std::error::Error for IngestError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_key_extraction_covers_all_variants() {
        let k = RunKey(7);
        let events = [
            TraceEvent::RunStarted {
                run: k,
                version: VersionTag(1),
                program: "x".into(),
                compiled_at: DateTime::from_secs(0),
                source: String::new(),
                start: DateTime::from_secs(1),
                no_pe: 4,
                clockspeed: 450,
            },
            TraceEvent::RunFinished { run: k },
            TraceEvent::TypedSample {
                run: k,
                function: "main".into(),
                region: RegionRef::new("main", 1),
                ty: TimingType::Barrier,
                time: 0.5,
            },
        ];
        for e in &events {
            assert_eq!(e.run_key(), k, "{}", e.kind());
        }
    }

    #[test]
    fn errors_render() {
        let e = IngestError::UnknownRegion {
            run: RunKey(3),
            function: "main".into(),
            region: RegionRef::new("loop", 10),
        };
        assert!(e.to_string().contains("loop"));
        assert!(e.to_string().contains("runkey3"));
    }
}
