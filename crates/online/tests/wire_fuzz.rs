//! Decode hardening: the wire codec now sits behind a network socket
//! (`kojak-net`), so [`TraceEvent::decode_wire`] is fed attacker-ish
//! bytes, not just our own WAL frames. Arbitrary input, truncations,
//! mutations, and hostile length prefixes must all come back as a typed
//! [`WireError`] — never a panic, never an over-read — and every valid
//! encoding must re-encode byte-identically (checksums over re-encoded
//! frames are stable), `f64` NaN/−0.0 bit patterns included.

use online::wal::{self, FsyncPolicy, WalWriter};
use online::wire::{self, Reader, WireError};
use online::{CallStats, RegionDef, RegionRef, RunKey, TraceEvent, VersionTag};
use perfdata::{DateTime, RegionKind, TimingType};
use proptest::prelude::*;

/// A deterministic pseudo-random event, with floats drawn straight from
/// raw bit patterns so NaNs, infinities, −0.0 and subnormals all occur.
fn event_from(variant: u8, a: u64, b: u64, line: u32, s: &str) -> TraceEvent {
    let f = f64::from_bits(b);
    match variant % 6 {
        0 => TraceEvent::RunStarted {
            run: RunKey(a),
            version: VersionTag(a ^ b),
            program: s.to_string(),
            compiled_at: DateTime(b as i64),
            source: format!("program {s}\n"),
            start: DateTime(a as i64),
            no_pe: line,
            clockspeed: 450,
        },
        1 => TraceEvent::RegionEntered {
            run: RunKey(a),
            function: s.to_string(),
            region: RegionDef {
                name: format!("{s}:loop@{line}"),
                parent: if b.is_multiple_of(2) {
                    None
                } else {
                    Some(RegionRef::new(s, line))
                },
                kind: match b % 5 {
                    0 => RegionKind::Subprogram,
                    1 => RegionKind::Loop,
                    2 => RegionKind::IfBlock,
                    3 => RegionKind::CallSite,
                    _ => RegionKind::BasicBlock,
                },
                first_line: line,
                last_line: line + 10,
            },
        },
        2 => TraceEvent::RegionExited {
            run: RunKey(a),
            function: s.to_string(),
            region: RegionRef::new(s, line),
            excl: f,
            incl: -f,
            ovhd: f64::from_bits(!b),
        },
        3 => TraceEvent::TypedSample {
            run: RunKey(a),
            function: s.to_string(),
            region: RegionRef::new(s, line),
            ty: if b.is_multiple_of(2) {
                TimingType::Barrier
            } else {
                TimingType::Instrumentation
            },
            time: f,
        },
        4 => TraceEvent::CallSiteStat {
            run: RunKey(a),
            caller: s.to_string(),
            callee: "barrier".to_string(),
            site: RegionRef::new(s, line),
            stats: CallStats {
                min_count: f,
                max_count: -f,
                mean_count: f64::from_bits(b.rotate_left(17)),
                stdev_count: 0.5,
                min_count_pe: line,
                max_count_pe: line + 1,
                min_time: f64::NEG_INFINITY,
                max_time: f64::INFINITY,
                mean_time: -0.0,
                stdev_time: f64::NAN,
                min_time_pe: 0,
                max_time_pe: 1,
            },
        },
        _ => TraceEvent::RunFinished { run: RunKey(a) },
    }
}

/// Bit-exact byte equality after a decode→re-encode round trip: the
/// invariant that keeps checksums over re-encoded frames stable. (Plain
/// `PartialEq` on events cannot check this — NaN != NaN by IEEE
/// semantics, while its *encoding* must be identical.)
fn assert_reencodes_identically(bytes: &[u8]) {
    let event = TraceEvent::decode_wire(bytes).expect("valid encoding decodes");
    let mut again = Vec::new();
    event.encode_wire(&mut again);
    assert_eq!(bytes, &again[..], "re-encode must be byte-identical");
    assert_eq!(wire::crc32(bytes), wire::crc32(&again));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes: decode returns a value or a typed error; on
    /// success the value re-encodes to the exact input bytes.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..96)) {
        match TraceEvent::decode_wire(&bytes) {
            Ok(_) => assert_reencodes_identically(&bytes),
            Err(
                WireError::UnexpectedEof { .. }
                | WireError::UnsupportedVersion(_)
                | WireError::BadEnum { .. }
                | WireError::BadUtf8
                | WireError::TrailingBytes { .. },
            ) => {}
        }
    }

    /// Every proper prefix of a valid encoding fails with a typed EOF
    /// (decoding is deterministic: a shorter buffer runs out inside some
    /// field), and the full encoding round-trips bit-exactly.
    #[test]
    fn truncations_fail_typed(
        variant in 0u8..6,
        a in any::<u64>(),
        bits in any::<u64>(),
        line in 1u32..5000,
        cut_seed in any::<u64>(),
    ) {
        let event = event_from(variant, a, bits, line, "solver");
        let mut buf = Vec::new();
        event.encode_wire(&mut buf);
        assert_reencodes_identically(&buf);
        let cut = (cut_seed % buf.len() as u64) as usize;
        prop_assert!(matches!(
            TraceEvent::decode_wire(&buf[..cut]),
            Err(WireError::UnexpectedEof { .. })
        ));
    }

    /// Single-byte mutations: still no panic, still typed-or-valid.
    #[test]
    fn mutations_fail_typed_or_decode(
        variant in 0u8..6,
        a in any::<u64>(),
        bits in any::<u64>(),
        line in 1u32..5000,
        pos_seed in any::<u64>(),
        flip in 1u8..255,
    ) {
        let event = event_from(variant, a, bits, line, "solver");
        let mut buf = Vec::new();
        event.encode_wire(&mut buf);
        let pos = (pos_seed % buf.len() as u64) as usize;
        buf[pos] ^= flip;
        if let Ok(mutated) = TraceEvent::decode_wire(&buf) {
            // The mutation landed in a value field; the reading must
            // still be framing-exact.
            let mut again = Vec::new();
            mutated.encode_wire(&mut again);
            prop_assert_eq!(buf, again);
        }
        // Err: typed, and the match above proved no panic either way.
    }
}

/// The satellite's named attack: a string length prefix declaring more
/// bytes than the buffer holds must be a typed EOF, not an over-read.
#[test]
fn oversized_string_length_prefix_is_typed_eof() {
    let mut buf = Vec::new();
    TraceEvent::RunStarted {
        run: RunKey(1),
        version: VersionTag(1),
        program: "app".into(),
        compiled_at: DateTime::from_secs(0),
        source: String::new(),
        start: DateTime::from_secs(0),
        no_pe: 4,
        clockspeed: 450,
    }
    .encode_wire(&mut buf);
    // The program-name length prefix sits after version byte + tag + two
    // u64 keys; declare u32::MAX bytes with only a handful remaining.
    let len_at = 1 + 1 + 8 + 8;
    buf[len_at..len_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(matches!(
        TraceEvent::decode_wire(&buf),
        Err(WireError::UnexpectedEof { what: "program" })
    ));

    // Same attack at the raw Reader level: a get_bytes for more than
    // remains is refused without touching out-of-bounds memory.
    let small = [0u8; 4];
    let mut r = Reader::new(&small);
    assert!(matches!(
        r.get_bytes(usize::MAX, "payload"),
        Err(WireError::UnexpectedEof { what: "payload" })
    ));
    assert_eq!(r.remaining(), 4, "a refused read consumes nothing");
}

/// NaN / −0.0 / infinities round-trip the WAL as bit patterns: the
/// recovered events re-encode byte-identically, so frame checksums over
/// re-encoded events are stable across a WAL cycle.
#[test]
fn nan_payloads_roundtrip_the_wal_bit_exactly() {
    let dir = std::env::temp_dir().join(format!("kojak-wire-fuzz-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("wal.log");

    // A quiet NaN, a signaling-ish NaN with payload bits, −0.0, ±inf, a
    // subnormal: every special f64 class.
    let specials = [
        f64::NAN.to_bits(),
        0x7ff0_0000_0000_2026u64,
        (-0.0f64).to_bits(),
        f64::INFINITY.to_bits(),
        f64::NEG_INFINITY.to_bits(),
        0x0000_0000_0000_0001u64,
    ];
    let events: Vec<TraceEvent> = specials
        .iter()
        .enumerate()
        .map(|(i, &bits)| TraceEvent::RegionExited {
            run: RunKey(i as u64),
            function: "main".into(),
            region: RegionRef::new("main", 1),
            excl: f64::from_bits(bits),
            incl: f64::from_bits(bits ^ (1 << 63)),
            ovhd: 0.25,
        })
        .collect();

    let mut encodings = Vec::new();
    for event in &events {
        let mut buf = Vec::new();
        event.encode_wire(&mut buf);
        encodings.push(buf);
    }

    {
        let mut writer = WalWriter::open(&path, 0, 0, FsyncPolicy::Always).unwrap();
        writer.append_batch(&events).unwrap();
    }
    let contents = wal::read_wal(&path).unwrap();
    assert!(contents.corruption.is_none());
    assert_eq!(contents.events.len(), events.len());
    for ((read_back, original), encoding) in contents.events.iter().zip(&events).zip(&encodings) {
        // Value equality is the wrong test (NaN != NaN); bit patterns
        // and re-encoded bytes are the contract.
        let (
            TraceEvent::RegionExited {
                excl: a, incl: b, ..
            },
            TraceEvent::RegionExited {
                excl: x, incl: y, ..
            },
        ) = (read_back, original)
        else {
            panic!("variant changed in the WAL");
        };
        assert_eq!(a.to_bits(), x.to_bits());
        assert_eq!(b.to_bits(), y.to_bits());
        let mut again = Vec::new();
        read_back.encode_wire(&mut again);
        assert_eq!(&again, encoding, "WAL round-trip re-encodes bit-exactly");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
