//! Crash-recovery correctness: a [`DurableSession`] killed at an
//! arbitrary event index and recovered must produce live reports
//! **bit-identical** — same severities, same error kinds, same rank order,
//! same `ContextDesc` ids — to an uninterrupted session over the same
//! event prefix. The proptest below cuts random event streams at random
//! indices, with and without a mid-stream checkpoint, and compares with
//! plain `assert_eq!` (no tolerances).
//!
//! The shim proptest RNG is deterministic per (test name, case index), so
//! CI runs these cases with a fixed seed by construction.

use apprentice_sim::{simulate_program, MachineModel, ProgramGenerator};
use cosy::AnalysisReport;
use online::replay::{events_for_run, replay_store};
use online::{
    DurableConfig, DurableSession, FsyncPolicy, OnlineSession, RunKey, SessionConfig, TraceEvent,
};
use perfdata::{Store, TestRunId};
use proptest::prelude::*;
use std::collections::HashMap;
use std::path::PathBuf;

/// A fresh scratch directory, removed on drop.
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(name: &str) -> ScratchDir {
        let dir = std::env::temp_dir().join(format!("kojak-crash-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ScratchDir(dir)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn sim_store(seed: u64, functions: usize, pe: &[u32]) -> Store {
    let gen = ProgramGenerator {
        seed,
        functions,
        max_depth: 3,
        max_fanout: 3,
        base_work: 0.01,
        comm_probability: 0.6,
    };
    let mut store = Store::new();
    simulate_program(&mut store, &gen.generate(), &MachineModel::t3e_900(), pe);
    store
}

/// An uninterrupted in-memory session over `events`, flushed once.
fn control_session(events: &[TraceEvent]) -> OnlineSession {
    let session = OnlineSession::new(SessionConfig::default());
    session.ingest_batch(events).expect("control ingest");
    session.flush().expect("control flush");
    session
}

fn durable_config(snapshot_every_flushes: u32) -> DurableConfig {
    DurableConfig {
        session: SessionConfig::default(),
        // Same-machine kill: page-cache durability is what the test can
        // observe, and skipping fsync keeps the proptest fast.
        fsync: FsyncPolicy::Never,
        snapshot_every_flushes,
        faults: Default::default(),
    }
}

/// Stream `events` into a fresh durable session in `chunk`-sized batches
/// (flushing after each), then "kill" it by dropping without a close.
fn stream_and_kill(dir: &ScratchDir, events: &[TraceEvent], chunk: usize, snapshot_every: u32) {
    let durable = DurableSession::open(&dir.0, durable_config(snapshot_every)).expect("open");
    for batch in events.chunks(chunk.max(1)) {
        durable.ingest_batch(batch).expect("durable ingest");
        durable.flush().expect("durable flush");
    }
    // Process killed here: no checkpoint, no graceful shutdown.
}

fn assert_bit_identical(
    recovered: &HashMap<RunKey, AnalysisReport>,
    control: &HashMap<RunKey, AnalysisReport>,
    what: &str,
) {
    let mut keys: Vec<_> = control.keys().copied().collect();
    keys.sort();
    let mut recovered_keys: Vec<_> = recovered.keys().copied().collect();
    recovered_keys.sort();
    assert_eq!(recovered_keys, keys, "{what}: report key sets differ");
    for key in keys {
        // Plain equality: severities, ranks, context ids, labels, skipped
        // counts — everything, bit for bit.
        assert_eq!(recovered[&key], control[&key], "{what}: report for {key}");
    }
}

/// Default to a handful of cases (each simulates, streams, kills, and
/// recovers — expensive); CI widens the sweep via `PROPTEST_CASES`.
fn configured_cases() -> ProptestConfig {
    let cases = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(6);
    ProptestConfig::with_cases(cases)
}

proptest! {
    // The deterministic shim RNG keys each case on (test name, case
    // index), so every run of case k replays the same stream and cut.
    #![proptest_config(configured_cases())]

    #[test]
    fn random_cut_recovers_bit_identical(
        seed in 0u64..10_000,
        functions in 1usize..4,
        pe in prop_oneof![Just(4u32), Just(8), Just(16)],
        cut_permille in 0usize..1000,
        chunk in prop_oneof![Just(3usize), Just(17), Just(128)],
        snapshot_every in prop_oneof![Just(0u32), Just(1), Just(4)],
    ) {
        let store = sim_store(seed, functions, &[1, pe]);
        let events = replay_store(&store);
        let cut = events.len() * cut_permille / 1000;
        let prefix = &events[..cut];

        let dir = ScratchDir::new(&format!("prop-{seed}-{cut_permille}-{snapshot_every}"));
        stream_and_kill(&dir, prefix, chunk, snapshot_every);

        let (recovered, stats) =
            OnlineSession::recover(&dir.0, SessionConfig::default()).expect("recover");
        let control = control_session(prefix);

        // The recovered store is arena-identical, not merely equivalent.
        prop_assert_eq!(recovered.store_snapshot(), control.store_snapshot());
        assert_bit_identical(
            &recovered.reports(),
            &control.reports(),
            &format!("seed={seed} cut={cut}/{} snap={snapshot_every}", events.len()),
        );
        // Nothing of the accepted prefix may be lost: snapshot + tail
        // account for every applied event.
        prop_assert_eq!(
            recovered.stats().events_applied,
            control.stats().events_applied
        );
        prop_assert_eq!(
            stats.snapshot_events + stats.wal_events_replayed,
            prefix.len() as u64
        );
        prop_assert!(stats.wal_corruption.is_none());
    }
}

#[test]
fn kill_resume_continues_to_the_same_end_state() {
    // Kill mid-stream, recover, stream the remainder through a *new*
    // durable session: the end state must match a never-killed session.
    let store = sim_store(77, 3, &[1, 4, 16]);
    let events = replay_store(&store);
    let cut = events.len() / 2;

    let dir = ScratchDir::new("kill-resume");
    stream_and_kill(&dir, &events[..cut], 23, 2);

    let resumed = DurableSession::open(&dir.0, durable_config(2)).expect("reopen");
    assert!(resumed.recovery().snapshot_events + resumed.recovery().wal_events_replayed > 0);
    for batch in events[cut..].chunks(23) {
        resumed.ingest_batch(batch).expect("resumed ingest");
        resumed.flush().expect("resumed flush");
    }

    let control = control_session(&events);
    assert_eq!(resumed.session().store_snapshot(), control.store_snapshot());
    assert_bit_identical(&resumed.reports(), &control.reports(), "kill-resume");
    assert_eq!(
        resumed.stats().events_applied,
        control.stats().events_applied
    );
    assert_eq!(resumed.stats().runs_finished, control.stats().runs_finished);
}

/// Hand-built two-run store with call statistics in both runs — a replay
/// fixpoint (`replay_reconstructs_identical_store` shape), so the strict
/// WAL ≡ `events_for_run` claim is exact.
fn fixpoint_store() -> Store {
    use online::StoreBuilder;
    let mut sim = Store::new();
    let machine = MachineModel::t3e_900();
    simulate_program(
        &mut sim,
        &apprentice_sim::archetypes::particle_mc(5),
        &machine,
        &[1, 8],
    );
    // Normalize through one replay round-trip: the result is reconstructed
    // from its own event stream, so a second round-trip is exact.
    let mut builder = StoreBuilder::new();
    let mut delta = online::StoreDelta::new();
    for event in replay_store(&sim) {
        builder.apply(&event, &mut delta).expect("normalize");
    }
    builder.store().clone()
}

#[test]
fn recovered_store_reproduces_the_wal_event_sequence() {
    // Satellite: `events_for_run` on a recovered store must reproduce the
    // exact event sequence the WAL holds — a full round-trip of the wire
    // encoding including the RunKey/VersionTag maps.
    let store = fixpoint_store();
    let events = replay_store(&store);

    let dir = ScratchDir::new("wal-replay");
    // No snapshots: the WAL must hold the entire history.
    stream_and_kill(&dir, &events, 64, 0);

    // 1. The log round-trips the wire encoding exactly.
    let wal = online::wal::read_wal(&dir.0.join(online::durable::WAL_FILE)).expect("read wal");
    assert!(wal.corruption.is_none());
    assert_eq!(wal.events, events, "wire round-trip through the WAL");

    // 2. Replaying the recovered store regenerates that exact sequence,
    //    run by run (RunKey/VersionTag maps included).
    let (recovered, _) = OnlineSession::recover(&dir.0, SessionConfig::default()).expect("recover");
    let recovered_store = recovered.store_snapshot();
    let mut regenerated = Vec::new();
    for run in 0..recovered_store.runs.len() as u32 {
        regenerated.extend(events_for_run(&recovered_store, TestRunId(run)));
    }
    assert_eq!(
        regenerated, wal.events,
        "events_for_run over recovered store"
    );
}

#[test]
fn recovered_session_stats_report_replayed_counts() {
    // Satellite regression: SessionStats/PipelineStats after recovery must
    // report the replayed history, not zeros.
    let store = sim_store(123, 2, &[1, 8]);
    let events = replay_store(&store);

    let dir = ScratchDir::new("stats");
    stream_and_kill(&dir, &events, 32, 3); // snapshot mid-stream + WAL tail

    let control = control_session(&events);
    let (recovered, stats) =
        OnlineSession::recover(&dir.0, SessionConfig::default()).expect("recover");

    let s = recovered.stats();
    assert!(stats.used_snapshot, "checkpoint must have fired");
    assert_eq!(s.events_applied, control.stats().events_applied);
    assert_eq!(s.events_replayed, events.len() as u64);
    assert_eq!(s.runs_finished, control.stats().runs_finished);
    assert!(s.flushes > 0, "recovery flush must be counted");
    assert_eq!(stats.runs_recovered, control.reports().len());

    // A pipeline over the recovered session inherits the replayed count.
    let session = std::sync::Arc::new(recovered);
    let pipeline = online::IngestPipeline::new(
        std::sync::Arc::clone(&session),
        online::PipelineConfig::default(),
    );
    let pstats = pipeline.close().expect("close");
    assert_eq!(pstats.events, 0);
    assert_eq!(pstats.events_replayed, events.len() as u64);
}

#[test]
fn kill_mid_snapshot_write_falls_back_to_the_previous_snapshot() {
    // Satellite: a crash *during* a checkpoint leaves a torn
    // `snapshot.tmp` behind — the committed `snapshot.bin` is untouched
    // (writes are tmp+rename-atomic), so recovery must ignore the tmp,
    // load the previous snapshot, and replay the WAL tail bit-identically.
    let store = sim_store(4242, 3, &[1, 8]);
    let events = replay_store(&store);
    let cut = events.len() * 3 / 4;

    let dir = ScratchDir::new("mid-snapshot");
    // snapshot_every = 2 with chunk 16: snapshots fire mid-stream, and a
    // WAL tail accumulates after the last one.
    stream_and_kill(&dir, &events[..cut], 16, 2);
    let snapshot_path = dir.0.join(online::durable::SNAPSHOT_FILE);
    assert!(snapshot_path.exists(), "a checkpoint must have committed");
    let committed = std::fs::read(&snapshot_path).expect("committed snapshot");

    // The kill hit mid-checkpoint: a torn, garbage tmp sits next to the
    // committed snapshot (the prefix of a never-finished write).
    std::fs::write(dir.0.join("snapshot.tmp"), b"KJSN torn mid-write").expect("torn tmp");

    let (recovered, stats) =
        OnlineSession::recover(&dir.0, SessionConfig::default()).expect("recover");
    assert!(stats.used_snapshot, "previous snapshot must be used");
    assert!(stats.wal_corruption.is_none());
    assert_eq!(
        std::fs::read(&snapshot_path).expect("snapshot after recovery"),
        committed,
        "recovery must not disturb the committed snapshot"
    );
    let control = control_session(&events[..cut]);
    assert_bit_identical(
        &recovered.reports(),
        &control.reports(),
        "mid-snapshot kill",
    );
    assert_eq!(
        recovered.stats().events_applied,
        control.stats().events_applied
    );

    // Resuming over the leftover tmp must not trip the next checkpoint:
    // the tmp is overwritten and the rename commits a fresh snapshot.
    let resumed = DurableSession::open(&dir.0, durable_config(1)).expect("reopen");
    for batch in events[cut..].chunks(16) {
        resumed.ingest_batch(batch).expect("resumed ingest");
        resumed.flush().expect("resumed flush");
    }
    resumed.checkpoint().expect("checkpoint over leftover tmp");
    let full_control = control_session(&events);
    assert_bit_identical(&resumed.reports(), &full_control.reports(), "resumed");
    assert_ne!(
        std::fs::read(&snapshot_path).expect("fresh snapshot"),
        committed,
        "the repaired checkpoint must commit a newer snapshot"
    );
}

#[test]
fn recovery_of_empty_or_missing_directory_is_a_fresh_session() {
    let dir = ScratchDir::new("fresh");
    // Missing directory entirely.
    let (session, stats) =
        OnlineSession::recover(&dir.0, SessionConfig::default()).expect("missing dir");
    assert!(!stats.used_snapshot);
    assert_eq!(stats.wal_events_replayed, 0);
    assert_eq!(session.stats().events_applied, 0);
    assert!(session.reports().is_empty());

    // Existing but empty directory.
    std::fs::create_dir_all(&dir.0).unwrap();
    let (session, stats) =
        OnlineSession::recover(&dir.0, SessionConfig::default()).expect("empty dir");
    assert!(!stats.used_snapshot);
    assert_eq!(session.stats().events_replayed, 0);
}
