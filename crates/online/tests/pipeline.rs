//! Integration tests of the sharded ingestion pipeline: concurrent
//! multi-run ingestion through bounded queues must produce the same live
//! reports as direct sequential ingestion.

use apprentice_sim::{archetypes, simulate_program, MachineModel};
use cosy::{Analyzer, Backend, ProblemThreshold};
use online::replay::{events_for_run, replay_run_key};
use online::{IngestPipeline, OnlineSession, PipelineConfig, SessionConfig, TraceEvent};
use perfdata::{Store, TestRunId};
use std::sync::Arc;

fn simulated_store(pe_counts: &[u32]) -> Store {
    let mut store = Store::new();
    simulate_program(
        &mut store,
        &archetypes::particle_mc(42),
        &MachineModel::t3e_900(),
        pe_counts,
    );
    store
}

/// Interleave the per-run event streams round-robin, as concurrent
/// producers would.
fn interleaved_events(store: &Store) -> Vec<TraceEvent> {
    let mut streams: Vec<Vec<TraceEvent>> = (0..store.runs.len() as u32)
        .map(|r| events_for_run(store, TestRunId(r)))
        .collect();
    let mut out = Vec::new();
    let mut cursor = 0;
    while streams.iter().any(|s| cursor < s.len()) {
        for stream in &streams {
            if let Some(e) = stream.get(cursor) {
                out.push(e.clone());
            }
        }
        cursor += 1;
    }
    let _ = &mut streams;
    out
}

#[test]
fn sharded_pipeline_matches_batch_analysis() {
    let store = simulated_store(&[1, 4, 16]);
    let session = Arc::new(OnlineSession::new(SessionConfig::default()));
    let pipeline = IngestPipeline::new(
        Arc::clone(&session),
        PipelineConfig {
            shards: 3,
            batch_size: 16,
            queue_capacity: 64,
        },
    );
    for event in interleaved_events(&store) {
        pipeline.submit(event).unwrap();
    }
    let stats = pipeline.close().unwrap();
    assert!(stats.errors.is_empty(), "{:?}", stats.errors);
    assert!(stats.events > 0);
    assert!(stats.batches > 0);

    let threshold = ProblemThreshold::default();
    for run in 0..store.runs.len() as u32 {
        let run = TestRunId(run);
        let version = store.runs[run.index()].version;
        let batch = Analyzer::new(&store, version)
            .unwrap()
            .analyze(run, Backend::Interpreter, threshold)
            .unwrap();
        let online = session.report(replay_run_key(run)).unwrap();
        assert_eq!(batch.entries.len(), online.entries.len(), "{run}");
        for (b, o) in batch.entries.iter().zip(&online.entries) {
            assert_eq!(b.property, o.property, "{run}");
            assert_eq!(b.context.label, o.context.label, "{run}");
            assert!(
                (b.severity - o.severity).abs() <= 1e-9 * b.severity.abs().max(1.0),
                "{run} {}: {} vs {}",
                b.property,
                b.severity,
                o.severity
            );
        }
    }
}

/// `submit_batch` (one routing pass, one channel send per shard group)
/// must produce the same end state as per-event `submit`, for chunkings
/// that split batches across shards and ones that don't.
#[test]
fn submit_batch_matches_per_event_submit() {
    let store = simulated_store(&[1, 4, 16]);
    let events = interleaved_events(&store);
    for chunk in [1usize, 7, 64, events.len()] {
        let batched_session = Arc::new(OnlineSession::new(SessionConfig::default()));
        let per_event_session = Arc::new(OnlineSession::new(SessionConfig::default()));
        let config = PipelineConfig {
            shards: 3,
            batch_size: 16,
            queue_capacity: 64,
        };
        let batched = IngestPipeline::new(Arc::clone(&batched_session), config.clone());
        let per_event = IngestPipeline::new(Arc::clone(&per_event_session), config);
        for batch in events.chunks(chunk) {
            batched.submit_batch(batch.to_vec()).unwrap();
        }
        for event in events.iter().cloned() {
            per_event.submit(event).unwrap();
        }
        let batched_stats = batched.close().unwrap();
        let per_event_stats = per_event.close().unwrap();
        assert!(
            batched_stats.errors.is_empty(),
            "{:?}",
            batched_stats.errors
        );
        assert_eq!(
            batched_stats.events, per_event_stats.events,
            "chunk {chunk}"
        );
        assert_eq!(
            batched_session.reports(),
            per_event_session.reports(),
            "chunk {chunk}: reports diverged"
        );
    }
}

#[test]
fn concurrent_producers_through_one_pipeline() {
    // Three producer threads each stream one run concurrently.
    let store = simulated_store(&[1, 4, 16]);
    let session = Arc::new(OnlineSession::new(SessionConfig::default()));
    let pipeline = Arc::new(IngestPipeline::new(
        Arc::clone(&session),
        PipelineConfig {
            shards: 2,
            batch_size: 8,
            queue_capacity: 16, // small queue: exercises backpressure
        },
    ));
    std::thread::scope(|scope| {
        for r in 0..store.runs.len() as u32 {
            let events = events_for_run(&store, TestRunId(r));
            let pipeline = Arc::clone(&pipeline);
            scope.spawn(move || {
                for event in events {
                    pipeline.submit(event).unwrap();
                }
            });
        }
    });
    let pipeline = Arc::into_inner(pipeline).expect("sole pipeline handle");
    let stats = pipeline.close().unwrap();
    assert!(stats.errors.is_empty(), "{:?}", stats.errors);

    // Every run has a live report with the analysis invariants intact.
    let reports = session.reports();
    assert_eq!(reports.len(), store.runs.len());
    for (key, report) in &reports {
        for w in report.entries.windows(2) {
            assert!(w[0].severity >= w[1].severity, "{key}: ranking order");
        }
        for (i, e) in report.entries.iter().enumerate() {
            assert_eq!(e.rank, i + 1, "{key}: rank numbering");
        }
    }
    // The 16-PE run must show problems for this archetype.
    let run16 = reports
        .values()
        .find(|r| r.no_pe == 16)
        .expect("16-PE report");
    assert!(run16.needs_tuning());
}

#[test]
fn mid_stream_flush_serves_partial_reports() {
    let store = simulated_store(&[1, 8]);
    let session = Arc::new(OnlineSession::new(SessionConfig::default()));
    let pipeline = IngestPipeline::new(Arc::clone(&session), PipelineConfig::default());

    let events = events_for_run(&store, TestRunId(1));
    let reference_events = events_for_run(&store, TestRunId(0));
    for e in reference_events {
        pipeline.submit(e).unwrap();
    }
    // Stream only half of run 1, then flush: a live (partial) report must
    // be available already.
    let half = events.len() / 2;
    for e in events[..half].iter().cloned() {
        pipeline.submit(e).unwrap();
    }
    let updated = pipeline.flush().unwrap();
    assert!(!updated.is_empty());
    let partial = session.report(replay_run_key(TestRunId(1)));
    assert!(partial.is_some(), "partial report must exist mid-stream");

    for e in events[half..].iter().cloned() {
        pipeline.submit(e).unwrap();
    }
    pipeline.close().unwrap();
    let full = session.report(replay_run_key(TestRunId(1))).unwrap();
    assert!(full.entries.len() >= partial.unwrap().entries.len());
}

#[test]
fn bad_event_does_not_poison_the_rest_of_a_batch() {
    let store = simulated_store(&[1, 8]);
    let session = OnlineSession::new(SessionConfig::default());
    let mut events = events_for_run(&store, TestRunId(0));
    // Inject a malformed event (unknown function) mid-batch.
    let bad = TraceEvent::TypedSample {
        run: online::replay::replay_run_key(TestRunId(0)),
        function: "no_such_function".into(),
        region: online::RegionRef::new("nope", 1),
        ty: perfdata::TimingType::Barrier,
        time: 1.0,
    };
    events.insert(events.len() / 2, bad);
    let err = session.ingest_batch(&events).unwrap_err();
    assert!(matches!(err, online::IngestError::UnknownFunction { .. }));
    session.flush().unwrap();
    // Every valid event after the bad one still applied: the run is
    // finished and its report matches the batch analyzer.
    let key = online::replay::replay_run_key(TestRunId(0));
    assert!(session.is_finished(key));
    assert_eq!(session.stats().events_rejected, 1);
    let report = session.report(key).unwrap();
    let batch = Analyzer::new(&store, store.runs[0].version)
        .unwrap()
        .analyze(
            TestRunId(0),
            Backend::Interpreter,
            ProblemThreshold::default(),
        )
        .unwrap();
    assert_eq!(report.entries.len(), batch.entries.len());
}

#[test]
fn run_finished_state_is_tracked() {
    let store = simulated_store(&[1, 8]);
    let session = OnlineSession::new(SessionConfig::default());
    let events = events_for_run(&store, TestRunId(0));
    let key = online::replay::replay_run_key(TestRunId(0));
    // All but the RunFinished marker.
    session.ingest_batch(&events[..events.len() - 1]).unwrap();
    session.flush().unwrap();
    assert!(!session.is_finished(key));
    session.ingest_batch(&events[events.len() - 1..]).unwrap();
    session.flush().unwrap();
    assert!(session.is_finished(key));
    assert_eq!(session.stats().runs_finished, 1);
}

#[test]
fn incremental_engine_does_less_work_than_batch() {
    // Appending one run to a store with many runs must evaluate far fewer
    // instances than re-analyzing every run would.
    let store = simulated_store(&[1, 2, 4, 8, 16, 32]);
    let session = OnlineSession::new(SessionConfig::default());
    for r in 0..store.runs.len() as u32 - 1 {
        session
            .ingest_batch(&events_for_run(&store, TestRunId(r)))
            .unwrap();
    }
    session.flush().unwrap();
    let before = session.stats().incremental.instances_evaluated;

    session
        .ingest_batch(&events_for_run(
            &store,
            TestRunId(store.runs.len() as u32 - 1),
        ))
        .unwrap();
    session.flush().unwrap();
    let appended = session.stats().incremental.instances_evaluated - before;

    // The append touched one run out of six: it must cost at most ~1/5 of
    // the instances evaluated so far (which covered five full runs).
    assert!(
        appended * 4 <= before,
        "incremental append evaluated {appended} instances vs {before} for the initial five runs"
    );
}
