//! Batch ≡ online equivalence: replaying an `apprentice`-simulated store
//! through the streaming pipeline yields, for every run, an
//! `AnalysisReport` equal to the batch `cosy` analyzer on the final store
//! — same properties, same contexts, severities within 1e-9.

use apprentice_sim::{simulate_program, MachineModel, ProgramGenerator};
use cosy::{AnalysisReport, Analyzer, Backend, ProblemThreshold};
use online::replay::{events_for_run, replay_run_key};
use online::{OnlineSession, SessionConfig};
use perfdata::{Store, TestRunId};
use proptest::prelude::*;

/// Assert two reports agree (severities within 1e-9 relative, everything
/// else exactly).
fn assert_reports_equal(batch: &AnalysisReport, online: &AnalysisReport, what: &str) {
    assert_eq!(batch.program, online.program, "{what}: program");
    assert_eq!(batch.no_pe, online.no_pe, "{what}: no_pe");
    assert_eq!(
        batch.reference_pe, online.reference_pe,
        "{what}: reference_pe"
    );
    assert_eq!(batch.skipped, online.skipped, "{what}: skipped");
    assert!(
        (batch.basis_duration - online.basis_duration).abs()
            <= 1e-9 * batch.basis_duration.abs().max(1.0),
        "{what}: basis_duration {} vs {}",
        batch.basis_duration,
        online.basis_duration
    );
    assert!(
        (batch.total_cost - online.total_cost).abs() <= 1e-9 * batch.total_cost.abs().max(1.0),
        "{what}: total_cost {} vs {}",
        batch.total_cost,
        online.total_cost
    );
    assert_eq!(
        batch.entries.len(),
        online.entries.len(),
        "{what}: entry count; batch={:?} online={:?}",
        batch
            .entries
            .iter()
            .map(|e| (&e.property, &e.context.label, e.severity))
            .collect::<Vec<_>>(),
        online
            .entries
            .iter()
            .map(|e| (&e.property, &e.context.label, e.severity))
            .collect::<Vec<_>>()
    );
    for (b, o) in batch.entries.iter().zip(&online.entries) {
        assert_eq!(b.rank, o.rank, "{what}");
        assert_eq!(b.property, o.property, "{what} rank {}", b.rank);
        assert_eq!(
            b.context, o.context,
            "{what} {} rank {}",
            b.property, b.rank
        );
        assert_eq!(b.is_problem, o.is_problem, "{what} {}", b.property);
        assert_eq!(b.confidence, o.confidence, "{what} {}", b.property);
        assert!(
            (b.severity - o.severity).abs() <= 1e-9 * b.severity.abs().max(1.0),
            "{what} {} @ {}: severity {} vs {}",
            b.property,
            b.context.label,
            b.severity,
            o.severity
        );
    }
}

/// Canonical, id-free projection of a store's contents: one line per
/// record, identified by names/timestamps instead of arena ids, sorted.
/// Two stores with equal projections contain the same performance data
/// even when arena ids differ (a trace stream cannot observe functions
/// that never execute and are never called, so a replayed store may lack
/// unused runtime-routine `Function` records the batch builder declared).
fn canonical(store: &Store) -> Vec<String> {
    let mut out = Vec::new();
    let version_name = |v: perfdata::VersionId| -> String {
        let ver = &store.versions[v.index()];
        let prog = &store.programs[ver.program.index()];
        let ordinal = prog.versions.iter().position(|x| *x == v).unwrap();
        format!("{}#{}", prog.name, ordinal)
    };
    let run_name = |r: TestRunId| -> String {
        let run = &store.runs[r.index()];
        format!(
            "{}/pe{}@{}",
            version_name(run.version),
            run.no_pe,
            run.start.micros()
        )
    };
    let region_name = |r: perfdata::RegionId| -> String {
        let reg = &store.regions[r.index()];
        let f = &store.functions[reg.function.index()];
        format!("{}::{}@{}", f.name, reg.name, reg.first_line)
    };
    for p in &store.programs {
        out.push(format!("program {}", p.name));
    }
    for (i, v) in store.versions.iter().enumerate() {
        out.push(format!(
            "version {} compiled {} source {:?}",
            version_name(perfdata::VersionId(i as u32)),
            v.compilation.micros(),
            store.sources[v.code.index()].text
        ));
    }
    for (i, _) in store.runs.iter().enumerate() {
        let r = TestRunId(i as u32);
        out.push(format!(
            "run {} clock {}",
            run_name(r),
            store.runs[r.index()].clockspeed
        ));
    }
    for (i, reg) in store.regions.iter().enumerate() {
        out.push(format!(
            "region {} {} kind {:?} lines {}-{} parent {:?}",
            version_name(store.functions[reg.function.index()].version),
            region_name(perfdata::RegionId(i as u32)),
            reg.kind,
            reg.first_line,
            reg.last_line,
            reg.parent.map(region_name)
        ));
    }
    for t in &store.total_timings {
        out.push(format!(
            "tot {} {} excl {:?} incl {:?} ovhd {:?}",
            region_name(t.region),
            run_name(t.run),
            t.excl,
            t.incl,
            t.ovhd
        ));
    }
    for t in &store.typed_timings {
        out.push(format!(
            "typ {} {} {:?} {:?}",
            region_name(t.region),
            run_name(t.run),
            t.ty,
            t.time
        ));
    }
    for c in &store.calls {
        let caller = &store.functions[c.caller.index()];
        let callee = &store.functions[c.callee.index()];
        for &ct in &c.sums {
            let s = &store.call_timings[ct.index()];
            out.push(format!(
                "call {}->{} at {} {} stats {:?}",
                caller.name,
                callee.name,
                region_name(c.calling_reg),
                run_name(s.run),
                (
                    s.min_count,
                    s.max_count,
                    s.mean_count,
                    s.stdev_count,
                    s.min_time,
                    s.max_time,
                    s.mean_time,
                    s.stdev_time
                )
            ));
        }
    }
    out.sort();
    out
}

/// Batch-analyze every run of a store.
fn batch_reports(store: &Store, threshold: ProblemThreshold) -> Vec<(TestRunId, AnalysisReport)> {
    (0..store.runs.len() as u32)
        .map(|r| {
            let run = TestRunId(r);
            let version = store.runs[run.index()].version;
            let analyzer = Analyzer::new(store, version).unwrap();
            let report = analyzer
                .analyze(run, Backend::Interpreter, threshold)
                .unwrap();
            (run, report)
        })
        .collect()
}

/// Stream a store into a session in event chunks of `chunk`, flushing the
/// incremental analysis after every chunk (so partial, mid-run analysis
/// states are genuinely exercised), then compare every run's final report
/// against the batch analyzer.
fn check_equivalence(store: &Store, chunk: usize, what: &str) {
    let threshold = ProblemThreshold::default();
    let session = OnlineSession::new(SessionConfig {
        threshold,
        auto_flush_events: 0,
        ..SessionConfig::default()
    });
    for run in 0..store.runs.len() as u32 {
        let events = events_for_run(store, TestRunId(run));
        for batch in events.chunks(chunk.max(1)) {
            session.ingest_batch(batch).unwrap();
            session.flush().unwrap();
        }
    }
    // The replayed store must contain the same performance data. (Arena
    // ids may differ: unused runtime-routine functions are unobservable in
    // a trace stream, which shifts function ids — see `canonical`.)
    let snapshot = session.store_snapshot();
    let (orig, replayed) = (canonical(store), canonical(&snapshot));
    assert_eq!(orig, replayed, "{what}: store contents mismatch");

    for (run, batch_report) in batch_reports(store, threshold) {
        let online_report = session
            .report(replay_run_key(run))
            .unwrap_or_else(|| panic!("{what}: no online report for {run}"));
        assert_reports_equal(&batch_report, &online_report, &format!("{what} {run}"));
    }
}

#[test]
fn particle_mc_fixed_seed_equivalence() {
    let mut store = Store::new();
    simulate_program(
        &mut store,
        &apprentice_sim::archetypes::particle_mc(23),
        &MachineModel::t3e_900(),
        &[1, 4, 16],
    );
    // Small chunks: many incremental flushes per run.
    check_equivalence(&store, 7, "particle_mc");
}

#[test]
fn all_archetypes_equivalence() {
    let machine = MachineModel::t3e_900();
    let mut store = Store::new();
    for model in apprentice_sim::archetypes::all(11) {
        simulate_program(&mut store, &model, &machine, &[1, 8]);
    }
    check_equivalence(&store, 64, "all_archetypes");
}

#[test]
fn decreasing_pe_order_still_equivalent() {
    // Streaming runs largest-first repeatedly changes the reference
    // configuration — the full-version invalidation path must fire.
    let mut store = Store::new();
    simulate_program(
        &mut store,
        &apprentice_sim::archetypes::stencil3d(3),
        &MachineModel::t3e_900(),
        &[16, 4, 1],
    );
    check_equivalence(&store, 13, "decreasing_pe");
}

proptest! {
    // Whole-pipeline equivalence on randomized programs is expensive; a
    // handful of cases per run still covers far more shapes than the
    // fixed-seed tests.
    #![proptest_config(ProptestConfig::with_cases(5))]

    #[test]
    fn random_programs_equivalent(
        seed in 0u64..10_000,
        functions in 1usize..4,
        pe in prop_oneof![Just(4u32), Just(8), Just(16)],
        chunk in prop_oneof![Just(1usize), Just(5), Just(33), Just(1024)],
    ) {
        let gen = ProgramGenerator {
            seed,
            functions,
            max_depth: 3,
            max_fanout: 3,
            base_work: 0.01,
            comm_probability: 0.6,
        };
        let model = gen.generate();
        let mut store = Store::new();
        simulate_program(&mut store, &model, &MachineModel::t3e_900(), &[1, pe]);
        check_equivalence(&store, chunk, &format!("random seed={seed}"));
    }
}
