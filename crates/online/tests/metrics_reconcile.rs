//! Metric/ground-truth reconciliation: the live registry counters a
//! session exposes through [`DurableSession::metrics`] must close
//! **exactly** against the session's own [`SessionStats`] and against
//! the durability ledger — across a kill and recovery, every applied
//! event is accounted for as either a WAL frame appended *by this
//! process* or an event replayed *into* it:
//!
//! ```text
//! kojak_online_events_applied_total
//!   == kojak_online_events_replayed_total + kojak_wal_appended_frames_total
//! ```
//!
//! (valid-only streams; a rejected event is WAL-framed but not applied,
//! which is why the suite pins the zero-rejection case exactly).

use apprentice_sim::{simulate_program, MachineModel, ProgramGenerator};
use online::replay::replay_store;
use online::{DurableConfig, DurableSession, FsyncPolicy, SessionConfig, TraceEvent};
use perfdata::Store;
use std::path::PathBuf;

/// A fresh scratch directory, removed on drop.
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(name: &str) -> ScratchDir {
        let dir = std::env::temp_dir().join(format!("kojak-obsrec-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ScratchDir(dir)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn sim_events(seed: u64) -> Vec<TraceEvent> {
    let gen = ProgramGenerator {
        seed,
        functions: 2,
        max_depth: 3,
        max_fanout: 3,
        base_work: 0.01,
        comm_probability: 0.6,
    };
    let mut store = Store::new();
    simulate_program(
        &mut store,
        &gen.generate(),
        &MachineModel::t3e_900(),
        &[1, 4, 16],
    );
    replay_store(&store)
}

fn config() -> DurableConfig {
    DurableConfig {
        session: SessionConfig::default(),
        fsync: FsyncPolicy::Never,
        snapshot_every_flushes: 0,
        faults: Default::default(),
    }
}

/// Every metric counter mirrors its [`SessionStats`] field exactly, and
/// the WAL-frame counter closes against the applied count.
#[test]
fn registry_counters_close_against_ground_truth() {
    let events = sim_events(41);
    let dir = ScratchDir::new("ledger");
    let durable = DurableSession::open(&dir.0, config()).expect("open");
    let chunks: Vec<&[TraceEvent]> = events.chunks(64).collect();
    for chunk in &chunks {
        durable.ingest_batch(chunk).expect("ingest");
    }
    durable.flush().expect("flush");

    let snapshot = durable.metrics();
    let stats = durable.stats();
    assert_eq!(stats.events_rejected, 0, "valid-only stream");
    assert_eq!(stats.events_applied, events.len() as u64);
    assert_eq!(
        snapshot.counter("kojak_online_events_applied_total"),
        stats.events_applied
    );
    assert_eq!(
        snapshot.counter("kojak_online_events_replayed_total"),
        0,
        "a session born empty replays nothing"
    );
    assert_eq!(
        snapshot.counter("kojak_wal_appended_frames_total"),
        events.len() as u64,
        "every applied event was WAL-framed first"
    );
    assert_eq!(
        snapshot
            .histogram("kojak_wal_append_ns")
            .expect("append-stage histogram")
            .count,
        chunks.len() as u64,
        "one timed append per ingested batch"
    );
    assert_eq!(
        snapshot.counter("kojak_online_flushes_total"),
        stats.flushes
    );
}

/// The acceptance identity across a kill: in the recovered process,
/// applied == replayed (restored at startup) + frames appended by *this*
/// process — the per-process registry and the cross-process ledger agree.
#[test]
fn applied_equals_replayed_plus_frames_across_kill_and_recover() {
    let events = sim_events(42);
    let dir = ScratchDir::new("recover");
    let cut = events.len() / 2;

    // Process 1: stream the first half, flush, die without checkpoint.
    {
        let durable = DurableSession::open(&dir.0, config()).expect("open");
        durable.ingest_batch(&events[..cut]).expect("ingest");
        durable.flush().expect("flush");
        let snapshot = durable.metrics();
        assert_eq!(
            snapshot.counter("kojak_wal_appended_frames_total"),
            cut as u64
        );
        // Killed here: drop without checkpoint — the WAL is the survivor.
    }

    // Process 2: recover, stream the rest, reconcile.
    let recovered = DurableSession::open(&dir.0, config()).expect("recover");
    recovered.ingest_batch(&events[cut..]).expect("ingest tail");
    recovered.flush().expect("flush");

    let snapshot = recovered.metrics();
    let stats = recovered.stats();
    assert_eq!(stats.events_rejected, 0);
    assert_eq!(stats.events_applied, events.len() as u64, "no loss");
    assert_eq!(
        snapshot.counter("kojak_online_events_replayed_total"),
        cut as u64,
        "the whole un-checkpointed WAL was replayed"
    );
    assert_eq!(
        snapshot.counter("kojak_wal_appended_frames_total"),
        (events.len() - cut) as u64,
        "the registry is per-process: only this process's appends"
    );
    assert_eq!(
        snapshot.counter("kojak_online_events_applied_total"),
        snapshot.counter("kojak_online_events_replayed_total")
            + snapshot.counter("kojak_wal_appended_frames_total"),
        "every applied event is either replayed in or framed by us"
    );

    // A checkpoint exercises (and counts) the snapshot-write stage.
    recovered.checkpoint().expect("checkpoint");
    let snapshot = recovered.metrics();
    assert_eq!(snapshot.counter("kojak_snapshot_writes_total"), 1);
    assert_eq!(
        snapshot
            .histogram("kojak_snapshot_write_ns")
            .expect("snapshot-stage histogram")
            .count,
        1
    );
}
