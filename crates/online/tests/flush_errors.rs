//! Regression: a spec-evaluation failure during a flush must surface as a
//! typed [`FlushError`] variant — wrapping the machine-readable
//! [`cosy::AnalysisError`] / [`asl_eval::EvalError`] — not as a formatted
//! string. The failing delta is re-queued, so the same typed error
//! resurfaces on the next flush, and supplying the missing data afterwards
//! heals the session.

use asl_eval::EvalErrorKind;
use cosy::AnalysisError;
use online::{
    FlushError, OnlineSession, RegionDef, RegionRef, RunKey, SessionConfig, TraceEvent, VersionTag,
};
use perfdata::{DateTime, RegionKind};

fn run_started(key: u64, no_pe: u32) -> TraceEvent {
    TraceEvent::RunStarted {
        run: RunKey(key),
        version: VersionTag(1),
        program: "zero".into(),
        compiled_at: DateTime::from_secs(0),
        source: String::new(),
        start: DateTime::from_secs(key as i64),
        no_pe,
        clockspeed: 450,
    }
}

fn main_region(key: u64) -> TraceEvent {
    TraceEvent::RegionEntered {
        run: RunKey(key),
        function: "main".into(),
        region: RegionDef {
            name: "main".into(),
            parent: None,
            kind: RegionKind::Subprogram,
            first_line: 1,
            last_line: 10,
        },
    }
}

fn region_exited(key: u64, incl: f64, ovhd: f64) -> TraceEvent {
    TraceEvent::RegionExited {
        run: RunKey(key),
        function: "main".into(),
        region: RegionRef::new("main", 1),
        excl: incl,
        incl,
        ovhd,
    }
}

/// A zero-duration ranking basis with measured overhead: `MeasuredCost`
/// holds but its severity divides by `Duration(Basis, t) == 0` — a genuine
/// evaluation error, not a skip.
#[test]
fn spec_evaluation_failure_is_a_typed_flush_error() {
    let session = OnlineSession::new(SessionConfig::default());
    session
        .ingest_batch(&[
            run_started(1, 1),
            run_started(2, 4),
            main_region(1),
            region_exited(1, 0.0, 0.0),
            region_exited(2, 0.0, 0.1),
        ])
        .expect("ingest");

    let err = session.flush().expect_err("division by zero must surface");
    match &err {
        FlushError::Analysis(AnalysisError::Property { property, source }) => {
            assert_eq!(source.kind, EvalErrorKind::DivByZero, "{source}");
            assert!(
                !property.is_empty(),
                "the failing property must be identified"
            );
        }
        other => panic!("expected FlushError::Analysis(Property), got {other:?}"),
    }
    // The typed error still renders for humans.
    assert!(err.to_string().contains("analysis flush failed"));

    // The invalidated delta was re-queued: the *same* typed failure
    // resurfaces on an immediate retry (nothing invalidated-and-forgotten).
    let again = session.flush().expect_err("re-queued delta must re-fail");
    assert!(
        matches!(
            again,
            FlushError::Analysis(AnalysisError::Property { ref source, .. })
                if source.kind == EvalErrorKind::DivByZero
        ),
        "got {again:?}"
    );

    // Refining the basis durations to nonzero values heals the session
    // (the severity denominator is `Duration(Basis, t)` of each analyzed
    // run, so both runs need a real timing).
    session
        .ingest_batch(&[region_exited(1, 10.0, 0.0), region_exited(2, 12.0, 0.1)])
        .expect("refinement");
    let updated = session.flush().expect("healed flush");
    assert!(!updated.is_empty());
    assert!(session.report(RunKey(2)).is_some());
}

/// The recovery path carries the same typed error: recovering a durable
/// session whose WAL replays into a failing evaluation reports
/// `RecoveryError::Analysis(FlushError::Analysis(..))`, not a string.
#[test]
fn recovery_flush_failure_is_typed_too() {
    use online::{DurableConfig, DurableSession, FsyncPolicy, RecoveryError};

    let dir = std::env::temp_dir().join(format!("kojak-flusherr-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let durable = DurableSession::open(
        &dir,
        DurableConfig {
            session: SessionConfig::default(),
            fsync: FsyncPolicy::Never,
            snapshot_every_flushes: 0,
            faults: Default::default(),
        },
    )
    .expect("open");
    durable
        .ingest_batch(&[
            run_started(1, 1),
            run_started(2, 4),
            main_region(1),
            region_exited(1, 0.0, 0.0),
            region_exited(2, 0.0, 0.1),
        ])
        .expect("ingest");
    drop(durable); // killed before any flush

    match OnlineSession::recover(&dir, SessionConfig::default()) {
        Err(RecoveryError::Analysis(FlushError::Analysis(AnalysisError::Property {
            source,
            ..
        }))) => assert_eq!(source.kind, EvalErrorKind::DivByZero),
        other => panic!(
            "expected typed Analysis recovery error, got {:?}",
            other.map(|_| ())
        ),
    }
    let _ = std::fs::remove_dir_all(&dir);
}
