//! Black-box semantic tests of the interpreter against the COSY model:
//! DateTime ordering, string equality, navigation chains, and the exact
//! paper formulas recomputed by hand.

use apprentice_sim::{archetypes, simulate_program, MachineModel};
use asl_core::parse_and_check;
use asl_eval::{CosyData, Interpreter, Value, COSY_DATA_MODEL};
use perfdata::Store;

fn fixture() -> (Store, perfdata::VersionId) {
    let mut store = Store::new();
    let machine = MachineModel::t3e_900();
    let v = simulate_program(
        &mut store,
        &archetypes::particle_mc(77),
        &machine,
        &[1, 4, 16],
    );
    (store, v)
}

fn interp_with<'a>(src: &str, data: &'a CosyData<'a>) -> (asl_core::check::CheckedSpec, ()) {
    let full = format!("{COSY_DATA_MODEL}\n{src}");
    let spec = parse_and_check(&full).unwrap_or_else(|d| panic!("{}", d.render(&full)));
    let _ = data;
    (spec, ())
}

#[test]
fn datetime_ordering_on_run_start() {
    let (store, v) = fixture();
    let data = CosyData::new(&store);
    let (spec, _) = interp_with(
        "bool StartedBefore(TestRun a, TestRun b) = a.Start < b.Start;",
        &data,
    );
    let interp = Interpreter::new(&spec, &data).unwrap();
    let runs = &store.versions[v.index()].runs;
    // Runs are simulated an hour apart in sweep order.
    let early = Value::run(runs[0]);
    let late = Value::run(runs[2]);
    assert_eq!(
        interp
            .call_function("StartedBefore", &[early.clone(), late.clone()])
            .unwrap(),
        Value::Bool(true)
    );
    assert_eq!(
        interp
            .call_function("StartedBefore", &[late, early])
            .unwrap(),
        Value::Bool(false)
    );
}

#[test]
fn string_equality_on_names() {
    let (store, _) = fixture();
    let data = CosyData::new(&store);
    let (spec, _) = interp_with("bool IsBarrier(Function f) = f.Name == \"barrier\";", &data);
    let interp = Interpreter::new(&spec, &data).unwrap();
    let barrier_idx = store
        .functions
        .iter()
        .position(|f| f.name == "barrier")
        .unwrap() as u32;
    assert_eq!(
        interp
            .call_function("IsBarrier", &[Value::obj("Function", barrier_idx)])
            .unwrap(),
        Value::Bool(true)
    );
    assert_eq!(
        interp
            .call_function("IsBarrier", &[Value::obj("Function", 0)])
            .unwrap(),
        Value::Bool(false)
    );
}

#[test]
fn deep_navigation_program_to_clockspeed() {
    let (store, _) = fixture();
    let data = CosyData::new(&store);
    let (spec, _) = interp_with(
        "int FirstClock(Program p) =
             MIN(t.Clockspeed WHERE t IN UNIQUE({v IN p.Versions WITH TRUE}).Runs);",
        &data,
    );
    let interp = Interpreter::new(&spec, &data).unwrap();
    let got = interp
        .call_function("FirstClock", &[Value::obj("Program", 0)])
        .unwrap();
    assert_eq!(got, Value::Int(450));
}

#[test]
fn min_pe_formula_matches_store_helper() {
    // The SublinearSpeedup reference-run selection, recomputed in ASL.
    let (store, v) = fixture();
    let data = CosyData::new(&store);
    let (spec, _) = interp_with(
        "int MinPe(Region r) = MIN(s.Run.NoPe WHERE s IN r.TotTimes);",
        &data,
    );
    let interp = Interpreter::new(&spec, &data).unwrap();
    let main = store.main_region(v).unwrap();
    let got = interp
        .call_function("MinPe", &[Value::region(main)])
        .unwrap();
    let reference = store.min_pe_run(v).unwrap();
    assert_eq!(got, Value::Int(store.runs[reference.index()].no_pe as i64));
}

#[test]
fn summed_typed_times_are_bounded_by_overhead() {
    // Per region and run: SUM of typed times == the region's own measured
    // overhead contribution, which is at most the stored (inclusive) Ovhd.
    let (store, v) = fixture();
    let data = CosyData::new(&store);
    let (spec, _) = interp_with(
        "float Typed(Region r, TestRun t) = SUM(tt.Time WHERE tt IN r.TypTimes AND tt.Run==t);
         float Stored(Region r, TestRun t) = Summary(r,t).Ovhd;",
        &data,
    );
    let interp = Interpreter::new(&spec, &data).unwrap();
    for &run in &store.versions[v.index()].runs {
        for i in 0..store.regions.len() {
            let args = [Value::obj("Region", i as u32), Value::run(run)];
            let typed = match interp.call_function("Typed", &args) {
                Ok(val) => val.as_f64().unwrap(),
                Err(_) => continue,
            };
            let stored = match interp.call_function("Stored", &args) {
                Ok(val) => val.as_f64().unwrap(),
                Err(_) => continue,
            };
            assert!(
                typed <= stored * (1.0 + 1e-9) + 1e-12,
                "region {i} run {run}: typed {typed} > stored {stored}"
            );
        }
    }
}

#[test]
fn forall_and_exists_against_real_data() {
    let (store, v) = fixture();
    let data = CosyData::new(&store);
    let (spec, _) = interp_with(
        "bool AllNonNegative(Region r) = FORALL(s IN r.TotTimes WITH s.Incl >= 0.0);
         bool AnyOverhead(Region r, TestRun t) =
             EXISTS(tt IN r.TypTimes WITH tt.Run == t AND tt.Time > 0.0);",
        &data,
    );
    let interp = Interpreter::new(&spec, &data).unwrap();
    let main = store.main_region(v).unwrap();
    assert_eq!(
        interp
            .call_function("AllNonNegative", &[Value::region(main)])
            .unwrap(),
        Value::Bool(true)
    );
    let run16 = *store.versions[v.index()].runs.last().unwrap();
    assert_eq!(
        interp
            .call_function("AnyOverhead", &[Value::region(main), Value::run(run16)])
            .unwrap(),
        Value::Bool(true)
    );
}
