//! Interpreter ≡ compiled-IR equivalence on arbitrary specs and stores.
//!
//! For randomized performance databases (random structure, random timing
//! coverage, deliberate gaps and duplicates) and randomized property
//! suites (the full standard COSY shapes plus generated properties with
//! random aggregates, filters, comparisons and arms), every property
//! instance and helper-function call must produce **the same result
//! through both engines**: identical outcomes, identical severities
//! (bit-for-bit — both engines execute the same arithmetic in the same
//! order), and identical errors (kind and message) on the failure paths
//! (empty `UNIQUE`, ambiguous `UNIQUE`, division by zero, recursion
//! limits, empty `MIN`/`MAX`/`AVG`).

use asl_eval::{compile, CompiledEvaluator, CosyData, Interpreter, Value, COSY_DATA_MODEL};
use perfdata::{DateTime, RegionKind, Store, TimingType, VersionId};
use proptest::prelude::*;
use std::sync::Arc;

/// Tiny deterministic splitmix64 stream for store/spec shaping.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn chance(&mut self, percent: u64) -> bool {
        self.below(100) < percent
    }

    fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (self.next() >> 11) as f64 / (1u64 << 53) as f64 * (hi - lo)
    }
}

/// A randomized store: 1 version, `n_runs` runs, `n_regions` regions in a
/// random tree, patchy total/typed timing coverage (including zero
/// durations, missing records and occasional duplicates) and a barrier
/// call site with partial statistics.
fn build_store(seed: u64, n_runs: usize, n_regions: usize) -> (Store, VersionId) {
    let mut rng = Rng(seed);
    let mut s = Store::new();
    let p = s.add_program("randprog");
    let v = s.add_version(p, DateTime::from_secs(1), "random source");
    let mut runs = Vec::new();
    for i in 0..n_runs {
        // Random PE counts with possible ties (exercises reference-run
        // tie-breaking).
        let no_pe = 1 << rng.below(6);
        runs.push(s.add_run(v, DateTime::from_secs(10 + i as i64), no_pe as u32, 450));
    }
    let f_main = s.add_function(v, "main");
    let f_barrier = s.add_function(v, "barrier");
    let mut regions = Vec::new();
    for i in 0..n_regions {
        let parent = if regions.is_empty() || rng.chance(30) {
            None
        } else {
            Some(regions[rng.below(regions.len() as u64) as usize])
        };
        let kind = if i == 0 {
            RegionKind::Subprogram
        } else {
            RegionKind::Loop
        };
        regions.push(s.add_region(
            f_main,
            parent,
            kind,
            format!("r{i}"),
            (i as u32, i as u32 + 9),
        ));
    }
    for &r in &regions {
        for &run in &runs {
            if rng.chance(75) {
                let incl = if rng.chance(10) {
                    0.0 // zero duration → division-by-zero severity paths
                } else {
                    rng.f64_in(0.5, 50.0)
                };
                let excl = rng.f64_in(0.0, incl.max(0.1));
                let ovhd = if rng.chance(30) {
                    0.0
                } else {
                    rng.f64_in(0.0, 2.0)
                };
                s.add_total_timing(r, run, excl, incl, ovhd);
                if rng.chance(4) {
                    // Duplicate record → ambiguous UNIQUE in Summary.
                    s.add_total_timing(r, run, excl, incl + 1.0, ovhd);
                }
            }
            for &ty in &TimingType::ALL[..8] {
                if rng.chance(25) {
                    let t = if rng.chance(20) {
                        0.0
                    } else {
                        rng.f64_in(0.001, 5.0)
                    };
                    s.add_typed_timing(r, run, ty, t);
                }
            }
        }
    }
    let call = s.add_call(f_main, f_barrier, regions[0]);
    for &run in &runs {
        if rng.chance(60) {
            let mean_time = rng.f64_in(0.0, 3.0);
            s.add_call_timing(perfdata::CallTiming {
                call,
                run,
                min_count: 1.0,
                max_count: 4.0,
                mean_count: rng.f64_in(1.0, 500.0),
                stdev_count: rng.f64_in(0.0, 2.0),
                min_count_pe: 0,
                max_count_pe: 1,
                min_time: mean_time * 0.5,
                max_time: mean_time * 1.5,
                mean_time,
                stdev_time: rng.f64_in(0.0, 1.0),
                min_time_pe: 0,
                max_time_pe: 1,
            });
        }
    }
    (s, v)
}

/// Generated properties: random aggregate, optional type filter, random
/// comparison/threshold and a random severity transform — well-typed by
/// construction, wide coverage of the error paths by chance.
fn generated_properties(seed: u64) -> String {
    let mut rng = Rng(seed ^ 0xabcdef);
    let mut out = String::new();
    for i in 0..3 {
        let agg = ["SUM", "MIN", "MAX", "AVG", "COUNT"][rng.below(5) as usize];
        let cmp = [">", "<", ">=", "<=", "==", "!="][rng.below(6) as usize];
        let ty = ["Barrier", "Lock", "PtpSend", "Broadcast"][rng.below(4) as usize];
        let filter = if rng.chance(50) {
            format!(" AND tt.Type == {ty}")
        } else {
            String::new()
        };
        let threshold = rng.below(4) as f64 * 0.5;
        let scale = 1 + rng.below(3);
        out.push_str(&format!(
            "Property Gen{i}(Region r, TestRun t, Region Basis) {{\n\
                LET float X = {agg}(tt.Time WHERE tt IN r.TypTimes AND tt.Run==t{filter})\n\
                IN CONDITION: X {cmp} {threshold};\n\
                CONFIDENCE: 0.9;\n\
                SEVERITY: X * {scale} / Duration(Basis, t);\n\
            }}\n"
        ));
    }
    out
}

/// Extra fixed properties covering quantifiers, guarded arms, `%`, n-ary
/// MIN/MAX and the recursion limit.
const EXTRA_PROPERTIES: &str = r#"
Property QuantCheck(Region r, TestRun t, Region Basis) {
    CONDITION: EXISTS(tt IN r.TypTimes WITH tt.Run == t AND tt.Time > 0.001)
           AND FORALL(s IN r.TotTimes WITH s.Incl >= 0.0);
    CONFIDENCE: 0.9;
    SEVERITY: AVG(s.Excl WHERE s IN r.TotTimes) / Duration(Basis, t);
}

Property ModMinMax(Region r, TestRun t, Region Basis) {
    CONDITION: (even) t.NoPe % 2 == 0 OR (any) COUNT(r.TotTimes) >= 0;
    CONFIDENCE: MAX((even) -> 0.5, (any) -> 0.7);
    SEVERITY: MAX((even) -> MIN(1.0, 2.0, Duration(Basis, t)), (any) -> 0.1);
}

float Rec(TestRun t) = Rec(t);
Property RecCheck(Region r, TestRun t, Region Basis) {
    CONDITION: Rec(t) > 0.0;
    CONFIDENCE: 1;
    SEVERITY: 0;
}
"#;

/// Compare one evaluation through both engines.
fn assert_equivalent<T: PartialEq + std::fmt::Debug>(
    what: &str,
    interp: Result<T, asl_eval::EvalError>,
    compiled: Result<T, asl_eval::EvalError>,
) {
    match (&interp, &compiled) {
        (Ok(a), Ok(b)) => assert_eq!(a, b, "{what}: outcome mismatch"),
        (Err(a), Err(b)) => {
            assert_eq!(a.kind, b.kind, "{what}: error kind mismatch");
            assert_eq!(a.message, b.message, "{what}: error message mismatch");
        }
        _ => panic!("{what}: interp={interp:?} vs compiled={compiled:?}"),
    }
}

fn check_case(seed: u64, n_runs: usize, n_regions: usize) {
    let (store, v) = build_store(seed, n_runs, n_regions);
    let src = format!(
        "{COSY_DATA_MODEL}\n{}\n{EXTRA_PROPERTIES}\n{}",
        cosy_suite_properties(),
        generated_properties(seed)
    );
    let spec = asl_core::parse_and_check(&src).expect("suite checks");
    let data = CosyData::new(&store);
    let interp = Interpreter::new(&spec, &data).expect("interpreter binds");
    let compiled_spec = Arc::new(compile(&spec));
    let compiled = CompiledEvaluator::new(compiled_spec, &data).expect("compiled binds");

    let basis = store.main_region(v).expect("main region");
    let runs: Vec<_> = store.versions[v.index()].runs.clone();
    let regions: Vec<u32> = (0..store.regions.len() as u32).collect();

    // Helper functions: Summary and Duration on every (region, run).
    for &r in &regions {
        for &run in &runs {
            for func in ["Summary", "Duration"] {
                let args = [Value::obj("Region", r), Value::run(run)];
                assert_equivalent(
                    &format!("{func}(r{r}, {run:?})"),
                    interp.call_function(func, &args),
                    compiled.call_function(func, &args),
                );
            }
        }
    }

    // Every property on every context.
    for p in spec.properties() {
        let name = &p.name.name;
        let region_ctx = p.params[0].ty.to_string() == "Region";
        for &run in &runs {
            if region_ctx {
                for &r in &regions {
                    let args = [
                        Value::obj("Region", r),
                        Value::run(run),
                        Value::region(basis),
                    ];
                    assert_equivalent(
                        &format!("{name}(r{r}, {run:?})"),
                        interp.eval_property(name, &args),
                        compiled.eval_property(name, &args),
                    );
                }
            } else {
                for c in 0..store.calls.len() as u32 {
                    let args = [
                        Value::obj("FunctionCall", c),
                        Value::run(run),
                        Value::region(basis),
                    ];
                    assert_equivalent(
                        &format!("{name}(call{c}, {run:?})"),
                        interp.eval_property(name, &args),
                        compiled.eval_property(name, &args),
                    );
                }
            }
        }
    }
}

/// The standard COSY suite property section (duplicated source constant is
/// not exported by `cosy` to `asl-eval` — the crates depend the other way
/// around — so the shapes are spelled here; they mirror
/// `cosy::suite::SUITE_PROPERTIES`).
fn cosy_suite_properties() -> &'static str {
    r#"
float ImbalanceThreshold = 0.25;

Property SublinearSpeedup(Region r, TestRun t, Region Basis) {
    LET TotalTiming MinPeSum = UNIQUE({sum IN r.TotTimes WITH sum.Run.NoPe ==
            MIN(s.Run.NoPe WHERE s IN r.TotTimes)});
        float TotalCost = Duration(r,t) - Duration(r,MinPeSum.Run)
    IN
    CONDITION: TotalCost>0; CONFIDENCE: 1;
    SEVERITY: TotalCost/Duration(Basis,t);
}

Property MeasuredCost (Region r, TestRun t, Region Basis) {
    LET float Cost = Summary(r,t).Ovhd;
    IN CONDITION: Cost > 0; CONFIDENCE: 1;
    SEVERITY: Cost / Duration(Basis,t);
}

Property SyncCost(Region r, TestRun t, Region Basis) {
    LET float Barrier2 = SUM(tt.Time WHERE tt IN r.TypTimes AND tt.Run==t
            AND tt.Type == Barrier)
    IN CONDITION: Barrier2 > 0; CONFIDENCE: 1;
    SEVERITY: Barrier2 / Duration(Basis,t);
}

Property LoadImbalance(FunctionCall Call, TestRun t, Region Basis) {
    LET CallTiming ct = UNIQUE ({c IN Call.Sums WITH c.Run == t});
        float Dev = ct.StdevTime;
        float Mean = ct.MeanTime
    IN CONDITION: Dev > ImbalanceThreshold * Mean; CONFIDENCE: 1;
    SEVERITY: Mean / Duration(Basis,t);
}
"#
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn compiled_equals_interpreter_on_random_specs_and_stores(
        seed in 0u64..1_000_000_000,
        n_runs in 1usize..5,
        n_regions in 1usize..5,
    ) {
        check_case(seed, n_runs, n_regions);
    }
}

#[test]
fn compiled_equals_interpreter_on_fixed_edge_seeds() {
    // A few pinned shapes: single run/region, many regions, heavy gaps.
    for (seed, runs, regions) in [(1, 1, 1), (7, 4, 4), (42, 2, 4), (9999, 4, 1)] {
        check_case(seed, runs, regions);
    }
}
