//! The COSY data model (§4.1 of the paper) as ASL source, plus the
//! [`ObjectModel`] binding onto a [`perfdata::Store`].

use crate::error::{EvalError, EvalErrorKind, EvalResult};
use crate::interp::ObjectModel;
use crate::value::{ObjRef, Value};
use asl_core::intern::Symbol;
use perfdata::{CallId, RegionId, Store, TestRunId, TimingType};
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// Process-global hit/miss counters of the per-binding Run== filter memo
/// (mirrors the compiled evaluator's loop-invariant cache counters in
/// [`crate::compile`]); read via [`filter_memo_counters`].
static FILTER_MEMO_HITS: obs::Counter = obs::Counter::new();
static FILTER_MEMO_MISSES: obs::Counter = obs::Counter::new();

/// Cumulative (hits, misses) of the [`CosyData`] filter memo across every
/// binding in the process — the observability layer turns these into
/// `kojak_eval_filter_memo_{hits,misses}_total`.
pub fn filter_memo_counters() -> (u64, u64) {
    (FILTER_MEMO_HITS.get(), FILTER_MEMO_MISSES.get())
}

/// Pre-interned symbols of the COSY data model. Hot paths construct object
/// references and dispatch attribute lookups with integer compares instead
/// of re-hashing class names on every access.
pub struct CosySyms {
    /// `Program`.
    pub program: Symbol,
    /// `ProgVersion`.
    pub prog_version: Symbol,
    /// `SourceCode`.
    pub source_code: Symbol,
    /// `TestRun`.
    pub test_run: Symbol,
    /// `Function`.
    pub function: Symbol,
    /// `Region`.
    pub region: Symbol,
    /// `TotalTiming`.
    pub total_timing: Symbol,
    /// `TypedTiming`.
    pub typed_timing: Symbol,
    /// `FunctionCall`.
    pub function_call: Symbol,
    /// `CallTiming`.
    pub call_timing: Symbol,
    /// The `TimingType` enum name.
    pub timing_type: Symbol,
    /// `TimingType` variant symbols, indexed by `TimingType as usize`
    /// (declaration order, matching [`TimingType::ALL`]).
    pub timing_variants: Vec<Symbol>,
}

/// The process-wide [`CosySyms`] table.
pub fn syms() -> &'static CosySyms {
    static SYMS: OnceLock<CosySyms> = OnceLock::new();
    SYMS.get_or_init(|| CosySyms {
        program: Symbol::intern("Program"),
        prog_version: Symbol::intern("ProgVersion"),
        source_code: Symbol::intern("SourceCode"),
        test_run: Symbol::intern("TestRun"),
        function: Symbol::intern("Function"),
        region: Symbol::intern("Region"),
        total_timing: Symbol::intern("TotalTiming"),
        typed_timing: Symbol::intern("TypedTiming"),
        function_call: Symbol::intern("FunctionCall"),
        call_timing: Symbol::intern("CallTiming"),
        timing_type: Symbol::intern("TimingType"),
        timing_variants: TimingType::ALL
            .iter()
            .map(|t| Symbol::intern(t.name()))
            .collect(),
    })
}

/// The ASL data-model section used by COSY — the nine classes printed in
/// §4.1 of the paper plus the `TimingType` enumeration (25 variants, see
/// [`perfdata::TimingType`]) and the two shared helper functions `Summary`
/// and `Duration` from §4.2.
///
/// Deviations from the paper's listing, all additive:
/// * `SourceCode` is declared (the paper references it without declaring);
/// * `Region` carries `Name` (used for reports);
/// * `Function` carries `Name` as printed in the paper;
/// * `CallTiming` spells out the statistics attributes the paper describes
///   in prose ("the minimum, maximum, mean value, and standard deviation
///   over a) the number of calls and b) the time spent in the function.
///   For the four extremal values the processor … is memorized").
pub const COSY_DATA_MODEL: &str = r#"
enum TimingType {
    Barrier, Lock, Unlock,
    PtpSend, PtpRecv, PtpWait,
    Broadcast, Reduce, AllReduce, Gather, Scatter, AllToAll,
    ShmemPut, ShmemGet, ShmemWait,
    IoOpen, IoClose, IoRead, IoWrite, IoSeek,
    BufferPack, BufferUnpack,
    Startup, Shutdown, Instrumentation
}

class Program {
    String Name;
    setof ProgVersion Versions;
}

class ProgVersion {
    DateTime Compilation;
    setof Function Functions;
    setof TestRun Runs;
    SourceCode Code;
}

class SourceCode {
    String Text;
}

class TestRun {
    DateTime Start;
    int NoPe;
    int Clockspeed;
}

class Function {
    String Name;
    setof FunctionCall Calls;
    setof Region Regions;
}

class Region {
    Region ParentRegion;
    String Name;
    setof TotalTiming TotTimes;
    setof TypedTiming TypTimes;
}

class TotalTiming {
    TestRun Run;
    float Excl;
    float Incl;
    float Ovhd;
}

class TypedTiming {
    TestRun Run;
    TimingType Type;
    float Time;
}

class FunctionCall {
    Function Caller;
    Region CallingReg;
    setof CallTiming Sums;
}

class CallTiming {
    TestRun Run;
    float MinCount;
    float MaxCount;
    float MeanCount;
    float StdevCount;
    int MinCountPe;
    int MaxCountPe;
    float MinTime;
    float MaxTime;
    float MeanTime;
    float StdevTime;
    int MinTimePe;
    int MaxTimePe;
}

TotalTiming Summary(Region r, TestRun t) = UNIQUE({s IN r.TotTimes WITH s.Run==t});
float Duration(Region r, TestRun t) = Summary(r,t).Incl;
"#;

/// Which per-run measurement set a [`CosyData`] memo entry caches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum MemoSet {
    /// `Region.TotTimes WITH .Run == t`.
    TotTimes,
    /// `Region.TypTimes WITH .Run == t`.
    TypTimes,
    /// `FunctionCall.Sums WITH .Run == t`.
    Sums,
}

/// Memo key: which set, the owning object's arena index, the run's index.
type MemoKey = (MemoSet, u32, u32);

/// [`ObjectModel`] implementation over a [`perfdata::Store`], answering the
/// attribute lookups of [`COSY_DATA_MODEL`].
pub struct CosyData<'s> {
    store: &'s Store,
    /// Per-binding memo of the indexed `Run ==` filter loads (see
    /// [`CosyData::with_filter_memo`]). `None` disables memoization.
    filter_memo: Option<Mutex<HashMap<MemoKey, Vec<Value>>>>,
}

impl<'s> CosyData<'s> {
    /// Bind a store.
    pub fn new(store: &'s Store) -> Self {
        CosyData {
            store,
            filter_memo: None,
        }
    }

    /// Bind a store with the per-(object, run) filter memo enabled: the
    /// first `Run ==` metric load of each (region/call, run) pair
    /// materializes from the store's secondary maps, every later load —
    /// across all property instances evaluated through this binding — is
    /// answered from the memo. Sound because the binding borrows the
    /// store immutably for its whole lifetime: the underlying sets cannot
    /// change while a memo entry exists. Error results (dangling
    /// references) are never memoized, so failure behavior is identical.
    ///
    /// This is the flush-side fix for the per-instance constant: one
    /// analysis flush evaluates many property instances over the same
    /// few (region, run) pairs, and each used to re-load (re-hash,
    /// re-allocate) the same timing sets.
    pub fn with_filter_memo(store: &'s Store) -> Self {
        CosyData {
            store,
            filter_memo: Some(Mutex::new(HashMap::new())),
        }
    }

    /// The bound store.
    pub fn store(&self) -> &Store {
        self.store
    }

    fn bad_attr(obj: &ObjRef, attr: &str) -> EvalError {
        EvalError::new(
            EvalErrorKind::Unknown,
            format!(
                "class `{}` has no attribute `{attr}` (object {obj})",
                obj.class
            ),
        )
    }

    fn check_index(obj: &ObjRef, len: usize) -> EvalResult<usize> {
        let i = obj.index as usize;
        if i < len {
            Ok(i)
        } else {
            Err(EvalError::new(
                EvalErrorKind::Other,
                format!("dangling object reference {obj} (arena size {len})"),
            ))
        }
    }
}

/// Does [`CosyData`] serve the filter
/// `elem IN <class>.<set_attr> WITH elem.<elem_attr> == key` from a
/// secondary index? True exactly for the shapes `filter_eq` answers:
/// `Region.TotTimes`, `Region.TypTimes` and `FunctionCall.Sums`, keyed on
/// `Run`. Static analysis (kojak-lint) uses this to tell natively indexed
/// filters from extracted-but-still-scanned ones.
pub fn native_index(class: &str, set_attr: &str, elem_attr: &str) -> bool {
    elem_attr == "Run"
        && matches!(
            (class, set_attr),
            ("Region", "TotTimes") | ("Region", "TypTimes") | ("FunctionCall", "Sums")
        )
}

fn set_of<I: Into<u32> + Copy>(class: Symbol, ids: &[I]) -> Value {
    Value::Set(
        ids.iter()
            .map(|id| Value::obj(class, (*id).into()))
            .collect(),
    )
}

impl CosyData<'_> {
    /// Indexed `Run ==` filters over the three per-run measurement sets
    /// (`Region.TotTimes`, `Region.TypTimes`, `FunctionCall.Sums`), served
    /// from the store's secondary maps in O(matches). Any other shape
    /// returns `None` so the caller falls back to the generic scan.
    fn filter_by_run(
        &self,
        obj: &ObjRef,
        set_attr: &str,
        key: &Value,
    ) -> Option<EvalResult<Vec<Value>>> {
        let sy = syms();
        let run = match key {
            Value::Obj(o) if o.class == sy.test_run => TestRunId(o.index),
            // A key that is not a TestRun compares unequal to every `Run`
            // attribute; the generic scan handles it (yielding nothing).
            _ => return None,
        };
        let set = if obj.class == sy.region && set_attr == "TotTimes" {
            MemoSet::TotTimes
        } else if obj.class == sy.region && set_attr == "TypTimes" {
            MemoSet::TypTimes
        } else if obj.class == sy.function_call && set_attr == "Sums" {
            MemoSet::Sums
        } else {
            return None;
        };
        if let Some(memo) = &self.filter_memo {
            let key: MemoKey = (set, obj.index, run.0);
            let guard = memo.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(cached) = guard.get(&key) {
                FILTER_MEMO_HITS.inc();
                return Some(Ok(cached.clone()));
            }
            drop(guard);
            FILTER_MEMO_MISSES.inc();
            let out = match self.load_by_run(set, obj, run) {
                Ok(out) => out,
                // Errors (dangling references) are never memoized.
                Err(e) => return Some(Err(e)),
            };
            memo.lock()
                .unwrap_or_else(|e| e.into_inner())
                .insert(key, out.clone());
            Some(Ok(out))
        } else {
            Some(self.load_by_run(set, obj, run))
        }
    }

    /// Materialize one `Run ==` metric load from the store's secondary
    /// maps, in O(matches).
    fn load_by_run(&self, set: MemoSet, obj: &ObjRef, run: TestRunId) -> EvalResult<Vec<Value>> {
        let sy = syms();
        let s = self.store;
        match set {
            MemoSet::TotTimes => {
                let i = Self::check_index(obj, s.regions.len())?;
                Ok(s.total_timing_ids(RegionId(i as u32), run)
                    .iter()
                    .map(|id| Value::obj(sy.total_timing, id.0))
                    .collect())
            }
            MemoSet::TypTimes => {
                let i = Self::check_index(obj, s.regions.len())?;
                Ok(s.typed_timing_ids(RegionId(i as u32), run)
                    .iter()
                    .map(|id| Value::obj(sy.typed_timing, id.0))
                    .collect())
            }
            MemoSet::Sums => {
                let i = Self::check_index(obj, s.calls.len())?;
                Ok(s.call_timing_ids(CallId(i as u32), run)
                    .iter()
                    .map(|id| Value::obj(sy.call_timing, id.0))
                    .collect())
            }
        }
    }
}

impl ObjectModel for CosyData<'_> {
    fn filter_eq(
        &self,
        obj: &ObjRef,
        set_attr: &str,
        elem_attr: &str,
        key: &Value,
    ) -> Option<EvalResult<Vec<Value>>> {
        if elem_attr == "Run" {
            self.filter_by_run(obj, set_attr, key)
        } else {
            None
        }
    }

    fn extent(&self, class: &str) -> Option<usize> {
        let s = self.store;
        Some(match class {
            "Program" => s.programs.len(),
            "ProgVersion" => s.versions.len(),
            "SourceCode" => s.sources.len(),
            "TestRun" => s.runs.len(),
            "Function" => s.functions.len(),
            "Region" => s.regions.len(),
            "TotalTiming" => s.total_timings.len(),
            "TypedTiming" => s.typed_timings.len(),
            "FunctionCall" => s.calls.len(),
            "CallTiming" => s.call_timings.len(),
            _ => return None,
        })
    }

    fn attr(&self, obj: &ObjRef, attr: &str) -> EvalResult<Value> {
        let s = self.store;
        let sy = syms();
        let c = obj.class;
        // Dispatch on interned class symbols (integer compares), ordered by
        // how hot each class is on the property-evaluation path.
        if c == sy.total_timing {
            let i = Self::check_index(obj, s.total_timings.len())?;
            let t = &s.total_timings[i];
            match attr {
                "Run" => Ok(Value::obj(sy.test_run, t.run.0)),
                "Excl" => Ok(Value::Float(t.excl)),
                "Incl" => Ok(Value::Float(t.incl)),
                "Ovhd" => Ok(Value::Float(t.ovhd)),
                _ => Err(Self::bad_attr(obj, attr)),
            }
        } else if c == sy.typed_timing {
            let i = Self::check_index(obj, s.typed_timings.len())?;
            let t = &s.typed_timings[i];
            match attr {
                "Run" => Ok(Value::obj(sy.test_run, t.run.0)),
                "Type" => Ok(Value::Enum(
                    sy.timing_type,
                    sy.timing_variants[t.ty as usize],
                )),
                "Time" => Ok(Value::Float(t.time)),
                _ => Err(Self::bad_attr(obj, attr)),
            }
        } else if c == sy.region {
            let i = Self::check_index(obj, s.regions.len())?;
            let r = &s.regions[i];
            match attr {
                "ParentRegion" => Ok(match r.parent {
                    Some(p) => Value::obj(sy.region, p.0),
                    None => Value::Null,
                }),
                "Name" => Ok(Value::Str(r.name.clone())),
                "TotTimes" => Ok(set_of(sy.total_timing, &r.tot_times)),
                "TypTimes" => Ok(set_of(sy.typed_timing, &r.typ_times)),
                _ => Err(Self::bad_attr(obj, attr)),
            }
        } else if c == sy.test_run {
            let i = Self::check_index(obj, s.runs.len())?;
            let r = &s.runs[i];
            match attr {
                "Start" => Ok(Value::DateTime(r.start.micros())),
                "NoPe" => Ok(Value::Int(r.no_pe as i64)),
                "Clockspeed" => Ok(Value::Int(r.clockspeed as i64)),
                _ => Err(Self::bad_attr(obj, attr)),
            }
        } else if c == sy.call_timing {
            let i = Self::check_index(obj, s.call_timings.len())?;
            let ct = &s.call_timings[i];
            match attr {
                "Run" => Ok(Value::obj(sy.test_run, ct.run.0)),
                "MinCount" => Ok(Value::Float(ct.min_count)),
                "MaxCount" => Ok(Value::Float(ct.max_count)),
                "MeanCount" => Ok(Value::Float(ct.mean_count)),
                "StdevCount" => Ok(Value::Float(ct.stdev_count)),
                "MinCountPe" => Ok(Value::Int(ct.min_count_pe as i64)),
                "MaxCountPe" => Ok(Value::Int(ct.max_count_pe as i64)),
                "MinTime" => Ok(Value::Float(ct.min_time)),
                "MaxTime" => Ok(Value::Float(ct.max_time)),
                "MeanTime" => Ok(Value::Float(ct.mean_time)),
                "StdevTime" => Ok(Value::Float(ct.stdev_time)),
                "MinTimePe" => Ok(Value::Int(ct.min_time_pe as i64)),
                "MaxTimePe" => Ok(Value::Int(ct.max_time_pe as i64)),
                _ => Err(Self::bad_attr(obj, attr)),
            }
        } else if c == sy.function_call {
            let i = Self::check_index(obj, s.calls.len())?;
            let fc = &s.calls[i];
            match attr {
                "Caller" => Ok(Value::obj(sy.function, fc.caller.0)),
                "CallingReg" => Ok(Value::obj(sy.region, fc.calling_reg.0)),
                "Sums" => Ok(set_of(sy.call_timing, &fc.sums)),
                _ => Err(Self::bad_attr(obj, attr)),
            }
        } else if c == sy.function {
            let i = Self::check_index(obj, s.functions.len())?;
            let f = &s.functions[i];
            match attr {
                "Name" => Ok(Value::Str(f.name.clone())),
                "Calls" => Ok(set_of(sy.function_call, &f.calls)),
                "Regions" => Ok(set_of(sy.region, &f.regions)),
                _ => Err(Self::bad_attr(obj, attr)),
            }
        } else if c == sy.prog_version {
            let i = Self::check_index(obj, s.versions.len())?;
            let v = &s.versions[i];
            match attr {
                "Compilation" => Ok(Value::DateTime(v.compilation.micros())),
                "Functions" => Ok(set_of(sy.function, &v.functions)),
                "Runs" => Ok(set_of(sy.test_run, &v.runs)),
                "Code" => Ok(Value::obj(sy.source_code, v.code.0)),
                _ => Err(Self::bad_attr(obj, attr)),
            }
        } else if c == sy.program {
            let i = Self::check_index(obj, s.programs.len())?;
            let p = &s.programs[i];
            match attr {
                "Name" => Ok(Value::Str(p.name.clone())),
                "Versions" => Ok(set_of(sy.prog_version, &p.versions)),
                _ => Err(Self::bad_attr(obj, attr)),
            }
        } else if c == sy.source_code {
            let i = Self::check_index(obj, s.sources.len())?;
            match attr {
                "Text" => Ok(Value::Str(s.sources[i].text.clone())),
                _ => Err(Self::bad_attr(obj, attr)),
            }
        } else {
            Err(EvalError::new(
                EvalErrorKind::Unknown,
                format!("unknown class `{c}`"),
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Interpreter;
    use apprentice_sim::{archetypes, simulate_program, MachineModel};
    use asl_core::parse_and_check;

    #[test]
    fn data_model_parses_and_checks() {
        let spec = parse_and_check(COSY_DATA_MODEL)
            .unwrap_or_else(|d| panic!("{}", d.render(COSY_DATA_MODEL)));
        assert_eq!(spec.spec.classes.len(), 10);
        assert_eq!(spec.spec.enums.len(), 1);
        assert_eq!(spec.spec.functions.len(), 2);
    }

    #[test]
    fn enum_variants_match_perfdata_timing_types() {
        let spec = parse_and_check(COSY_DATA_MODEL).unwrap();
        let e = spec.spec.enum_decl("TimingType").unwrap();
        let names: Vec<&str> = e.variants.iter().map(|v| v.name.as_str()).collect();
        let expected: Vec<&str> = perfdata::TimingType::ALL.iter().map(|t| t.name()).collect();
        assert_eq!(names, expected);
    }

    fn simulated() -> (Store, perfdata::VersionId) {
        let mut store = Store::new();
        let model = archetypes::particle_mc(11);
        let machine = MachineModel::t3e_900();
        let v = simulate_program(&mut store, &model, &machine, &[1, 4, 16]);
        (store, v)
    }

    #[test]
    fn duration_function_matches_store() {
        let (store, v) = simulated();
        let spec = parse_and_check(COSY_DATA_MODEL).unwrap();
        let data = CosyData::new(&store);
        let interp = Interpreter::new(&spec, &data).unwrap();
        let main = store.main_region(v).unwrap();
        for &run in &store.versions[v.index()].runs {
            let d = interp
                .call_function("Duration", &[Value::region(main), Value::run(run)])
                .unwrap();
            assert_eq!(d.as_f64().unwrap(), store.duration(main, run).unwrap());
        }
    }

    #[test]
    fn navigation_program_to_runs() {
        let (store, _) = simulated();
        let spec = parse_and_check(COSY_DATA_MODEL).unwrap();
        let data = CosyData::new(&store);
        let interp = Interpreter::new(&spec, &data).unwrap();
        // COUNT of runs through two navigation steps.
        let src = format!(
            "{COSY_DATA_MODEL}\nint RunCount(Program p) = \
             SUM(COUNT(v.Runs) WHERE v IN p.Versions);"
        );
        let spec2 = parse_and_check(&src).unwrap();
        let interp2 = Interpreter::new(&spec2, &data).unwrap();
        let v = interp2
            .call_function("RunCount", &[Value::obj("Program", 0)])
            .unwrap();
        assert_eq!(v, Value::Int(3));
        drop(interp);
    }

    #[test]
    fn typed_timing_enum_comparison() {
        let (store, v) = simulated();
        let src = format!(
            "{COSY_DATA_MODEL}\nfloat BarrierTime(Region r, TestRun t) = \
             SUM(tt.Time WHERE tt IN r.TypTimes AND tt.Run==t AND tt.Type == Barrier);"
        );
        let spec = parse_and_check(&src).unwrap();
        let data = CosyData::new(&store);
        let interp = Interpreter::new(&spec, &data).unwrap();
        // Find the particle-mc move loop, which has barrier time at 16 PEs.
        let run16 = store.versions[v.index()].runs[2];
        let mut best = 0.0f64;
        for (i, _) in store.regions.iter().enumerate() {
            let val = interp
                .call_function(
                    "BarrierTime",
                    &[Value::obj("Region", i as u32), Value::run(run16)],
                )
                .unwrap();
            best = best.max(val.as_f64().unwrap());
        }
        assert!(best > 0.0, "some region must show barrier time");
    }

    #[test]
    fn parent_region_of_root_is_null() {
        let (store, v) = simulated();
        let spec = parse_and_check(COSY_DATA_MODEL).unwrap();
        let data = CosyData::new(&store);
        let interp = Interpreter::new(&spec, &data).unwrap();
        let main = store.main_region(v).unwrap();
        let src_expr = asl_core::parser::parse_expr("r.ParentRegion").unwrap();
        let val = interp
            .eval_expr(&src_expr, &[("r", Value::region(main))])
            .unwrap();
        assert_eq!(val, Value::Null);
    }

    #[test]
    fn unknown_attribute_is_error() {
        let (store, _) = simulated();
        let data = CosyData::new(&store);
        let e = data
            .attr(
                &ObjRef {
                    class: "Region".into(),
                    index: 0,
                },
                "Bogus",
            )
            .unwrap_err();
        assert_eq!(e.kind, EvalErrorKind::Unknown);
    }

    #[test]
    fn dangling_reference_is_error() {
        let (store, _) = simulated();
        let data = CosyData::new(&store);
        let e = data
            .attr(
                &ObjRef {
                    class: "Region".into(),
                    index: 999_999,
                },
                "Name",
            )
            .unwrap_err();
        assert_eq!(e.kind, EvalErrorKind::Other);
    }
}
